//! Phase-space DTFE (PS-DTFE): per-simplex density and velocity gradients,
//! with multi-stream handling on tetrahedron orientation.
//!
//! Following Feldbrugge's phase-space estimator (PAPERS.md), the density is
//! **piecewise constant per simplex** rather than interpolated from vertex
//! stars: each vertex distributes its mass equally over its incident
//! tetrahedra, so a tetrahedron `T` carries
//!
//! ```text
//! m_T = Σ_{v ∈ T} m_v / deg(v),    ρ_T = m_T / V_T,
//! ```
//!
//! where `deg(v)` counts the finite tetrahedra incident on `v`. Summing
//! `ρ_T · V_T` over all tetrahedra telescopes back to `Σ_v m_v`, so the
//! estimate conserves mass *exactly* (to floating-point roundoff) — the
//! conformance suite asserts 1e-12 relative.
//!
//! Alongside the density, each simplex gets the constant **velocity
//! gradient** `∇v` solved from the vertex velocities (the `inv(A) @ (v[1:] -
//! v[0])` of the reference implementation); a degenerate simplex is a typed
//! error, never a silent zero. The trace of `∇v` is the velocity
//! divergence, rendered through the same marching kernel via
//! [`PsDtfeField::divergence`].
//!
//! In a multi-stream region the Zel'dovich map folds the Lagrangian mesh
//! over itself; [`StreamField`] counts streams at a point by counting the
//! mapped (possibly inverted) tetrahedra containing it, with the fold
//! detected by the **orientation sign** of each mapped tetrahedron.

use crate::density::{Mass, TetInterp};
use crate::estimator::{DegenerateTetError, FieldEstimator};
use crate::marching::MarchCache;
use dtfe_delaunay::{BuildError, Delaunay, DelaunayBuilder, TetId};
use dtfe_geometry::tetra::{linear_gradient, signed_volume6, volume};
use dtfe_geometry::Vec3;
use std::sync::OnceLock;

/// Why a PS-DTFE build failed.
#[derive(Debug)]
pub enum PsDtfeError {
    /// The particle set does not triangulate (fewer than 4 affinely
    /// independent points).
    Build(BuildError),
    /// A tetrahedron is too flat for a velocity gradient
    /// (see [`DegenerateTetError`]).
    Degenerate(DegenerateTetError),
}

impl std::fmt::Display for PsDtfeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PsDtfeError::Build(e) => write!(f, "triangulation failed: {e}"),
            PsDtfeError::Degenerate(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for PsDtfeError {}

impl From<BuildError> for PsDtfeError {
    fn from(e: BuildError) -> Self {
        PsDtfeError::Build(e)
    }
}

impl From<DegenerateTetError> for PsDtfeError {
    fn from(e: DegenerateTetError) -> Self {
        PsDtfeError::Degenerate(e)
    }
}

/// The phase-space DTFE estimator: per-simplex constant density and
/// velocity gradients over one triangulation.
pub struct PsDtfeField {
    del: Delaunay,
    /// Per-slot density interpolant; PS-DTFE densities are constant per
    /// simplex, so `grad` is always zero and `rho0` is `ρ_T`.
    interp: Vec<TetInterp>,
    /// Per-slot velocity-divergence interpolant (`rho0 = tr ∇v`, constant
    /// per simplex) — the field [`PsDtfeField::divergence`] renders.
    div_interp: Vec<TetInterp>,
    /// Per-slot velocity gradient rows: `dv[t][c]` is `∇v_c` (the gradient
    /// of velocity component `c`). Ghost/freed slots hold zeros.
    dv: Vec<[Vec3; 3]>,
    march: OnceLock<MarchCache>,
}

impl PsDtfeField {
    /// Triangulate `points` and build the phase-space estimate from the
    /// per-particle `velocities` (one per input point) and `mass`.
    pub fn build(
        points: &[Vec3],
        velocities: &[Vec3],
        mass: Mass,
    ) -> Result<PsDtfeField, PsDtfeError> {
        let del = DelaunayBuilder::new().build(points)?;
        Ok(Self::from_delaunay(del, points.len(), velocities, mass)?)
    }

    /// Build over an existing triangulation of `n_input` input points.
    /// Duplicate inputs that merged into one vertex average their
    /// velocities and accumulate their masses.
    pub fn from_delaunay(
        del: Delaunay,
        n_input: usize,
        velocities: &[Vec3],
        mass: Mass,
    ) -> Result<PsDtfeField, DegenerateTetError> {
        assert_eq!(velocities.len(), n_input, "one velocity per input particle");
        let nv = del.num_vertices();

        // Per-vertex mass (merged duplicates accumulate) and velocity
        // (merged duplicates average).
        let mut vmass = vec![0.0f64; nv];
        match &mass {
            Mass::Uniform(m) => {
                if n_input == nv {
                    vmass.fill(*m);
                } else {
                    for i in 0..n_input {
                        vmass[del.vertex_of_input(i) as usize] += m;
                    }
                }
            }
            Mass::PerParticle(ms) => {
                assert_eq!(ms.len(), n_input, "mass count != input point count");
                for (i, &m) in ms.iter().enumerate() {
                    vmass[del.vertex_of_input(i) as usize] += m;
                }
            }
        }
        let mut vvel = vec![Vec3::ZERO; nv];
        let mut vcount = vec![0u32; nv];
        for (i, &v) in velocities.iter().enumerate() {
            let vid = del.vertex_of_input(i) as usize;
            vvel[vid] += v;
            vcount[vid] += 1;
        }
        for (v, &c) in vvel.iter_mut().zip(&vcount) {
            if c > 1 {
                *v = *v * (1.0 / c as f64);
            }
        }

        // deg(v): finite tetrahedra incident on each vertex.
        let mut deg = vec![0u32; nv];
        for t in del.finite_tets() {
            for &v in &del.tet(t).verts {
                deg[v as usize] += 1;
            }
        }

        let slots = del.num_slots();
        let zero = TetInterp {
            v0: Vec3::ZERO,
            rho0: 0.0,
            grad: Vec3::ZERO,
        };
        let mut interp = vec![zero; slots];
        let mut div_interp = vec![zero; slots];
        let mut dv = vec![[Vec3::ZERO; 3]; slots];
        for t in 0..slots as u32 {
            let tet = del.tet_slot(t);
            if !tet.is_live() || tet.is_ghost() {
                continue;
            }
            let p = [
                del.vertex(tet.verts[0]),
                del.vertex(tet.verts[1]),
                del.vertex(tet.verts[2]),
                del.vertex(tet.verts[3]),
            ];
            // ρ_T = m_T / V_T with each vertex's mass split evenly over its
            // incident tetrahedra. Degenerate (zero-volume) simplices keep
            // ρ = 0: they cannot contribute to any line-of-sight integral.
            let vol = volume(p[0], p[1], p[2], p[3]).abs();
            let m_t: f64 = tet
                .verts
                .iter()
                .map(|&v| {
                    let d = deg[v as usize];
                    if d > 0 {
                        vmass[v as usize] / d as f64
                    } else {
                        0.0
                    }
                })
                .sum();
            if vol > 0.0 {
                interp[t as usize] = TetInterp {
                    v0: p[0],
                    rho0: m_t / vol,
                    grad: Vec3::ZERO,
                };
            }

            // ∇v rows: one linear solve per velocity component. Unlike the
            // density (where a sliver's zero contribution is harmless), a
            // silently zeroed velocity gradient would corrupt divergence
            // output — degenerate simplices are a typed error here.
            let vel = [
                vvel[tet.verts[0] as usize],
                vvel[tet.verts[1] as usize],
                vvel[tet.verts[2] as usize],
                vvel[tet.verts[3] as usize],
            ];
            let mut rows = [Vec3::ZERO; 3];
            for (c, row) in rows.iter_mut().enumerate() {
                let f = [vel[0][c], vel[1][c], vel[2][c], vel[3][c]];
                *row = linear_gradient(&p, &f).ok_or(DegenerateTetError { tet: t })?;
            }
            dv[t as usize] = rows;
            div_interp[t as usize] = TetInterp {
                v0: p[0],
                rho0: rows[0].x + rows[1].y + rows[2].z,
                grad: Vec3::ZERO,
            };
        }

        Ok(PsDtfeField {
            del,
            interp,
            div_interp,
            dv,
            march: OnceLock::new(),
        })
    }

    /// The underlying triangulation.
    #[inline]
    pub fn delaunay(&self) -> &Delaunay {
        &self.del
    }

    /// The constant density of simplex `t`.
    #[inline]
    pub fn tet_density(&self, t: TetId) -> f64 {
        self.interp[t as usize].rho0
    }

    /// The constant velocity-gradient rows of simplex `t`: `rows[c]` is
    /// `∇v_c`.
    #[inline]
    pub fn velocity_gradient(&self, t: TetId) -> &[Vec3; 3] {
        &self.dv[t as usize]
    }

    /// The constant velocity divergence `tr ∇v` of simplex `t`.
    #[inline]
    pub fn tet_divergence(&self, t: TetId) -> f64 {
        self.div_interp[t as usize].rho0
    }

    /// Total estimated mass `Σ_T ρ_T V_T` — equals the input mass exactly
    /// (to roundoff), by construction.
    pub fn integrated_mass(&self) -> f64 {
        self.del
            .finite_tets()
            .map(|t| {
                let p = self.del.tet_points(t);
                volume(p[0], p[1], p[2], p[3]).abs() * self.interp[t as usize].rho0
            })
            .sum()
    }

    /// The velocity-divergence view: a [`FieldEstimator`] over the *same*
    /// mesh and marching cache whose interpolant is `tr ∇v` per simplex.
    /// Rendering it integrates `∫ ∇·v dz`.
    pub fn divergence(&self) -> PsDtfeDivergence<'_> {
        PsDtfeDivergence(self)
    }
}

/// PS-DTFE density renders through the shared marching kernel; the
/// interpolant is constant per simplex.
impl FieldEstimator for PsDtfeField {
    #[inline]
    fn delaunay(&self) -> &Delaunay {
        &self.del
    }

    #[inline]
    fn march_cache(&self) -> &MarchCache {
        self.march.get_or_init(|| MarchCache::build(&self.del))
    }

    #[inline]
    fn tet_interp(&self, t: TetId) -> &TetInterp {
        &self.interp[t as usize]
    }
}

/// Velocity-divergence view of a [`PsDtfeField`] (see
/// [`PsDtfeField::divergence`]). Shares the mesh and marching cache with
/// the density view — a hull index built for one serves both.
pub struct PsDtfeDivergence<'a>(&'a PsDtfeField);

impl FieldEstimator for PsDtfeDivergence<'_> {
    #[inline]
    fn delaunay(&self) -> &Delaunay {
        &self.0.del
    }

    #[inline]
    fn march_cache(&self) -> &MarchCache {
        self.0.march_cache()
    }

    #[inline]
    fn tet_interp(&self, t: TetId) -> &TetInterp {
        &self.0.div_interp[t as usize]
    }
}

/// Multi-stream diagnosis for a flow `q ↦ x(q)`: the Lagrangian-space
/// triangulation mapped through the flow, with per-simplex orientation.
///
/// Where the map is single-stream the mapped tetrahedra tile space with one
/// consistent orientation; a fold (shell crossing) inverts some tetrahedra
/// and covers the folded region multiple times. The number of streams at a
/// point is the number of mapped tetrahedra containing it.
pub struct StreamField {
    del: Delaunay,
    /// Eulerian position of each Lagrangian vertex.
    x: Vec<Vec3>,
    /// Orientation sign of each mapped finite tetrahedron (+1 / −1, 0 for
    /// degenerate or non-finite slots), in slot order.
    orient: Vec<i8>,
}

impl StreamField {
    /// Triangulate the Lagrangian positions `q` and map vertices to the
    /// Eulerian positions `x` (both per input point, same length).
    pub fn build(q: &[Vec3], x: &[Vec3]) -> Result<StreamField, BuildError> {
        assert_eq!(q.len(), x.len(), "one Eulerian position per q");
        let del = DelaunayBuilder::new().build(q)?;
        let mut vx = vec![Vec3::ZERO; del.num_vertices()];
        for (i, &p) in x.iter().enumerate() {
            vx[del.vertex_of_input(i) as usize] = p;
        }
        let mut orient = vec![0i8; del.num_slots()];
        for t in del.finite_tets() {
            let verts = del.tet(t).verts;
            let v = signed_volume6(
                vx[verts[0] as usize],
                vx[verts[1] as usize],
                vx[verts[2] as usize],
                vx[verts[3] as usize],
            );
            orient[t as usize] = if v > 0.0 {
                1
            } else if v < 0.0 {
                -1
            } else {
                0
            };
        }
        Ok(StreamField { del, x: vx, orient })
    }

    /// The Lagrangian triangulation.
    pub fn delaunay(&self) -> &Delaunay {
        &self.del
    }

    /// Number of streams at Eulerian point `p`: mapped tetrahedra whose
    /// (possibly inverted) image contains `p`. ≥ 1 anywhere inside the
    /// mapped hull; ≥ 3 inside a fold (stream counts change by 2 across a
    /// caustic). Brute force over the mesh — a diagnosis tool, not a
    /// render-path hot loop.
    pub fn stream_count_at(&self, p: Vec3) -> u32 {
        let mut n = 0u32;
        for t in self.del.finite_tets() {
            let verts = self.del.tet(t).verts;
            let (a, b, c, d) = (
                self.x[verts[0] as usize],
                self.x[verts[1] as usize],
                self.x[verts[2] as usize],
                self.x[verts[3] as usize],
            );
            let s = self.orient[t as usize];
            if s == 0 {
                continue;
            }
            let sf = s as f64;
            // p is inside iff every face sub-volume keeps the simplex's
            // orientation sign (boundary counts as inside).
            if signed_volume6(p, b, c, d) * sf >= 0.0
                && signed_volume6(a, p, c, d) * sf >= 0.0
                && signed_volume6(a, b, p, d) * sf >= 0.0
                && signed_volume6(a, b, c, p) * sf >= 0.0
            {
                n += 1;
            }
        }
        n
    }

    /// Fraction of mapped tetrahedra whose orientation is inverted relative
    /// to the majority — 0 for a fold-free (injective) map.
    pub fn folded_fraction(&self) -> f64 {
        let (mut pos, mut neg) = (0usize, 0usize);
        for &s in &self.orient {
            match s {
                1 => pos += 1,
                -1 => neg += 1,
                _ => {}
            }
        }
        let total = pos + neg;
        if total == 0 {
            0.0
        } else {
            pos.min(neg) as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jittered_cloud(n_side: usize, seed: u64) -> Vec<Vec3> {
        let mut s = seed;
        let mut r = move || {
            s ^= s >> 12;
            s ^= s << 25;
            s ^= s >> 27;
            (s.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut pts = Vec::new();
        for i in 0..n_side {
            for j in 0..n_side {
                for k in 0..n_side {
                    pts.push(Vec3::new(
                        i as f64 + 0.6 * r(),
                        j as f64 + 0.6 * r(),
                        k as f64 + 0.6 * r(),
                    ));
                }
            }
        }
        pts
    }

    #[test]
    fn mass_conserved_exactly() {
        let pts = jittered_cloud(5, 11);
        let vel: Vec<Vec3> = pts.iter().map(|p| Vec3::new(p.y, -p.x, 0.3)).collect();
        let field = PsDtfeField::build(&pts, &vel, Mass::Uniform(1.5)).unwrap();
        let m_true = 1.5 * pts.len() as f64;
        let m_est = field.integrated_mass();
        assert!(
            (m_est - m_true).abs() <= 1e-12 * m_true,
            "{m_est} vs {m_true}"
        );
    }

    #[test]
    fn linear_flow_gradients_are_exact() {
        // v = (2x + z, 3y, −x + 4z): constant ∇v everywhere, div = 9.
        let pts = jittered_cloud(4, 23);
        let vel: Vec<Vec3> = pts
            .iter()
            .map(|p| Vec3::new(2.0 * p.x + p.z, 3.0 * p.y, -p.x + 4.0 * p.z))
            .collect();
        let field = PsDtfeField::build(&pts, &vel, Mass::Uniform(1.0)).unwrap();
        for t in field.delaunay().finite_tets() {
            let rows = field.velocity_gradient(t);
            assert!(
                (rows[0] - Vec3::new(2.0, 0.0, 1.0)).norm() < 1e-8,
                "{rows:?}"
            );
            assert!((rows[1] - Vec3::new(0.0, 3.0, 0.0)).norm() < 1e-8);
            assert!((rows[2] - Vec3::new(-1.0, 0.0, 4.0)).norm() < 1e-8);
            assert!((field.tet_divergence(t) - 9.0).abs() < 1e-8);
        }
    }

    #[test]
    fn identity_map_is_single_stream() {
        let q = jittered_cloud(4, 31);
        let sf = StreamField::build(&q, &q).unwrap();
        assert_eq!(sf.folded_fraction(), 0.0);
        // Interior points see exactly one stream.
        for p in [Vec3::new(1.5, 1.5, 1.5), Vec3::new(2.1, 1.2, 2.6)] {
            assert_eq!(sf.stream_count_at(p), 1, "at {p:?}");
        }
        // Far outside: zero.
        assert_eq!(sf.stream_count_at(Vec3::splat(100.0)), 0);
    }

    #[test]
    fn fold_multiplies_streams() {
        // 1D fold embedded in 3D: x' = x + 1.5 sin(πx/2) has x'-slope
        // 1 + 2.36 cos(πx/2), which goes negative around x ≈ 2 — the sheet
        // folds over itself and x' ∈ (~1.6, ~2.4) has three preimages.
        let q = jittered_cloud(5, 47);
        let x: Vec<Vec3> = q
            .iter()
            .map(|p| {
                Vec3::new(
                    p.x + 1.5 * (std::f64::consts::PI * p.x / 2.0).sin(),
                    p.y,
                    p.z,
                )
            })
            .collect();
        let sf = StreamField::build(&q, &x).unwrap();
        assert!(sf.folded_fraction() > 0.0, "map did not fold");
        // Somewhere in the fold there are ≥ 3 streams.
        let mut max_streams = 0;
        for i in 0..40 {
            let p = Vec3::new(1.5 + i as f64 * 0.025, 2.2, 2.4);
            max_streams = max_streams.max(sf.stream_count_at(p));
        }
        assert!(max_streams >= 3, "max streams {max_streams}");
    }
}
