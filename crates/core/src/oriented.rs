//! Surface density along an arbitrary line-of-sight direction
//! (paper §IV-A-2: "in principle any arbitrary direction can be chosen by a
//! simple rotation of the triangulation").
//!
//! The particles are rotated so the requested direction maps to `+ẑ`, the
//! DTFE field is built in the rotated frame, and the standard vertical
//! kernel runs there. Rotations preserve volumes, so the DTFE densities are
//! frame-independent and the integral along the rotated `z` equals the
//! integral along the original direction.

use crate::density::{DtfeField, Mass};
use crate::grid::{Field2, GridSpec2};
use crate::marching::{surface_density_with_stats, MarchOptions, MarchStats};
use dtfe_delaunay::BuildError;
use dtfe_geometry::mat::Mat3;
use dtfe_geometry::Vec3;

/// A line-of-sight frame: the rotation taking `direction` to `+ẑ`.
#[derive(Clone, Copy, Debug)]
pub struct LosFrame {
    pub direction: Vec3,
    rot: Mat3,
}

impl LosFrame {
    pub fn new(direction: Vec3) -> LosFrame {
        LosFrame {
            direction,
            rot: Mat3::rotation_to_z(direction),
        }
    }

    /// World → rotated frame.
    #[inline]
    pub fn to_frame(&self, p: Vec3) -> Vec3 {
        self.rot.apply(p)
    }

    /// Rotated frame → world.
    #[inline]
    pub fn to_world(&self, p: Vec3) -> Vec3 {
        self.rot.transpose().apply(p)
    }
}

/// DTFE field built in a rotated frame, for integration along an arbitrary
/// direction.
pub struct OrientedField {
    pub frame: LosFrame,
    pub field: DtfeField,
}

impl OrientedField {
    /// Rotate `points` so `direction` becomes the line of sight and build
    /// the DTFE field there.
    pub fn build(
        points: &[Vec3],
        mass: Mass,
        direction: Vec3,
    ) -> Result<OrientedField, BuildError> {
        let frame = LosFrame::new(direction);
        let rotated: Vec<Vec3> = points.iter().map(|&p| frame.to_frame(p)).collect();
        Ok(OrientedField {
            frame,
            field: DtfeField::build(&rotated, mass)?,
        })
    }

    /// Surface density on a grid specified *in the rotated frame's x-y
    /// plane* (grid axes ⊥ the line of sight).
    pub fn surface_density(&self, grid: &GridSpec2, opts: &MarchOptions) -> (Field2, MarchStats) {
        surface_density_with_stats(&self.field, grid, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtfe_geometry::Vec2;

    fn jittered_cloud(n_side: usize, seed: u64) -> Vec<Vec3> {
        let mut s = seed;
        let mut r = move || {
            s ^= s >> 12;
            s ^= s << 25;
            s ^= s >> 27;
            (s.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut pts = Vec::new();
        for i in 0..n_side {
            for j in 0..n_side {
                for k in 0..n_side {
                    pts.push(Vec3::new(
                        i as f64 + 0.6 * r(),
                        j as f64 + 0.6 * r(),
                        k as f64 + 0.6 * r(),
                    ));
                }
            }
        }
        pts
    }

    #[test]
    fn z_direction_matches_plain_kernel() {
        let pts = jittered_cloud(5, 3);
        let grid = GridSpec2::covering(Vec2::new(1.0, 1.0), Vec2::new(3.5, 3.5), 12, 12);
        let opts = MarchOptions::new().parallel(false);

        let of = OrientedField::build(&pts, Mass::Uniform(1.0), Vec3::new(0.0, 0.0, 1.0)).unwrap();
        let (rotated, _) = of.surface_density(&grid, &opts);

        let plain = DtfeField::build(&pts, Mass::Uniform(1.0)).unwrap();
        let direct = crate::marching::surface_density(&plain, &grid, &opts);
        for (a, b) in rotated.data.iter().zip(&direct.data) {
            assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn axis_permutation_symmetry() {
        // Integrating a cloud along +x equals integrating its axis-swapped
        // twin along +z (up to the kernel's exact arithmetic).
        let pts = jittered_cloud(5, 17);
        let grid = GridSpec2::covering(Vec2::new(1.2, 1.2), Vec2::new(3.2, 3.2), 10, 10);
        let opts = MarchOptions::new().parallel(false);

        let of = OrientedField::build(&pts, Mass::Uniform(1.0), Vec3::new(1.0, 0.0, 0.0)).unwrap();
        let (along_x, stats) = of.surface_density(&grid, &opts);
        assert_eq!(stats.failures, 0);

        // rotation_to_z maps +x̂→ẑ; build the comparison cloud by applying
        // the same rotation explicitly.
        let frame = LosFrame::new(Vec3::new(1.0, 0.0, 0.0));
        let swapped: Vec<Vec3> = pts.iter().map(|&p| frame.to_frame(p)).collect();
        let twin = DtfeField::build(&swapped, Mass::Uniform(1.0)).unwrap();
        let direct = crate::marching::surface_density(&twin, &grid, &opts);
        for (a, b) in along_x.data.iter().zip(&direct.data) {
            assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn oblique_direction_conserves_mass() {
        let pts = jittered_cloud(6, 29);
        let dir = Vec3::new(1.0, 1.0, 1.0);
        let of = OrientedField::build(&pts, Mass::Uniform(1.0), dir).unwrap();
        // Rotations preserve the DTFE integral.
        let m = of.field.integrated_mass();
        assert!(
            (m - pts.len() as f64).abs() < 1e-8 * pts.len() as f64,
            "mass {m}"
        );

        // A wide grid in the rotated frame captures (almost) all mass.
        let frame = LosFrame::new(dir);
        let rotated: Vec<Vec3> = pts.iter().map(|&p| frame.to_frame(p)).collect();
        let (lo, hi) = rotated.iter().fold(
            (
                Vec2::new(f64::INFINITY, f64::INFINITY),
                Vec2::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
            ),
            |(lo, hi), p| {
                (
                    Vec2::new(lo.x.min(p.x), lo.y.min(p.y)),
                    Vec2::new(hi.x.max(p.x), hi.y.max(p.y)),
                )
            },
        );
        let grid = GridSpec2::covering(lo - Vec2::new(0.1, 0.1), hi + Vec2::new(0.1, 0.1), 96, 96);
        let opts = MarchOptions::new().samples(2).parallel(false);
        let (sigma, stats) = of.surface_density(&grid, &opts);
        assert_eq!(stats.failures, 0);
        let grid_mass = sigma.total_mass();
        assert!(
            (grid_mass - pts.len() as f64).abs() < 0.03 * pts.len() as f64,
            "grid mass {grid_mass}"
        );
    }

    #[test]
    fn frame_roundtrip() {
        let frame = LosFrame::new(Vec3::new(0.2, -0.5, 0.8));
        let p = Vec3::new(1.0, 2.0, 3.0);
        assert!(frame.to_world(frame.to_frame(p)).distance(p) < 1e-12);
    }
}
