//! The DTFE estimator: per-vertex densities and the piecewise-linear
//! interpolant (paper §III-A).

use crate::estimator::{entry_facets_of, FieldEstimator};
use crate::marching::MarchCache;
use dtfe_delaunay::{BuildError, Delaunay, DelaunayBuilder, Located, TetId};
use dtfe_geometry::tetra::{linear_gradient, volume};
use dtfe_geometry::{Vec2, Vec3};
use rayon::prelude::*;
use std::sync::OnceLock;

/// Particle masses for the density estimate.
#[derive(Clone, Debug)]
pub enum Mass {
    /// All particles share one mass (the N-body case).
    Uniform(f64),
    /// Per-*input-point* masses (merged duplicates accumulate their masses).
    PerParticle(Vec<f64>),
}

/// Per-tetrahedron interpolation cache: the linear field inside tetrahedron
/// `t` is `ρ(x) = rho0 + grad · (x - v0)` (Eq. 1, with `x0 = v0`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TetInterp {
    pub v0: Vec3,
    pub rho0: f64,
    pub grad: Vec3,
}

/// A DTFE density field: the triangulation, the vertex densities of Eq. 2,
/// and precomputed per-tetrahedron gradients.
///
/// Densities are `ρ̂(x_i) = (d+1) m_i / Σ_j V(T_{j,i})` with `d = 3`: four
/// times the vertex mass over the volume of its star (the contiguous Voronoi
/// cell). This makes the piecewise-linear field conserve total mass exactly:
/// `∫ ρ̂ dV = Σ_i m_i` over the convex hull.
pub struct DtfeField {
    del: Delaunay,
    vertex_density: Vec<f64>,
    /// Indexed by tetrahedron slot id; ghost/freed slots hold zeros.
    interp: Vec<TetInterp>,
    /// Pre-normalized per-slot tetrahedra for the coherent marching kernel,
    /// built on first render so non-marching users pay nothing.
    march: OnceLock<MarchCache>,
}

impl DtfeField {
    /// Triangulate `points` and estimate densities.
    pub fn build(points: &[Vec3], mass: Mass) -> Result<DtfeField, BuildError> {
        let del = DelaunayBuilder::new().build(points)?;
        Ok(Self::from_delaunay_for_inputs(del, points.len(), mass))
    }

    /// Use an existing triangulation whose vertices are the particles
    /// (no merged duplicates, or uniform mass where merging is irrelevant
    /// to the caller).
    pub fn from_delaunay(del: Delaunay, mass: Mass) -> DtfeField {
        let n = del.vertices().len();
        Self::from_delaunay_for_inputs(del, n, mass)
    }

    /// Use an existing triangulation built from `n_input` input points
    /// (duplicates may have merged; masses accumulate via
    /// [`Delaunay::vertex_of_input`]).
    ///
    /// The triangulation's tetrahedron slots are renumbered into
    /// cache-coherent BFS order ([`Delaunay::compact_reorder`]) so marching
    /// rays touch mostly-contiguous memory. Density estimation runs on the
    /// *original* slot order and the per-tet interpolants are then permuted
    /// along with the slots, so every density, gradient, and rendered field
    /// is bit-identical to the unordered construction — the reorder is pure
    /// data movement. `TetId`s obtained from this field's
    /// [`DtfeField::delaunay`] are consistent with every accessor; only
    /// ids retained from `del` *before* this call go stale — use
    /// [`DtfeField::from_delaunay_unordered`] if you need those to survive.
    pub fn from_delaunay_for_inputs(del: Delaunay, n_input: usize, mass: Mass) -> DtfeField {
        let mut field = Self::from_delaunay_unordered(del, n_input, mass);
        let remap = field.del.compact_reorder();
        let mut interp = vec![
            TetInterp {
                v0: Vec3::ZERO,
                rho0: 0.0,
                grad: Vec3::ZERO,
            };
            field.del.num_slots()
        ];
        for (old, &new) in remap.iter().enumerate() {
            if new != dtfe_delaunay::NONE {
                interp[new as usize] = field.interp[old];
            }
        }
        field.interp = interp;
        field
    }

    /// As [`DtfeField::from_delaunay_for_inputs`] but keeping `del`'s slot
    /// numbering (no cache reordering pass), so `TetId`s held by the caller
    /// stay valid.
    pub fn from_delaunay_unordered(del: Delaunay, n_input: usize, mass: Mass) -> DtfeField {
        // Vertex masses: merged duplicates accumulate.
        let mut vmass = vec![0.0f64; del.num_vertices()];
        match &mass {
            Mass::Uniform(m) => {
                if n_input == del.num_vertices() {
                    vmass.fill(*m);
                } else {
                    for i in 0..n_input {
                        vmass[del.vertex_of_input(i) as usize] += m;
                    }
                }
            }
            Mass::PerParticle(ms) => {
                assert_eq!(ms.len(), n_input, "mass count != input point count");
                for (i, &m) in ms.iter().enumerate() {
                    vmass[del.vertex_of_input(i) as usize] += m;
                }
            }
        }

        // Eq. 2: ρ̂_i = (d+1) m_i / W_i.
        let star = del.vertex_star_volumes();
        let vertex_density: Vec<f64> = vmass
            .iter()
            .zip(&star)
            .map(|(&m, &w)| if w > 0.0 { 4.0 * m / w } else { 0.0 })
            .collect();

        // Per-tet constant gradients (Eq. 1), computed in parallel.
        let slots = del.num_slots();
        let interp: Vec<TetInterp> = (0..slots as u32)
            .into_par_iter()
            .map(|t| {
                let tet = del.tet_slot(t);
                if !tet.is_live() || tet.is_ghost() {
                    return TetInterp {
                        v0: Vec3::ZERO,
                        rho0: 0.0,
                        grad: Vec3::ZERO,
                    };
                }
                let v = [
                    del.vertex(tet.verts[0]),
                    del.vertex(tet.verts[1]),
                    del.vertex(tet.verts[2]),
                    del.vertex(tet.verts[3]),
                ];
                let f = [
                    vertex_density[tet.verts[0] as usize],
                    vertex_density[tet.verts[1] as usize],
                    vertex_density[tet.verts[2] as usize],
                    vertex_density[tet.verts[3] as usize],
                ];
                // Degenerate (coplanar) tetrahedra carry zero volume, so a
                // zero gradient is the documented density policy — their
                // contribution to any line-of-sight integral is negligible.
                // See `estimator::DegeneratePolicy::ZeroGradient`.
                let grad = linear_gradient(&v, &f).unwrap_or(Vec3::ZERO);
                TetInterp {
                    v0: v[0],
                    rho0: f[0],
                    grad,
                }
            })
            .collect();

        DtfeField {
            del,
            vertex_density,
            interp,
            march: OnceLock::new(),
        }
    }

    /// The underlying triangulation.
    #[inline]
    pub fn delaunay(&self) -> &Delaunay {
        &self.del
    }

    /// The marching kernel's pre-normalized tetrahedron cache, built on
    /// first use (one parallel pass over the slots).
    #[inline]
    pub fn march_cache(&self) -> &MarchCache {
        self.march.get_or_init(|| MarchCache::build(&self.del))
    }

    /// Vertex densities `ρ̂(x_i)` (Eq. 2), indexed by `VertexId`.
    #[inline]
    pub fn vertex_densities(&self) -> &[f64] {
        &self.vertex_density
    }

    /// The linear interpolant parameters of finite tetrahedron `t`.
    #[inline]
    pub fn tet_interp(&self, t: TetId) -> &TetInterp {
        &self.interp[t as usize]
    }

    /// Evaluate `ρ̂` inside tetrahedron `t` at `p` (Eq. 1). `p` is assumed
    /// to lie in `t`; no containment check.
    #[inline]
    pub fn density_in_tet(&self, t: TetId, p: Vec3) -> f64 {
        let ti = &self.interp[t as usize];
        ti.rho0 + ti.grad.dot(p - ti.v0)
    }

    /// Point-located density: walk from `hint`, interpolate, and return the
    /// containing tetrahedron for the next call's hint. `None` outside the
    /// hull. This is the walking baseline's inner loop.
    pub fn density_at_hinted(&self, p: Vec3, hint: TetId, seed: &mut u64) -> Option<(f64, TetId)> {
        match self.del.locate_seeded(p, hint, seed) {
            Located::Finite(t) => Some((self.density_in_tet(t, p), t)),
            Located::Ghost(_) => None,
            Located::Vertex(v) => {
                // Any incident tetrahedron gives the same vertex value.
                Some((self.vertex_density[v as usize], hint))
            }
        }
    }

    /// Convenience single query (fresh walk each call).
    pub fn density_at(&self, p: Vec3) -> Option<f64> {
        let mut seed = 0x9E3779B97F4A7C15 ^ (p.x.to_bits() ^ p.y.to_bits().rotate_left(17));
        self.density_at_hinted(p, dtfe_delaunay::NONE, &mut seed)
            .map(|(d, _)| d)
    }

    /// Total estimated mass `∫ ρ̂ dV` over the hull — equals the input mass
    /// up to floating-point roundoff (DTFE's conservation property).
    pub fn integrated_mass(&self) -> f64 {
        self.del
            .finite_tets()
            .map(|t| {
                let p = self.del.tet_points(t);
                let vol = volume(p[0], p[1], p[2], p[3]);
                let tet = self.del.tet(t);
                let mean: f64 = tet
                    .verts
                    .iter()
                    .map(|&v| self.vertex_density[v as usize])
                    .sum::<f64>()
                    / 4.0;
                vol * mean
            })
            .sum()
    }

    /// Ghost tetrahedra whose hull facet faces the *negative* integration
    /// direction (`n_hull · ẑ < 0`, Eq. 14): the candidate entry facets for
    /// upward lines of sight, projected to 2D.
    pub fn entry_facets(&self) -> Vec<EntryFacet> {
        entry_facets_of(&self.del)
    }
}

/// `DtfeField` is the canonical estimator: the trait methods are the same
/// accessors the marching kernel called before the [`FieldEstimator`] seam
/// existed, so rendering through the trait is bit-identical to the
/// pre-trait kernel (asserted by the conformance suite).
impl FieldEstimator for DtfeField {
    #[inline]
    fn delaunay(&self) -> &Delaunay {
        &self.del
    }

    #[inline]
    fn march_cache(&self) -> &MarchCache {
        DtfeField::march_cache(self)
    }

    #[inline]
    fn tet_interp(&self, t: TetId) -> &TetInterp {
        &self.interp[t as usize]
    }
}

/// A downward-facing hull facet projected into the x-y plane; the 2D
/// "triangulation" of Eq. 14 used to find the first tetrahedron a vertical
/// line of sight enters.
#[derive(Clone, Copy, Debug)]
pub struct EntryFacet {
    /// The ghost tetrahedron owning the facet; its `neighbors[3]` is the
    /// finite tetrahedron the ray enters first.
    pub ghost: TetId,
    pub a: Vec2,
    pub b: Vec2,
    pub c: Vec2,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jittered_cloud(n_side: usize, seed: u64) -> Vec<Vec3> {
        let mut s = seed;
        let mut r = move || {
            s ^= s >> 12;
            s ^= s << 25;
            s ^= s >> 27;
            (s.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut pts = Vec::new();
        for i in 0..n_side {
            for j in 0..n_side {
                for k in 0..n_side {
                    pts.push(Vec3::new(
                        i as f64 + 0.6 * r(),
                        j as f64 + 0.6 * r(),
                        k as f64 + 0.6 * r(),
                    ));
                }
            }
        }
        pts
    }

    #[test]
    fn mass_conservation() {
        let pts = jittered_cloud(6, 3);
        let field = DtfeField::build(&pts, Mass::Uniform(2.5)).unwrap();
        let m_total = 2.5 * pts.len() as f64;
        let m_est = field.integrated_mass();
        assert!(
            (m_est - m_total).abs() < 1e-9 * m_total,
            "integrated {m_est} vs input {m_total}"
        );
    }

    #[test]
    fn per_particle_masses_accumulate_on_duplicates() {
        let mut pts = vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(0.3, 0.3, 0.3),
        ];
        pts.push(pts[4]); // duplicate carrying extra mass
        let masses = vec![1.0, 1.0, 1.0, 1.0, 2.0, 3.0];
        let field = DtfeField::build(&pts, Mass::PerParticle(masses)).unwrap();
        assert!((field.integrated_mass() - 9.0).abs() < 1e-9);
        // The duplicate vertex carries mass 5.
        let v = field.delaunay().vertex_of_input(4);
        let w = field.delaunay().vertex_star_volumes()[v as usize];
        let expect = 4.0 * 5.0 / w;
        assert!((field.vertex_densities()[v as usize] - expect).abs() < 1e-9);
    }

    #[test]
    fn uniform_lattice_density_in_interior() {
        // On a unit lattice with unit masses, the mean density is 1; interior
        // vertex stars tile space so interior densities are exactly 4m/W with
        // W varying by vertex parity, but interpolated mass over interior
        // cells must average to ~1.
        let pts: Vec<Vec3> = (0..6)
            .flat_map(|i| {
                (0..6)
                    .flat_map(move |j| (0..6).map(move |k| Vec3::new(i as f64, j as f64, k as f64)))
            })
            .collect();
        let field = DtfeField::build(&pts, Mass::Uniform(1.0)).unwrap();
        let rho = field.density_at(Vec3::new(2.5, 2.5, 2.5)).unwrap();
        assert!(rho > 0.3 && rho < 3.0, "rho = {rho}");
        // Outside the hull:
        assert!(field.density_at(Vec3::new(50.0, 0.0, 0.0)).is_none());
    }

    #[test]
    fn density_linear_inside_tet() {
        let pts = vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
        ];
        let field = DtfeField::build(&pts, Mass::Uniform(1.0)).unwrap();
        let t = field.delaunay().finite_tets().next().unwrap();
        // All vertices have the same star volume (the single tet), so the
        // field is constant = 4 * 1 / (1/6) = 24.
        let rho = field.density_in_tet(t, Vec3::new(0.2, 0.2, 0.2));
        assert!((rho - 24.0).abs() < 1e-9, "rho = {rho}");
        assert!((field.integrated_mass() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn reorder_preserves_interpolants() {
        // The cache reorder permutes slots only: every tetrahedron's
        // interpolant (v0, rho0, grad) must be carried over bit-for-bit,
        // since the marching integral is computed from exactly these.
        use dtfe_delaunay::DelaunayBuilder;
        let pts = jittered_cloud(5, 21);
        // Three identical deterministic builds: one kept unordered, one
        // reordered standalone to learn the (deterministic) remap, one run
        // through the reordering constructor.
        let d1 = DelaunayBuilder::new().build(&pts).unwrap();
        let mut d2 = DelaunayBuilder::new().build(&pts).unwrap();
        let d3 = DelaunayBuilder::new().build(&pts).unwrap();
        let remap = d2.compact_reorder();
        let fa = DtfeField::from_delaunay_unordered(d1, pts.len(), Mass::Uniform(1.0));
        let fb = DtfeField::from_delaunay_for_inputs(d3, pts.len(), Mass::Uniform(1.0));
        // Densities are estimated before the reorder, so they are bitwise
        // equal, and the interpolants are merely permuted by the remap.
        assert_eq!(fa.vertex_densities(), fb.vertex_densities());
        let mut compared = 0usize;
        for (old, &new) in remap.iter().enumerate() {
            if new != u32::MAX && !fa.delaunay().tet(old as u32).is_ghost() {
                assert_eq!(fa.tet_interp(old as u32), fb.tet_interp(new), "slot {old}");
                compared += 1;
            }
        }
        assert_eq!(compared, fa.delaunay().num_tets());
    }

    #[test]
    fn entry_facets_cover_footprint() {
        let pts = jittered_cloud(4, 9);
        let field = DtfeField::build(&pts, Mass::Uniform(1.0)).unwrap();
        let facets = field.entry_facets();
        assert!(!facets.is_empty());
        // Each entry facet's ghost leads to a finite tetrahedron.
        for f in &facets {
            let inner = field.delaunay().tet(f.ghost).neighbors[3];
            assert!(!field.delaunay().tet(inner).is_ghost());
        }
        // Projected area of downward facets ≈ hull footprint area; for a
        // convex body both up- and down-facing sets project to the same area.
        let area_down: f64 = facets
            .iter()
            .map(|f| 0.5 * (f.b - f.a).perp_dot(f.c - f.a).abs())
            .sum();
        assert!(area_down > 1.0, "area = {area_down}");
    }
}
