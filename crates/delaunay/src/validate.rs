//! Structural and Delaunay-property validation.
//!
//! These checks exist because the insertion code is the foundation everything
//! else (DTFE estimation, marching, the baselines) stands on; tests call them
//! after every adversarial construction.

use crate::mesh::{TetId, INFINITE};
use crate::Delaunay;
use dtfe_geometry::predicates::{insphere, orient3d, Orientation};

/// A violated invariant, with enough context to debug it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidationError {
    /// A tetrahedron has repeated vertex ids.
    RepeatedVertex(TetId),
    /// A finite tetrahedron is not positively oriented.
    BadOrientation(TetId),
    /// `neighbors[i]` does not point back.
    NonReciprocalAdjacency(TetId, TetId),
    /// Two tets listed as neighbors do not share a facet (vertex sets
    /// disagree).
    FacetMismatch(TetId, TetId),
    /// A ghost without the infinite vertex at slot 3, or an infinite vertex
    /// elsewhere.
    BadGhostLayout(TetId),
    /// A ghost's base facet is not inward-oriented w.r.t. the adjacent
    /// finite tetrahedron.
    BadGhostOrientation(TetId),
    /// The empty-circumsphere property fails: `vertex` is strictly inside
    /// the circumball of `tet`.
    NotDelaunay { tet: TetId, vertex: u32 },
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for ValidationError {}

/// Run every check we have: the structural + local-Delaunay validation plus
/// the brute-force global empty-circumsphere cross-check. O(tets × vertices);
/// intended for tests (the parallel-vs-serial equivalence suite in
/// particular), not production paths.
pub fn global_delaunay_check(d: &Delaunay) -> Result<(), ValidationError> {
    d.validate()?;
    d.validate_delaunay_global()
}

impl Delaunay {
    /// Check every structural invariant: vertex distinctness, positive
    /// orientation, reciprocal adjacency with matching shared facets, ghost
    /// canonicalization, and the *local* Delaunay property (for each
    /// interior facet, the opposite vertex of the neighbor is not strictly
    /// inside the circumball — which implies the global property for a
    /// triangulation).
    pub fn validate(&self) -> Result<(), ValidationError> {
        for (i, tet) in self.tets.iter().enumerate() {
            if !tet.is_live() {
                continue;
            }
            let t = i as TetId;
            // Distinct vertices.
            for a in 0..4 {
                for b in (a + 1)..4 {
                    if tet.verts[a] == tet.verts[b] {
                        return Err(ValidationError::RepeatedVertex(t));
                    }
                }
            }
            // Ghost layout.
            if tet.verts[..3].contains(&INFINITE) {
                return Err(ValidationError::BadGhostLayout(t));
            }
            if tet.is_ghost() {
                // Adjacent finite tet across the base facet.
                let inner = &self.tets[tet.neighbors[3] as usize];
                if inner.is_ghost() {
                    return Err(ValidationError::BadGhostLayout(t));
                }
                // The base must be inward-oriented: the inner tet's opposite
                // vertex lies on the interior side (Negative), or Zero only
                // when the base is collinear (degenerate flat hull facet).
                let opp = inner
                    .verts
                    .iter()
                    .copied()
                    .find(|v| !tet.verts[..3].contains(v))
                    .expect("neighbor shares all base vertices");
                let (a, b, c) = (
                    self.points[tet.verts[0] as usize],
                    self.points[tet.verts[1] as usize],
                    self.points[tet.verts[2] as usize],
                );
                match orient3d(a, b, c, self.points[opp as usize]) {
                    Orientation::Negative => {}
                    Orientation::Positive => return Err(ValidationError::BadGhostOrientation(t)),
                    Orientation::Zero => {
                        // Acceptable only for a degenerate (collinear) base.
                        let collinear = orient3d(a, b, c, self.points[inner.verts[0] as usize])
                            .is_zero()
                            && orient3d(a, b, c, self.points[inner.verts[1] as usize]).is_zero();
                        if !collinear {
                            return Err(ValidationError::BadGhostOrientation(t));
                        }
                    }
                }
            } else {
                let p = self.tet_points(t);
                if !orient3d(p[0], p[1], p[2], p[3]).is_positive() {
                    return Err(ValidationError::BadOrientation(t));
                }
            }
            // Adjacency.
            for k in 0..4 {
                let n = tet.neighbors[k];
                let ntet = &self.tets[n as usize];
                if !ntet.is_live() {
                    return Err(ValidationError::NonReciprocalAdjacency(t, n));
                }
                let Some(back) = ntet.index_of_neighbor(t) else {
                    return Err(ValidationError::NonReciprocalAdjacency(t, n));
                };
                // Shared facet: same vertex set.
                let mut fa = tet.face(k);
                let mut fb = ntet.face(back);
                fa.sort_unstable();
                fb.sort_unstable();
                if fa != fb {
                    return Err(ValidationError::FacetMismatch(t, n));
                }
            }
            // Local Delaunay across finite-finite facets.
            if !tet.is_ghost() {
                let p = self.tet_points(t);
                for k in 0..4 {
                    let n = tet.neighbors[k];
                    let ntet = &self.tets[n as usize];
                    if ntet.is_ghost() {
                        continue;
                    }
                    let back = ntet.index_of_neighbor(t).unwrap();
                    let opp = ntet.verts[back];
                    let q = self.points[opp as usize];
                    if insphere(p[0], p[1], p[2], p[3], q).is_positive() {
                        return Err(ValidationError::NotDelaunay {
                            tet: t,
                            vertex: opp,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Brute-force global empty-circumsphere check: O(tets × vertices), for
    /// tests on small inputs. [`Delaunay::validate`]'s local check already
    /// implies this for valid triangulations; this is the independent
    /// cross-check.
    pub fn validate_delaunay_global(&self) -> Result<(), ValidationError> {
        for t in self.finite_tets() {
            let p = self.tet_points(t);
            let verts = self.tets[t as usize].verts;
            for (vi, &q) in self.points.iter().enumerate() {
                if verts.contains(&(vi as u32)) {
                    continue;
                }
                if insphere(p[0], p[1], p[2], p[3], q).is_positive() {
                    return Err(ValidationError::NotDelaunay {
                        tet: t,
                        vertex: vi as u32,
                    });
                }
            }
        }
        Ok(())
    }
}
