//! Cache-coherent slot renumbering for render-time traversal.
//!
//! The marching kernel steps from tetrahedron to tetrahedron through the
//! `neighbors[]` adjacency; after incremental construction, adjacent
//! tetrahedra sit in essentially random slots, so every step is a cache
//! miss. A breadth-first renumbering over facet adjacency puts neighbors in
//! nearby slots, which makes a marching ray touch mostly-contiguous memory
//! (the locality observation behind the DTFE public software's kernel).

use crate::mesh::{TetId, NONE};
use crate::Delaunay;

impl Delaunay {
    /// Renumber tetrahedron slots into breadth-first order over facet
    /// adjacency, starting from a hull (ghost) tetrahedron, and drop freed
    /// slots so the slot array becomes dense.
    ///
    /// Only slot *numbers* change: every `Tet`'s vertex array — and
    /// therefore every geometric predicate, Plücker product, and marching
    /// integral computed from it — is untouched, so renders on the
    /// reordered mesh are bit-identical to renders on the original.
    ///
    /// Returns the remap `old slot → new slot` (`NONE` for freed slots) so
    /// callers holding `TetId`s can translate them. The triangulation
    /// remains fully functional afterwards (insertion scratch state is
    /// reset consistently).
    pub fn compact_reorder(&mut self) -> Vec<TetId> {
        let n = self.tets.len();
        let live = self.n_finite + self.n_ghost;
        let mut remap = vec![NONE; n];
        let mut order: Vec<TetId> = Vec::with_capacity(live);
        // Marching enters through the hull, so seeding the BFS from a ghost
        // makes slot order roughly track traversal depth along lines of
        // sight. Fall back to any live slot (no ghosts only happens on
        // meshes that failed construction).
        let start = (0..n as TetId)
            .find(|&t| self.tets[t as usize].is_live() && self.tets[t as usize].is_ghost())
            .or_else(|| (0..n as TetId).find(|&t| self.tets[t as usize].is_live()));
        let mut head = 0usize;
        if let Some(s) = start {
            remap[s as usize] = 0;
            order.push(s);
        }
        while head < order.len() {
            let t = order[head];
            head += 1;
            for &nb in &self.tets[t as usize].neighbors {
                if nb != NONE && self.tets[nb as usize].is_live() && remap[nb as usize] == NONE {
                    remap[nb as usize] = order.len() as TetId;
                    order.push(nb);
                }
            }
        }
        // The adjacency graph of a valid triangulation is connected, but
        // sweep for stragglers so the remap is total even on a mesh some
        // invariant check would reject.
        for t in 0..n as TetId {
            if self.tets[t as usize].is_live() && remap[t as usize] == NONE {
                remap[t as usize] = order.len() as TetId;
                order.push(t);
            }
        }

        let mut tets = Vec::with_capacity(order.len());
        for &old in &order {
            let mut tet = self.tets[old as usize];
            for nb in &mut tet.neighbors {
                if *nb != NONE {
                    *nb = remap[*nb as usize];
                }
            }
            tets.push(tet);
        }
        self.tets = tets;
        self.free.clear();
        // Epoch marks only need `mark[t] != 2*epoch` for unvisited slots;
        // zeroing both keeps the invariant (insertion bumps epoch first).
        self.mark = vec![0; order.len()];
        self.epoch = 0;
        self.hint = if order.is_empty() { NONE } else { 0 };
        remap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DelaunayBuilder;
    use dtfe_geometry::Vec3;

    fn jittered_cloud(n_side: usize, seed: u64) -> Vec<Vec3> {
        let mut s = seed;
        let mut r = move || {
            s ^= s >> 12;
            s ^= s << 25;
            s ^= s >> 27;
            (s.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut pts = Vec::new();
        for i in 0..n_side {
            for j in 0..n_side {
                for k in 0..n_side {
                    pts.push(Vec3::new(
                        i as f64 + 0.6 * r(),
                        j as f64 + 0.6 * r(),
                        k as f64 + 0.6 * r(),
                    ));
                }
            }
        }
        pts
    }

    #[test]
    fn reorder_preserves_mesh() {
        let pts = jittered_cloud(5, 77);
        let mut a = DelaunayBuilder::new().build(&pts).unwrap();
        let b = DelaunayBuilder::new().build(&pts).unwrap(); // identical build
        let remap = a.compact_reorder();

        // Dense, valid, same counts, all invariants intact.
        assert_eq!(a.num_slots(), a.num_tets() + a.num_ghosts());
        assert_eq!(a.num_tets(), b.num_tets());
        assert_eq!(a.num_ghosts(), b.num_ghosts());
        a.validate().unwrap();
        a.validate_delaunay_global().unwrap();

        // The remap is a bijection from live old slots onto 0..len.
        let mut seen = vec![false; a.num_slots()];
        for (old, &new) in remap.iter().enumerate() {
            let live = b.tet_slot(old as TetId).is_live();
            assert_eq!(new != NONE, live, "slot {old}");
            if new != NONE {
                assert!(!seen[new as usize], "slot {new} mapped twice");
                seen[new as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));

        // Every tetrahedron's vertex array is carried over verbatim.
        for (old, &new) in remap.iter().enumerate() {
            if new != NONE {
                assert_eq!(b.tet_slot(old as TetId).verts, a.tet(new).verts);
            }
        }
    }

    #[test]
    fn reorder_neighbors_are_nearby() {
        // The point of the pass: after BFS renumbering the mean slot
        // distance to a neighbor must be far below the random-order mean
        // (~n/3 for n slots).
        let pts = jittered_cloud(8, 3);
        let mut d = DelaunayBuilder::new().build(&pts).unwrap();
        d.compact_reorder();
        let n = d.num_slots();
        let mut dist = 0u64;
        let mut edges = 0u64;
        for t in 0..n as TetId {
            for &nb in &d.tet(t).neighbors {
                dist += (nb as i64 - t as i64).unsigned_abs();
                edges += 1;
            }
        }
        let mean = dist as f64 / edges as f64;
        assert!(
            mean < n as f64 / 8.0,
            "mean neighbor slot distance {mean:.1} of {n} slots"
        );
    }

    #[test]
    fn reorder_then_insert_still_works() {
        // The reorder resets free-list/mark/epoch/hint; later insertions
        // must keep functioning on the compacted arrays.
        let pts = jittered_cloud(3, 11);
        let mut d = DelaunayBuilder::new().build(&pts).unwrap();
        d.compact_reorder();
        let extra = jittered_cloud(3, 13);
        for p in &extra {
            d.insert_point(*p + Vec3::splat(0.25));
        }
        d.validate().unwrap();
    }
}
