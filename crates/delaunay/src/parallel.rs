//! Rayon-parallel Bowyer–Watson construction by independent-cavity rounds.
//!
//! # Strategy
//!
//! After a short serial prefix, the mesh grows in bulk-synchronous rounds of
//! four phases over a *frontier*: the next `FRONTIER` still-uninserted points
//! of the canonical insertion sequence. Using a global order-prefix — rather
//! than, say, one independent cursor per spatial region — is what makes the
//! result provably identical to the serial mesh (see below).
//!
//! The canonical order ([`crate::morton::stratified_order`]) interleaves 64
//! contiguous Morton chunks round-robin, so order-consecutive points sit in
//! distant regions of the space-filling curve. That is what makes the greedy
//! selection below actually accept many points per round: in plain Morton
//! order consecutive points are spatial *neighbors*, their conflict regions
//! chain-overlap, and acceptance degenerates to ~1 point per round (measured
//! on a 8k clustered cloud: 7 579 rounds for 8 128 insertions).
//!
//! 1. **Scan** (parallel, mesh read-only): frontier points without a valid
//!    cached region are split into `LANES` contiguous sub-blocks; each lane
//!    locates its points — seeding the stochastic walk from a lane-local
//!    hint — and computes every point's conflict region and boundary with
//!    lane-local visited sets.
//! 2. **Select** (serial): candidates are visited in insertion order and
//!    greedily accepted when their *footprint* (conflict region plus
//!    boundary tets) is disjoint from every earlier candidate's footprint
//!    this round — accepted or not; the rest are deferred to the next
//!    round's frontier. Accepted points get vertex ids and pre-assigned
//!    tetrahedron slots (free list first, then fresh).
//! 3. **Star** (parallel): each accepted cavity is retriangulated into its
//!    pre-assigned slots. Footprints are pairwise disjoint, so the tets each
//!    task reads and writes are pairwise disjoint — raw-pointer writes into
//!    the shared slot array are race-free by construction.
//! 4. **Commit** (serial): conflict tets are freed and the live-tet counters
//!    and walk hint updated.
//!
//! A final renumbering pass relabels the vertices created by the rounds into
//! first-encounter order over the insertion sequence, which is exactly the
//! numbering the serial path produces.
//!
//! Deferred candidates keep their scan result across rounds when their
//! footprint is disjoint from every footprint *accepted* that round: by the
//! commutation argument below, the accepted insertions then leave every tet
//! of the cached region and boundary untouched (reads and writes stay inside
//! their own disjoint footprints and freshly assigned slots), so the cached
//! conflict region is still exactly what a rescan would recompute. Only
//! candidates actually invalidated by a nearby insertion pay for a rescan,
//! which keeps total scan work at O(n) instead of O(n · FRONTIER).
//!
//! # Why the result equals the serial mesh
//!
//! Two insertions with disjoint footprints *commute exactly*: by the
//! circumball-pencil argument, every tetrahedron created by inserting `a`
//! has its circumball inside the union of the balls of the two tets flanking
//! its base facet — both in `a`'s footprint — so a point `b` with a disjoint
//! footprint has the identical conflict region (and boundary facets, and
//! therefore identical new tets) whether or not `a` was inserted first.
//! Moreover inserting `a` leaves the footprint of any disjoint `b`
//! untouched, and can only grow the footprint of an *overlapping* `b` into
//! `a`'s own footprint and `a`'s new tets.
//!
//! Now take the round's candidates `c1 < c2 < …` (insertion order — a prefix
//! of all remaining points, which is the crucial property). `c1` is always
//! accepted, matching serial. Inductively, an accepted `ck` has a footprint
//! disjoint from the footprints of *all* `ci < ck` — accepted ones (their
//! regions and new tets, by the growth bound above) and deferred ones (their
//! stale footprints, which only grow into already-blocked sets) — so
//! inserting `ck` now commutes with every pending earlier point, and the
//! execution order can be rewritten into serial insertion order by exchanges
//! of commuting pairs. The parallel mesh is therefore the same abstract
//! simplicial complex as the serial Morton-order mesh — even for degenerate
//! (grid, cospherical) inputs where the Delaunay triangulation is not unique
//! — and is identical for every thread count. The equivalence suite in
//! `tests/parallel.rs` checks exactly this, including vertex numbering.

use crate::insert::{self, edge_key, star_record, FacetMap, FxHasher};
use crate::locate::Located;
use crate::mesh::{Tet, TetId, VertexId, NONE};
use crate::{Delaunay, DelaunayError};
use dtfe_geometry::Vec3;
use rayon::prelude::*;
use std::collections::{HashMap, VecDeque};
use std::hash::BuildHasherDefault;

/// Points inserted serially before the rounds begin, so walks start on a
/// substrate large enough that early cavities rarely collide.
const SERIAL_PREFIX: usize = 64;
/// Frontier size: how many order-consecutive pending points each round
/// considers. Matching `morton::STREAMS` keeps the window at roughly one
/// point per stream, which maximizes the accepted fraction and minimizes
/// cache invalidations (a wider window mostly adds same-stream points that
/// chain-block behind their stream head and get rescanned every round).
/// Fixed (never thread-dependent) so the round structure — and hence the
/// mesh — is identical for every thread count; the *result* is provably
/// independent of this value, only the work schedule changes.
const FRONTIER: usize = 64;
/// Scan sub-blocks per round. Also fixed: each lane scans sequentially with
/// its own walk hint and seed, so the computed regions are reproducible no
/// matter how lanes are scheduled onto threads.
const LANES: usize = 32;

type TetStateMap = HashMap<TetId, bool, BuildHasherDefault<FxHasher>>;

/// Per-lane walk state and reusable scan scratch.
struct Lane {
    hint: TetId,
    seed: u64,
    stack: Vec<TetId>,
    state: TetStateMap,
}

/// A candidate insertion produced by the scan phase.
struct Cand {
    input_idx: u32,
    /// Existing vertex id for an exact duplicate, else `NONE`.
    vertex: VertexId,
    region: Vec<TetId>,
    boundary: Vec<(TetId, u8)>,
}

/// An accepted insertion: vertex id assigned, slots pre-allocated.
struct Job {
    vid: VertexId,
    region: Vec<TetId>,
    boundary: Vec<(TetId, u8)>,
    slots: Vec<TetId>,
}

/// Shared raw view of the tet slot array for the star phase.
///
/// # Safety
///
/// Accepted footprints are pairwise disjoint and each job's writes go only to
/// its own pre-assigned slots and to `neighbors` entries of its own boundary
/// tets; its reads touch only its own boundary tets. No slot is accessed by
/// two jobs, so no location is ever read or written concurrently. The slot
/// vector is neither grown nor reallocated while this view is alive.
struct SharedTets {
    ptr: *mut Tet,
    len: usize,
}

unsafe impl Sync for SharedTets {}
unsafe impl Send for SharedTets {}

impl SharedTets {
    #[inline]
    unsafe fn verts(&self, t: TetId) -> [VertexId; 4] {
        debug_assert!((t as usize) < self.len);
        std::ptr::addr_of!((*self.ptr.add(t as usize)).verts).read()
    }

    #[inline]
    unsafe fn write(&self, t: TetId, tet: Tet) {
        debug_assert!((t as usize) < self.len);
        self.ptr.add(t as usize).write(tet);
    }

    #[inline]
    unsafe fn set_neighbor(&self, t: TetId, j: usize, n: TetId) {
        debug_assert!((t as usize) < self.len && j < 4);
        std::ptr::addr_of_mut!((*self.ptr.add(t as usize)).neighbors[j]).write(n);
    }
}

/// Read-only conflict-region BFS with caller-owned visited state, mirroring
/// the epoch-marked serial search in `insert.rs`.
fn conflict_region(
    d: &Delaunay,
    p: Vec3,
    start: TetId,
    region: &mut Vec<TetId>,
    boundary: &mut Vec<(TetId, u8)>,
    state: &mut TetStateMap,
    stack: &mut Vec<TetId>,
) {
    state.clear();
    stack.clear();
    debug_assert!(d.in_conflict(start, p), "located tet must conflict");
    state.insert(start, true);
    stack.push(start);
    while let Some(t) = stack.pop() {
        region.push(t);
        for i in 0..4 {
            let n = d.tets[t as usize].neighbors[i];
            match state.get(&n) {
                Some(true) => continue,
                Some(false) => {}
                None => {
                    if d.in_conflict(n, p) {
                        state.insert(n, true);
                        stack.push(n);
                        continue;
                    }
                    state.insert(n, false);
                }
            }
            let j = d.tets[n as usize]
                .index_of_neighbor(t)
                .expect("adjacency not reciprocal");
            boundary.push((n, j as u8));
        }
    }
}

/// Scan phase for one lane: locate each frontier point and compute its
/// conflict region in the current (frozen) mesh. Purely read-only on the
/// mesh — overlapping regions are both computed here and arbitrated later by
/// the serial select phase.
fn scan_lane(d: &Delaunay, input: &[Vec3], indices: &[u32], lane: &mut Lane) -> Vec<Cand> {
    let mut out = Vec::with_capacity(indices.len());
    for &idx in indices {
        let p = input[idx as usize];
        match d.locate_seeded(p, lane.hint, &mut lane.seed) {
            Located::Vertex(v) => {
                out.push(Cand {
                    input_idx: idx,
                    vertex: v,
                    region: Vec::new(),
                    boundary: Vec::new(),
                });
            }
            Located::Finite(t) | Located::Ghost(t) => {
                lane.hint = t;
                let mut region = Vec::new();
                let mut boundary = Vec::new();
                conflict_region(
                    d,
                    p,
                    t,
                    &mut region,
                    &mut boundary,
                    &mut lane.state,
                    &mut lane.stack,
                );
                out.push(Cand {
                    input_idx: idx,
                    vertex: NONE,
                    region,
                    boundary,
                });
            }
        }
    }
    out
}

/// Star phase for one accepted cavity: retriangulate into pre-assigned
/// slots, wiring internal faces through a job-local facet map.
///
/// # Safety
///
/// Caller must guarantee the disjointness contract of [`SharedTets`]: this
/// job's `slots` and the tets named in `boundary` are touched by no other
/// concurrently running job.
unsafe fn star_cavity(tets: &SharedTets, points: &[Vec3], job: &Job) {
    let mut recs: Vec<Tet> = Vec::with_capacity(job.boundary.len());
    let mut fmap = FacetMap::default();
    for (i, &(o, j)) in job.boundary.iter().enumerate() {
        let o_verts = tets.verts(o);
        let [fa, fb, fc] = dtfe_geometry::plucker::TET_FACES[j as usize];
        let f = [o_verts[fa], o_verts[fb], o_verts[fc]];
        let (verts, nbrs) = star_record(f, job.vid, o);
        recs.push(Tet {
            verts,
            neighbors: nbrs,
        });
        // Wire the three faces incident to the new point against the other
        // new tets of this cavity.
        for l in 0..4usize {
            if verts[l] == job.vid {
                continue;
            }
            let mut uv = [NONE, NONE];
            let mut n = 0;
            for (m, &v) in verts.iter().enumerate() {
                if m != l && v != job.vid {
                    uv[n] = v;
                    n += 1;
                }
            }
            debug_assert_eq!(n, 2);
            let key = edge_key(uv[0], uv[1]);
            match fmap.remove(&key) {
                Some((other, ol)) => {
                    let other = other as usize;
                    recs[i].neighbors[l] = job.slots[other];
                    recs[other].neighbors[ol as usize] = job.slots[i];
                }
                None => {
                    fmap.insert(key, (i as TetId, l as u8));
                }
            }
        }
    }
    debug_assert!(fmap.is_empty(), "unpaired cavity facets");

    #[cfg(debug_assertions)]
    for rec in &recs {
        if !rec.is_ghost() {
            let q = |i: usize| points[rec.verts[i] as usize];
            debug_assert!(
                dtfe_geometry::predicates::orient3d(q(0), q(1), q(2), q(3)).is_positive(),
                "new tet not positively oriented"
            );
        }
    }
    #[cfg(not(debug_assertions))]
    let _ = points;

    for (i, rec) in recs.iter().enumerate() {
        tets.write(job.slots[i], *rec);
    }
    for (i, &(o, j)) in job.boundary.iter().enumerate() {
        tets.set_neighbor(o, j as usize, job.slots[i]);
    }
}

/// Per-build round accounting, filled by [`triangulate`] and published as
/// telemetry by the builder *on the caller's thread* — the round driver runs
/// on a Rayon worker, which a thread-locally installed recorder would miss.
#[derive(Clone, Debug, Default)]
pub(crate) struct RoundStats {
    /// Bulk-synchronous rounds executed.
    pub rounds: u64,
    /// Points inserted by the rounds (excluding bootstrap + serial prefix).
    pub inserted: u64,
    /// Merged exact-duplicate points.
    pub duplicates: u64,
    /// Frontier entries whose cross-round cached conflict region was reused.
    pub cache_hits: u64,
    /// Frontier entries that needed a locate + conflict-region scan.
    pub scans: u64,
    /// Candidates pushed to the next round by footprint conflicts.
    pub deferred: u64,
    /// Accepted insertions per round, for the points-per-round histogram.
    pub per_round: Vec<u32>,
}

/// Parallel triangulation of `input` in the given insertion order. Must run
/// inside the Rayon pool that should execute the scan/star phases.
pub(crate) fn triangulate(
    input: &[Vec3],
    order: &[u32],
    stats: &mut RoundStats,
) -> Result<Delaunay, DelaunayError> {
    let mut d = insert::bootstrap(input, order)?;
    let prefix = order.len().min(SERIAL_PREFIX);
    for &idx in &order[..prefix] {
        if d.input_vertex[idx as usize] == NONE {
            let v = d.insert_point(input[idx as usize]);
            d.input_vertex[idx as usize] = v;
        }
    }
    let rest = &order[prefix..];
    if rest.is_empty() {
        return Ok(d);
    }
    // First vertex id the rounds may create; everything below this point
    // already carries its serial-path number.
    let round_vid_base = d.points.len() as VertexId;

    let mut pending: VecDeque<u32> = rest.iter().copied().collect();
    let mut lanes: Vec<Lane> = (0..LANES)
        .map(|li| Lane {
            hint: d.hint,
            // Deterministic per-lane walk seed (never thread-dependent).
            seed: 0x9E3779B97F4A7C15 ^ (li as u64).wrapping_mul(0xA24BAED4963EE407),
            stack: Vec::new(),
            state: TetStateMap::default(),
        })
        .collect();

    let mut frontier: Vec<u32> = Vec::with_capacity(FRONTIER);
    let mut to_scan: Vec<u32> = Vec::with_capacity(FRONTIER);
    let mut jobs: Vec<Job> = Vec::new();
    // Scan results that survive across rounds (see the cache-validity note
    // in the module docs), keyed by input index.
    let mut cache: HashMap<u32, Cand, BuildHasherDefault<FxHasher>> = HashMap::default();
    loop {
        // --- Collect the frontier: next pending points, in order ---
        frontier.clear();
        while frontier.len() < FRONTIER {
            let Some(idx) = pending.pop_front() else {
                break;
            };
            if d.input_vertex[idx as usize] == NONE {
                frontier.push(idx);
            }
        }
        if frontier.is_empty() {
            break;
        }

        // --- Phase 1: scan (parallel, mesh read-only) ---
        // Only points without a still-valid cached region from an earlier
        // round need the locate + conflict-region work.
        to_scan.clear();
        to_scan.extend(frontier.iter().copied().filter(|i| !cache.contains_key(i)));
        stats.cache_hits += (frontier.len() - to_scan.len()) as u64;
        stats.scans += to_scan.len() as u64;
        let d_ref = &d;
        let scan_ref = &to_scan;
        let per_lane: Vec<Vec<Cand>> = lanes
            .par_iter_mut()
            .enumerate()
            .map(|(li, lane)| {
                let lo = scan_ref.len() * li / LANES;
                let hi = scan_ref.len() * (li + 1) / LANES;
                scan_lane(d_ref, input, &scan_ref[lo..hi], lane)
            })
            .collect();
        for cand in per_lane.into_iter().flatten() {
            cache.insert(cand.input_idx, cand);
        }

        // --- Phase 2: greedy in-order selection ---
        // `stamp_any` = this round's footprint mark. Deferred candidates
        // stamp their footprints too: they block later candidates, pinning
        // every non-commuting pair to insertion order. `stamp_acc` re-marks
        // the accepted footprints afterwards for cache invalidation.
        d.epoch += 1;
        let stamp_any = 2 * d.epoch;
        let stamp_acc = stamp_any + 1;
        jobs.clear();
        let mut deferred: Vec<Cand> = Vec::new();
        for &idx in &frontier {
            let cand = cache
                .remove(&idx)
                .expect("frontier point neither cached nor scanned");
            if cand.vertex != NONE {
                d.input_vertex[cand.input_idx as usize] = cand.vertex;
                stats.duplicates += 1;
                continue;
            }
            let blocked = cand
                .region
                .iter()
                .chain(cand.boundary.iter().map(|(o, _)| o))
                .any(|&t| d.mark[t as usize] == stamp_any);
            for &t in cand
                .region
                .iter()
                .chain(cand.boundary.iter().map(|(o, _)| o))
            {
                d.mark[t as usize] = stamp_any;
            }
            if blocked {
                deferred.push(cand);
                continue;
            }
            let vid = d.points.len() as VertexId;
            d.points.push(input[cand.input_idx as usize]);
            d.input_vertex[cand.input_idx as usize] = vid;
            jobs.push(Job {
                vid,
                region: cand.region,
                boundary: cand.boundary,
                slots: Vec::new(),
            });
        }
        for job in &jobs {
            for &t in job.region.iter().chain(job.boundary.iter().map(|(o, _)| o)) {
                d.mark[t as usize] = stamp_acc;
            }
        }
        stats.rounds += 1;
        stats.inserted += jobs.len() as u64;
        stats.deferred += deferred.len() as u64;
        stats.per_round.push(jobs.len() as u32);
        // Deferred points precede everything still pending in the insertion
        // order; push them back in order at the front. A deferred scan whose
        // footprint is disjoint from every *accepted* footprint is still
        // exact next round (disjoint insertions leave it untouched), so keep
        // it cached; the rest are dropped and rescanned.
        for cand in deferred.iter().rev() {
            pending.push_front(cand.input_idx);
        }
        for cand in deferred {
            let invalidated = cand
                .region
                .iter()
                .chain(cand.boundary.iter().map(|(o, _)| o))
                .any(|&t| d.mark[t as usize] == stamp_acc);
            if !invalidated {
                cache.insert(cand.input_idx, cand);
            }
        }

        // Pre-assign slots (free list first, then fresh) so the star phase
        // never grows the slot array.
        for job in &mut jobs {
            job.slots.reserve(job.boundary.len());
            for _ in 0..job.boundary.len() {
                job.slots.push(match d.free.pop() {
                    Some(s) => s,
                    None => {
                        d.tets.push(Tet::DEAD);
                        d.mark.push(0);
                        (d.tets.len() - 1) as TetId
                    }
                });
            }
        }

        // --- Phase 3: star the cavities (parallel, disjoint writes) ---
        let shared = SharedTets {
            ptr: d.tets.as_mut_ptr(),
            len: d.tets.len(),
        };
        let points = &d.points;
        jobs.par_iter().for_each(|job| {
            // SAFETY: selection guarantees pairwise-disjoint footprints and
            // slots; see `SharedTets`.
            unsafe { star_cavity(&shared, points, job) }
        });

        // --- Phase 4: commit (serial bookkeeping) ---
        for job in &jobs {
            for &t in &job.region {
                d.free_tet(t);
            }
            for &s in &job.slots {
                if d.tets[s as usize].is_ghost() {
                    d.n_ghost += 1;
                } else {
                    d.n_finite += 1;
                }
            }
            d.hint = *job.slots.last().expect("cavity produced no tets");
        }
    }

    renumber_to_serial_order(&mut d, order, round_vid_base);
    Ok(d)
}

/// Relabel the vertices created during the rounds into first-encounter order
/// over the insertion sequence — the numbering the serial path assigns — so
/// the builder's output is bit-for-bit reproducible across thread counts.
/// Vertices below `base` (bootstrap + serial prefix) already match.
fn renumber_to_serial_order(d: &mut Delaunay, order: &[u32], base: VertexId) {
    let n = d.points.len();
    if base as usize >= n {
        return;
    }
    let mut perm: Vec<VertexId> = vec![NONE; n];
    for v in 0..base {
        perm[v as usize] = v;
    }
    let mut next = base;
    for &idx in order {
        let v = d.input_vertex[idx as usize];
        if v != NONE && perm[v as usize] == NONE {
            perm[v as usize] = next;
            next += 1;
        }
    }
    debug_assert_eq!(next as usize, n, "every vertex has an input point");

    let mut points = vec![Vec3::new(0.0, 0.0, 0.0); n];
    for (old, &new) in perm.iter().enumerate() {
        points[new as usize] = d.points[old];
    }
    d.points = points;
    for v in &mut d.input_vertex {
        if *v != NONE {
            *v = perm[*v as usize];
        }
    }
    for tet in &mut d.tets {
        if !tet.is_live() {
            continue;
        }
        for v in &mut tet.verts {
            if *v != crate::mesh::INFINITE {
                *v = perm[*v as usize];
            }
        }
    }
}
