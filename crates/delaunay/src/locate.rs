//! Point location by walking (paper §III-C-1).
//!
//! The *remembering stochastic visibility walk*: starting from a hint
//! tetrahedron, repeatedly step through the facet whose plane separates the
//! current tetrahedron from the query point (the Sambridge et al. test,
//! paper Eq. 6 — here evaluated with the robust `orient3d`). Facets are
//! tried in a random rotation each step, which is what guarantees
//! termination on a Delaunay triangulation even for degenerate queries.

use crate::mesh::{TetId, VertexId, NONE};
use crate::Delaunay;
use dtfe_geometry::predicates::orient3d;
use dtfe_geometry::Vec3;

/// Where a query point landed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Located {
    /// Inside (or on the boundary of) this finite tetrahedron.
    Finite(TetId),
    /// Outside the convex hull; the returned ghost's facet is one the point
    /// is strictly beyond.
    Ghost(TetId),
    /// Exactly coincident with an existing vertex.
    Vertex(VertexId),
}

#[inline]
fn next_rand(state: &mut u64) -> u64 {
    // xorshift64*: deterministic, cheap, good enough to break walk cycles.
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545F4914F6CDD1D)
}

impl Delaunay {
    /// Locate `p`, starting the walk from the internal hint (the most
    /// recently created tetrahedron).
    pub fn locate(&mut self, p: Vec3) -> Located {
        let hint = self.hint;
        self.locate_from(p, hint)
    }

    /// Locate `p` starting from tetrahedron `start` (which may be a ghost or
    /// a freed slot; both are normalized to a live finite start).
    pub fn locate_from(&mut self, p: Vec3, start: TetId) -> Located {
        let mut seed = self.rng_state;
        let r = self.locate_seeded(p, start, &mut seed);
        self.rng_state = seed;
        r
    }

    /// Shared-state-free locate for parallel callers: the stochastic walk's
    /// randomness comes from the caller-owned `seed`. This is what the
    /// marching/walking kernels use from worker threads.
    pub fn locate_seeded(&self, p: Vec3, start: TetId, seed: &mut u64) -> Located {
        let mut cur = self.live_finite_start(start);
        // Bound the walk defensively: a correct visibility walk on a Delaunay
        // triangulation terminates, but an fp-filtered walk on a corrupted
        // structure would loop forever; better to panic loudly.
        let mut steps = 0usize;
        let max_steps = 8 * (self.tets.len() + 16);
        'walk: loop {
            steps += 1;
            assert!(steps <= max_steps, "visibility walk failed to terminate");
            let tet = self.tets[cur as usize];
            // Exact-vertex check: the walk can stop at any tetrahedron whose
            // closure contains p; if p coincides with a vertex it is one of
            // the current tet's vertices once the walk converges.
            let rot = (next_rand(seed) % 4) as usize;
            for k in 0..4 {
                let i = (k + rot) & 3;
                let [fa, fb, fc] = tet.face(i);
                let (a, b, c) = (
                    self.points[fa as usize],
                    self.points[fb as usize],
                    self.points[fc as usize],
                );
                // Face i is outward-oriented, so its normal points toward any
                // point strictly beyond it — and `orient3d(F, p)` is Negative
                // exactly when F's normal points toward p.
                if orient3d(a, b, c, p).is_negative() {
                    let n = tet.neighbors[i];
                    debug_assert_ne!(n, NONE);
                    if self.tets[n as usize].is_ghost() {
                        return Located::Ghost(n);
                    }
                    cur = n;
                    continue 'walk;
                }
            }
            // No facet separates: p is inside or on the boundary of `cur`.
            for &v in &tet.verts {
                if self.points[v as usize] == p {
                    return Located::Vertex(v);
                }
            }
            return Located::Finite(cur);
        }
    }

    /// Normalize a start id to a live finite tetrahedron.
    fn live_finite_start(&self, start: TetId) -> TetId {
        let mut s = start;
        if s == NONE || s as usize >= self.tets.len() || !self.tets[s as usize].is_live() {
            // Fall back to any live finite tet.
            s = self
                .tets
                .iter()
                .position(|t| t.is_live() && !t.is_ghost())
                .expect("triangulation has no finite tetrahedra") as TetId;
        }
        if self.tets[s as usize].is_ghost() {
            // Step inside: the facet-neighbor of a ghost is finite.
            let inner = self.tets[s as usize].neighbors[3];
            debug_assert!(!self.tets[inner as usize].is_ghost());
            return inner;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtfe_geometry::tetra::contains;

    fn build_cloud(n: usize, seed: u64) -> (Delaunay, Vec<Vec3>) {
        let mut state = seed;
        let mut rnd = || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<Vec3> = (0..n).map(|_| Vec3::new(rnd(), rnd(), rnd())).collect();
        let d = crate::DelaunayBuilder::new().build(&pts).unwrap();
        (d, pts)
    }

    #[test]
    fn locate_finds_containing_tet() {
        let (mut d, _) = build_cloud(200, 11);
        let queries = [
            Vec3::new(0.5, 0.5, 0.5),
            Vec3::new(0.21, 0.77, 0.4),
            Vec3::new(0.9, 0.1, 0.6),
        ];
        for q in queries {
            match d.locate(q) {
                Located::Finite(t) => {
                    let pts = d.tet_points(t);
                    assert!(contains(q, &pts, 1e-9), "tet {t} does not contain {q:?}");
                }
                other => panic!("expected Finite, got {other:?}"),
            }
        }
    }

    #[test]
    fn locate_outside_returns_ghost() {
        let (mut d, _) = build_cloud(100, 5);
        for q in [Vec3::new(5.0, 5.0, 5.0), Vec3::new(-3.0, 0.5, 0.5)] {
            match d.locate(q) {
                Located::Ghost(g) => {
                    // The query must be strictly beyond the ghost's facet:
                    // the outward normal points toward it (Negative).
                    let [a, b, c] = d.hull_facet(g);
                    let o = orient3d(d.vertex(a), d.vertex(b), d.vertex(c), q);
                    assert!(o.is_negative());
                }
                other => panic!("expected Ghost, got {other:?}"),
            }
        }
    }

    #[test]
    fn locate_existing_vertex() {
        let (mut d, pts) = build_cloud(50, 99);
        for (i, &p) in pts.iter().enumerate().step_by(7) {
            match d.locate(p) {
                Located::Vertex(v) => assert_eq!(v, d.vertex_of_input(i)),
                other => panic!("expected Vertex for input {i}, got {other:?}"),
            }
        }
    }

    #[test]
    fn locate_from_arbitrary_starts() {
        let (mut d, _) = build_cloud(150, 3);
        let q = Vec3::new(0.4, 0.6, 0.3);
        let expected = match d.locate(q) {
            Located::Finite(t) => d.tet_points(t),
            other => panic!("{other:?}"),
        };
        // Every live start must reach a tetrahedron containing q (possibly a
        // different one if q sits on a shared face, so compare containment).
        let starts: Vec<TetId> = d.finite_tets().step_by(17).collect();
        for s in starts {
            match d.locate_from(q, s) {
                Located::Finite(t) => {
                    let pts = d.tet_points(t);
                    assert!(contains(q, &pts, 1e-9));
                }
                other => panic!("{other:?}"),
            }
        }
        let _ = expected;
    }
}
