//! Structural queries on the triangulation: vertex stars, nearest
//! vertices, and the sampled-hint walk start the paper describes
//! ("the performance of walking can be greatly improved by choosing an
//! initial tetrahedron that is close … usually done by randomly sampling
//! tetrahedra vertices and selecting the tetrahedron with the vertex that
//! is nearest", §III-C-1).

use crate::locate::Located;
use crate::mesh::{TetId, VertexId, INFINITE, NONE};
use crate::Delaunay;
use dtfe_geometry::Vec3;

impl Delaunay {
    /// All finite tetrahedra incident to vertex `v` (its star), found by a
    /// rotation around `v` from `seed_tet` — any live finite tetrahedron
    /// containing `v`. Order is BFS order, deterministic.
    pub fn vertex_star(&self, v: VertexId, seed_tet: TetId) -> Vec<TetId> {
        let seed = self.tet(seed_tet);
        assert!(seed.has_vertex(v), "seed tet does not contain the vertex");
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![seed_tet];
        seen.insert(seed_tet);
        while let Some(t) = stack.pop() {
            let tet = self.tet(t);
            if !tet.is_ghost() {
                out.push(t);
            }
            for k in 0..4 {
                // Rotate through the faces that still contain v.
                if tet.verts[k] == v {
                    continue;
                }
                let n = tet.neighbors[k];
                if n != NONE && !seen.contains(&n) && self.tet(n).has_vertex(v) {
                    seen.insert(n);
                    stack.push(n);
                }
            }
        }
        out
    }

    /// One live tetrahedron incident to each vertex (a "seed" map for star
    /// queries), built in one pass over the tetrahedra.
    pub fn vertex_seeds(&self) -> Vec<TetId> {
        let mut seeds = vec![NONE; self.points.len()];
        for (i, tet) in self.tets.iter().enumerate() {
            if !tet.is_live() || tet.is_ghost() {
                continue;
            }
            for &v in &tet.verts {
                if seeds[v as usize] == NONE {
                    seeds[v as usize] = i as TetId;
                }
            }
        }
        seeds
    }

    /// Locate with a sampled hint: draw `samples` random vertices, start
    /// the walk at a tetrahedron incident to the nearest. Expected walk
    /// length drops from O(n^{1/3}) to O((n/samples)^{1/3}) — the classic
    /// Mücke-style jump-and-walk.
    pub fn locate_sampled(&self, p: Vec3, samples: usize, seed: &mut u64) -> Located {
        let start = self.sampled_hint(p, samples, seed);
        self.locate_seeded(p, start, seed)
    }

    /// The hint tetrahedron a sampled locate would start from.
    pub fn sampled_hint(&self, p: Vec3, samples: usize, seed: &mut u64) -> TetId {
        assert!(samples > 0);
        let n = self.points.len();
        let mut best_v = 0u32;
        let mut best_d = f64::INFINITY;
        for _ in 0..samples {
            *seed ^= *seed >> 12;
            *seed ^= *seed << 25;
            *seed ^= *seed >> 27;
            let v = (seed.wrapping_mul(0x2545F4914F6CDD1D) % n as u64) as u32;
            let d = self.points[v as usize].distance_sq(p);
            if d < best_d {
                best_d = d;
                best_v = v;
            }
        }
        // Find a live finite tet containing best_v by scanning from the
        // walk hint; fall back to a linear probe (rare).
        let hint = self.hint;
        if hint != NONE && (hint as usize) < self.tets.len() {
            let t = &self.tets[hint as usize];
            if t.is_live() && t.has_vertex(best_v) && !t.is_ghost() {
                return hint;
            }
        }
        self.tets
            .iter()
            .position(|t| t.is_live() && !t.is_ghost() && t.has_vertex(best_v))
            .map(|i| i as TetId)
            .unwrap_or(hint)
    }

    /// The vertex nearest to `p`, by locating `p` and greedily descending
    /// over vertex neighbourhoods. Exact for points inside the hull
    /// (nearest-vertex regions are Voronoi cells, whose dual edges are
    /// Delaunay edges, so greedy local search cannot get stuck).
    pub fn nearest_vertex(&self, p: Vec3, seed: &mut u64) -> VertexId {
        let start = match self.locate_seeded(p, self.hint, seed) {
            Located::Vertex(v) => return v,
            Located::Finite(t) => t,
            Located::Ghost(g) => self.tet(g).neighbors[3],
        };
        // Best vertex of the located tet.
        let tet = self.tet(start);
        let mut best = tet.verts[0];
        let mut best_d = self.points[best as usize].distance_sq(p);
        for &v in &tet.verts[1..] {
            if v == INFINITE {
                continue;
            }
            let d = self.points[v as usize].distance_sq(p);
            if d < best_d {
                best_d = d;
                best = v;
            }
        }
        // Greedy descent over Delaunay-neighbour vertices.
        let seeds = self.vertex_seeds();
        loop {
            let mut improved = false;
            for t in self.vertex_star(best, seeds[best as usize]) {
                for &v in &self.tet(t).verts {
                    if v == INFINITE || v == best {
                        continue;
                    }
                    let d = self.points[v as usize].distance_sq(p);
                    if d < best_d {
                        best_d = d;
                        best = v;
                        improved = true;
                    }
                }
            }
            if !improved {
                return best;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud(n: usize, seed: u64) -> Vec<Vec3> {
        let mut s = seed;
        let mut r = move || {
            s ^= s >> 12;
            s ^= s << 25;
            s ^= s >> 27;
            (s.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|_| Vec3::new(r(), r(), r())).collect()
    }

    #[test]
    fn star_matches_degree_counts() {
        let pts = cloud(150, 3);
        let d = crate::DelaunayBuilder::new().build(&pts).unwrap();
        let seeds = d.vertex_seeds();
        let deg = d.vertex_degrees();
        for v in (0..d.num_vertices() as u32).step_by(13) {
            let star = d.vertex_star(v, seeds[v as usize]);
            assert_eq!(star.len() as u32, deg[v as usize], "vertex {v}");
            for t in star {
                assert!(d.tet(t).has_vertex(v));
            }
        }
    }

    #[test]
    fn star_volumes_match_bulk_computation() {
        let pts = cloud(80, 9);
        let d = crate::DelaunayBuilder::new().build(&pts).unwrap();
        let seeds = d.vertex_seeds();
        let bulk = d.vertex_star_volumes();
        for v in (0..d.num_vertices() as u32).step_by(7) {
            let sum: f64 = d
                .vertex_star(v, seeds[v as usize])
                .iter()
                .map(|&t| {
                    let p = d.tet_points(t);
                    dtfe_geometry::tetra::volume(p[0], p[1], p[2], p[3])
                })
                .sum();
            assert!((sum - bulk[v as usize]).abs() < 1e-12, "vertex {v}");
        }
    }

    #[test]
    fn nearest_vertex_matches_brute_force() {
        let pts = cloud(200, 11);
        let d = crate::DelaunayBuilder::new().build(&pts).unwrap();
        let mut seed = 5u64;
        let queries = cloud(50, 77);
        for q in queries {
            let got = d.nearest_vertex(q, &mut seed);
            let brute = (0..d.num_vertices())
                .min_by(|&a, &b| {
                    d.vertex(a as u32)
                        .distance_sq(q)
                        .partial_cmp(&d.vertex(b as u32).distance_sq(q))
                        .unwrap()
                })
                .unwrap() as u32;
            let dg = d.vertex(got).distance_sq(q);
            let db = d.vertex(brute).distance_sq(q);
            assert!(
                dg == db,
                "nearest {got} (d²={dg}) vs brute {brute} (d²={db}) at {q:?}"
            );
        }
    }

    #[test]
    fn sampled_locate_agrees_with_plain() {
        let pts = cloud(300, 21);
        let d = crate::DelaunayBuilder::new().build(&pts).unwrap();
        let mut seed = 1u64;
        for q in cloud(30, 99) {
            let a = d.locate_sampled(q, 8, &mut seed);
            match a {
                Located::Finite(t) => {
                    let tp = d.tet_points(t);
                    assert!(dtfe_geometry::tetra::contains(q, &tp, 1e-9));
                }
                Located::Ghost(_) | Located::Vertex(_) => {}
            }
        }
    }
}
