//! Incremental 3D Delaunay triangulation.
//!
//! This crate replaces the role CGAL / Qhull play in the paper: it builds the
//! Delaunay tetrahedralization the DTFE method interpolates on (paper §III-A)
//! and exposes exactly the two structural features the surface-density kernel
//! needs:
//!
//! * a **facet adjacency** structure (`neighbors[i]` opposite `verts[i]`),
//!   which is what both the *walking* point location (paper Eq. 6) and the
//!   *marching* ray traversal (paper §IV-A) consume, and
//! * the **convex hull**, represented by ghost tetrahedra incident to a
//!   symbolic infinite vertex — the hull-projection entry search of the
//!   marching kernel (paper Eq. 14) is a scan over these.
//!
//! # Algorithm
//!
//! Construction is incremental Bowyer–Watson with the *infinite vertex*
//! convention (as in CGAL): every hull facet has an adjacent *ghost*
//! tetrahedron whose fourth vertex is [`INFINITE`]. Inserting a point
//!
//! 1. **locates** the tetrahedron containing it by a remembering stochastic
//!    visibility walk ([`Delaunay::locate`]),
//! 2. grows the **conflict region** — every tetrahedron whose open
//!    circumball contains the point (for ghosts: every hull facet the point
//!    is strictly beyond, plus coplanar facets whose circumdisk contains it),
//! 3. deletes the region and **retriangulates the cavity** by starring the
//!    boundary facets from the new point, rewiring adjacency in place.
//!
//! All orientation decisions go through the exact predicates of
//! [`dtfe_geometry::predicates`], so the structure is sound for the
//! degenerate inputs cosmological data actually contains (lattice initial
//! conditions, cospherical points). Points are inserted in Morton order
//! (a BRIO-style spatial sort), which keeps consecutive locates short.
//!
//! # Parallel construction
//!
//! [`DelaunayBuilder`] is the single construction entry point. With more
//! than one thread it inserts Morton-ordered batches of *spatially
//! independent* points concurrently (see `parallel.rs`); the parallel and
//! serial paths produce the identical mesh.
//!
//! # Example
//!
//! ```
//! use dtfe_delaunay::DelaunayBuilder;
//! use dtfe_geometry::Vec3;
//!
//! let pts = vec![
//!     Vec3::new(0.0, 0.0, 0.0),
//!     Vec3::new(1.0, 0.0, 0.0),
//!     Vec3::new(0.0, 1.0, 0.0),
//!     Vec3::new(0.0, 0.0, 1.0),
//!     Vec3::new(0.3, 0.3, 0.3),
//! ];
//! let del = DelaunayBuilder::new().build(&pts).unwrap();
//! assert_eq!(del.num_vertices(), 5);
//! assert!(del.validate().is_ok());
//! ```

mod builder;
mod insert;
mod locate;
mod mesh;
mod morton;
mod parallel;
mod queries;
mod reorder;
pub mod validate;

pub use builder::{BuildError, DelaunayBuilder, Triangulation};
pub use locate::Located;
pub use mesh::{Tet, TetId, VertexId, INFINITE, NONE};
pub use validate::ValidationError;

use dtfe_geometry::Vec3;

/// Serial Morton/input-order construction shared by the builder's
/// single-thread path, the parallel prefix, and the deprecated shims.
/// Assumes finite coordinates (the builder checks; the shims assert).
pub(crate) fn build_serial(input: &[Vec3], order: &[u32]) -> Result<Delaunay, DelaunayError> {
    let mut d = insert::bootstrap(input, order)?;
    for &idx in order {
        if d.input_vertex[idx as usize] == NONE {
            let v = d.insert_point(input[idx as usize]);
            d.input_vertex[idx as usize] = v;
        }
    }
    Ok(d)
}

/// Free-function shim over [`DelaunayBuilder`] with default settings.
#[deprecated(since = "0.2.0", note = "use `DelaunayBuilder::new().build(points)`")]
pub fn triangulate(points: &[Vec3]) -> Result<Triangulation, BuildError> {
    DelaunayBuilder::new().build(points)
}

/// Errors from triangulation construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DelaunayError {
    /// Fewer than four affinely independent points: no 3D triangulation
    /// exists (all points coincident, collinear, or coplanar).
    Degenerate,
}

impl std::fmt::Display for DelaunayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DelaunayError::Degenerate => {
                write!(
                    f,
                    "input points are affinely degenerate (need 4 non-coplanar points)"
                )
            }
        }
    }
}

impl std::error::Error for DelaunayError {}

/// A 3D Delaunay triangulation with ghost tetrahedra on the hull.
///
/// Vertex ids index [`Delaunay::vertex`]; duplicate input points are merged
/// and [`Delaunay::vertex_of_input`] maps input indices to vertex ids.
pub struct Delaunay {
    pub(crate) points: Vec<Vec3>,
    pub(crate) tets: Vec<Tet>,
    /// Free-list of deleted tetrahedron slots.
    pub(crate) free: Vec<TetId>,
    /// Epoch marks for conflict-region search (avoids clearing between
    /// inserts).
    pub(crate) mark: Vec<u32>,
    pub(crate) epoch: u32,
    /// Walk start hint: the most recently created tetrahedron.
    pub(crate) hint: TetId,
    /// Map from input point index to vertex id (duplicates collapse).
    pub(crate) input_vertex: Vec<VertexId>,
    /// Deterministic xorshift state for the stochastic walk.
    pub(crate) rng_state: u64,
    /// Number of live finite tetrahedra.
    pub(crate) n_finite: usize,
    /// Number of live ghost tetrahedra.
    pub(crate) n_ghost: usize,
    /// Scratch buffers reused across insertions.
    pub(crate) scratch: insert::Scratch,
}

impl std::fmt::Debug for Delaunay {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Delaunay")
            .field("vertices", &self.points.len())
            .field("finite_tets", &self.n_finite)
            .field("ghost_tets", &self.n_ghost)
            .finish()
    }
}

impl Delaunay {
    /// Triangulate `input`, inserting in Morton order. Duplicate points are
    /// merged. Fails with [`DelaunayError::Degenerate`] when the input has no
    /// four affinely independent points.
    #[deprecated(since = "0.2.0", note = "use `DelaunayBuilder::new().build(points)`")]
    pub fn build(input: &[Vec3]) -> Result<Delaunay, DelaunayError> {
        Self::build_with_order(input, true)
    }

    /// Triangulate without the Morton spatial sort (insertion in input
    /// order). Mainly for the ablation bench; the builder's default spatial
    /// sort is faster on large inputs.
    #[deprecated(
        since = "0.2.0",
        note = "use `DelaunayBuilder::new().spatial_sort(false).build(points)`"
    )]
    pub fn build_insertion_order(input: &[Vec3]) -> Result<Delaunay, DelaunayError> {
        Self::build_with_order(input, false)
    }

    fn build_with_order(input: &[Vec3], spatial_sort: bool) -> Result<Delaunay, DelaunayError> {
        // The historical contract of the deprecated entry points: panic on
        // non-finite coordinates. The builder reports BuildError instead.
        assert!(
            input.iter().all(|p| p.is_finite()),
            "non-finite input coordinates"
        );
        // Same canonical order as the builder, so the deprecated path yields
        // the identical mesh.
        let order: Vec<u32> = if spatial_sort {
            morton::stratified_order(input)
        } else {
            (0..input.len() as u32).collect()
        };
        build_serial(input, &order)
    }

    /// Number of (unique) vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.points.len()
    }

    /// Number of live finite tetrahedra.
    #[inline]
    pub fn num_tets(&self) -> usize {
        self.n_finite
    }

    /// Number of live ghost (hull) tetrahedra — one per hull facet.
    #[inline]
    pub fn num_ghosts(&self) -> usize {
        self.n_ghost
    }

    /// Coordinates of vertex `v`.
    #[inline]
    pub fn vertex(&self, v: VertexId) -> Vec3 {
        self.points[v as usize]
    }

    /// All vertex coordinates, indexed by `VertexId`.
    #[inline]
    pub fn vertices(&self) -> &[Vec3] {
        &self.points
    }

    /// Vertex id the `i`-th input point mapped to.
    #[inline]
    pub fn vertex_of_input(&self, i: usize) -> VertexId {
        self.input_vertex[i]
    }

    /// Raw tetrahedron record (may be a ghost; check [`Tet::is_ghost`]).
    #[inline]
    pub fn tet(&self, t: TetId) -> &Tet {
        let tet = &self.tets[t as usize];
        debug_assert!(tet.is_live(), "access to freed tet {t}");
        tet
    }

    /// Total number of tetrahedron slots (live and freed); `TetId`s are
    /// indices below this bound.
    #[inline]
    pub fn num_slots(&self) -> usize {
        self.tets.len()
    }

    /// Raw slot access that tolerates freed slots (check [`Tet::is_live`]).
    /// Useful for building slot-indexed caches alongside the triangulation.
    #[inline]
    pub fn tet_slot(&self, t: TetId) -> &Tet {
        &self.tets[t as usize]
    }

    /// Iterator over ids of live finite tetrahedra.
    pub fn finite_tets(&self) -> impl Iterator<Item = TetId> + '_ {
        self.tets
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_live() && !t.is_ghost())
            .map(|(i, _)| i as TetId)
    }

    /// Iterator over ids of live ghost tetrahedra (hull facets).
    pub fn ghost_tets(&self) -> impl Iterator<Item = TetId> + '_ {
        self.tets
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_live() && t.is_ghost())
            .map(|(i, _)| i as TetId)
    }

    /// The four vertex positions of a finite tetrahedron.
    #[inline]
    pub fn tet_points(&self, t: TetId) -> [Vec3; 4] {
        let tet = self.tet(t);
        debug_assert!(!tet.is_ghost());
        [
            self.points[tet.verts[0] as usize],
            self.points[tet.verts[1] as usize],
            self.points[tet.verts[2] as usize],
            self.points[tet.verts[3] as usize],
        ]
    }

    /// The hull facet of a ghost tetrahedron, returned *outward*-oriented:
    /// `(b-a) × (c-a)` points out of the hull. (Internally ghosts store the
    /// facet inward-oriented; see [`Tet`].)
    #[inline]
    pub fn hull_facet(&self, ghost: TetId) -> [VertexId; 3] {
        let tet = self.tet(ghost);
        debug_assert!(tet.is_ghost());
        [tet.verts[0], tet.verts[2], tet.verts[1]]
    }

    /// Hull facets as vertex triples, outward-oriented.
    pub fn hull_facets(&self) -> Vec<[VertexId; 3]> {
        self.ghost_tets().map(|g| self.hull_facet(g)).collect()
    }

    /// Sum of incident finite-tetrahedron volumes per vertex — the `W_i`
    /// denominator of the DTFE density estimate (paper Eq. 2). Hull vertices
    /// only count interior tetrahedra, matching the DTFE convention.
    pub fn vertex_star_volumes(&self) -> Vec<f64> {
        let mut w = vec![0.0; self.points.len()];
        for t in self.finite_tets() {
            let p = self.tet_points(t);
            let vol = dtfe_geometry::tetra::volume(p[0], p[1], p[2], p[3]);
            for &v in &self.tets[t as usize].verts {
                w[v as usize] += vol;
            }
        }
        w
    }

    /// Count of finite tetrahedra incident to each vertex.
    pub fn vertex_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.points.len()];
        for t in self.finite_tets() {
            for &v in &self.tets[t as usize].verts {
                deg[v as usize] += 1;
            }
        }
        deg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simplex_points() -> Vec<Vec3> {
        vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
        ]
    }

    fn build(pts: &[Vec3]) -> Result<Delaunay, BuildError> {
        DelaunayBuilder::new().build(pts)
    }

    #[test]
    fn single_tet() {
        let d = build(&simplex_points()).unwrap();
        assert_eq!(d.num_vertices(), 4);
        assert_eq!(d.num_tets(), 1);
        assert_eq!(d.num_ghosts(), 4);
        d.validate().unwrap();
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert_eq!(build(&[]).unwrap_err(), BuildError::Degenerate);
        let coincident = vec![Vec3::splat(1.0); 10];
        assert_eq!(build(&coincident).unwrap_err(), BuildError::Degenerate);
        let collinear: Vec<Vec3> = (0..10).map(|i| Vec3::new(i as f64, 0.0, 0.0)).collect();
        assert_eq!(build(&collinear).unwrap_err(), BuildError::Degenerate);
        let coplanar: Vec<Vec3> = (0..4)
            .flat_map(|i| (0..4).map(move |j| Vec3::new(i as f64, j as f64, 0.0)))
            .collect();
        assert_eq!(build(&coplanar).unwrap_err(), BuildError::Degenerate);
        let nan = vec![Vec3::ZERO, Vec3::new(f64::NAN, 0.0, 0.0)];
        assert_eq!(build(&nan).unwrap_err(), BuildError::NonFinite { index: 1 });
    }

    #[test]
    fn interior_point_splits_tet() {
        let mut pts = simplex_points();
        pts.push(Vec3::new(0.2, 0.2, 0.2));
        let d = build(&pts).unwrap();
        assert_eq!(d.num_vertices(), 5);
        assert_eq!(d.num_tets(), 4); // 1-to-4 split
        d.validate().unwrap();
        d.validate_delaunay_global().unwrap();
    }

    #[test]
    fn duplicates_merge() {
        let mut pts = simplex_points();
        pts.push(Vec3::new(0.0, 0.0, 0.0));
        pts.push(Vec3::new(0.2, 0.2, 0.2));
        pts.push(Vec3::new(0.2, 0.2, 0.2));
        let d = build(&pts).unwrap();
        assert_eq!(d.num_vertices(), 5);
        assert_eq!(d.vertex_of_input(0), d.vertex_of_input(4));
        assert_eq!(d.vertex_of_input(5), d.vertex_of_input(6));
        d.validate().unwrap();
    }

    #[test]
    fn cube_corners() {
        // All eight corners are cospherical: a maximally degenerate insphere
        // configuration. Any valid Delaunay triangulation has 5 or 6 tets.
        let pts: Vec<Vec3> = (0..8)
            .map(|i| Vec3::new((i & 1) as f64, ((i >> 1) & 1) as f64, ((i >> 2) & 1) as f64))
            .collect();
        let d = build(&pts).unwrap();
        assert_eq!(d.num_vertices(), 8);
        assert!(
            d.num_tets() == 5 || d.num_tets() == 6,
            "tets = {}",
            d.num_tets()
        );
        d.validate().unwrap();
        d.validate_delaunay_global().unwrap();
    }

    #[test]
    fn lattice_4x4x4() {
        let pts: Vec<Vec3> = (0..4)
            .flat_map(|i| {
                (0..4)
                    .flat_map(move |j| (0..4).map(move |k| Vec3::new(i as f64, j as f64, k as f64)))
            })
            .collect();
        let d = build(&pts).unwrap();
        assert_eq!(d.num_vertices(), 64);
        d.validate().unwrap();
        d.validate_delaunay_global().unwrap();
        // The lattice volume is tiled exactly: total tet volume = 27.
        let total: f64 = d
            .finite_tets()
            .map(|t| {
                let p = d.tet_points(t);
                dtfe_geometry::tetra::volume(p[0], p[1], p[2], p[3])
            })
            .sum();
        assert!((total - 27.0).abs() < 1e-9, "total = {total}");
    }

    #[test]
    fn random_points_valid() {
        let mut state = 42u64;
        let mut rnd = || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<Vec3> = (0..300).map(|_| Vec3::new(rnd(), rnd(), rnd())).collect();
        let d = build(&pts).unwrap();
        assert_eq!(d.num_vertices(), 300);
        d.validate().unwrap();
        d.validate_delaunay_global().unwrap();
        // Convex hull of points in a cube: total volume below 1, above 0.5.
        let total: f64 = d
            .finite_tets()
            .map(|t| {
                let p = d.tet_points(t);
                dtfe_geometry::tetra::volume(p[0], p[1], p[2], p[3])
            })
            .sum();
        assert!(total > 0.5 && total < 1.0, "hull volume = {total}");
    }

    #[test]
    fn insertion_order_equivalent() {
        let mut state = 7u64;
        let mut rnd = || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<Vec3> = (0..100).map(|_| Vec3::new(rnd(), rnd(), rnd())).collect();
        let a = build(&pts).unwrap();
        let b = DelaunayBuilder::new()
            .spatial_sort(false)
            .build(&pts)
            .unwrap();
        // Same number of tets (Delaunay is unique for points in general
        // position) and both valid.
        assert_eq!(a.num_tets(), b.num_tets());
        a.validate_delaunay_global().unwrap();
        b.validate_delaunay_global().unwrap();
    }

    #[test]
    fn star_volumes_cover_hull() {
        let mut pts = simplex_points();
        pts.push(Vec3::new(0.25, 0.25, 0.25));
        let d = build(&pts).unwrap();
        let w = d.vertex_star_volumes();
        // Each tet contributes its volume to 4 vertices; hull volume is 1/6.
        let total: f64 = w.iter().sum();
        assert!((total - 4.0 / 6.0).abs() < 1e-12);
        let interior = d.vertex_of_input(4);
        assert!((w[interior as usize] - 1.0 / 6.0).abs() < 1e-12);
        let deg = d.vertex_degrees();
        assert_eq!(deg[interior as usize], 4);
    }
}
