//! Morton-order (Z-curve) spatial sort for insertion locality.
//!
//! Inserting points in a space-filling-curve order is the standard BRIO
//! trick: consecutive points are spatially close, so the remembering walk
//! from the previous insertion's tetrahedron is O(1) on average instead of
//! O(n^(1/3)).
//!
//! The *canonical* insertion order used by [`crate::DelaunayBuilder`]
//! ([`stratified_order`]) additionally interleaves [`STREAMS`] contiguous
//! chunks of the Morton sequence round-robin. Order-consecutive points are
//! then spread across distant regions of the curve — which is what lets the
//! parallel rounds in `parallel.rs` accept many spatially independent
//! insertions per round — while each *stream* stays Morton-contiguous, so
//! walks seeded from a per-stream hint remain short.

use dtfe_geometry::{Aabb3, Vec3};

/// Number of interleaved Morton streams in [`stratified_order`].
///
/// Part of the canonical order definition: changing it changes which
/// triangulation degenerate (e.g. cospherical) inputs resolve to, so it is a
/// fixed constant, never derived from the thread count or input size.
pub(crate) const STREAMS: usize = 64;

/// Interleave the low 21 bits of three coordinates into a 63-bit Morton key.
#[inline]
fn morton3(x: u32, y: u32, z: u32) -> u64 {
    #[inline]
    fn spread(v: u32) -> u64 {
        let mut v = (v as u64) & 0x1F_FFFF; // 21 bits
        v = (v | (v << 32)) & 0x1F00000000FFFF;
        v = (v | (v << 16)) & 0x1F0000FF0000FF;
        v = (v | (v << 8)) & 0x100F00F00F00F00F;
        v = (v | (v << 4)) & 0x10C30C30C30C30C3;
        v = (v | (v << 2)) & 0x1249249249249249;
        v
    }
    spread(x) | (spread(y) << 1) | (spread(z) << 2)
}

/// Indices of `points` sorted by Morton key within their bounding box.
pub fn morton_order(points: &[Vec3]) -> Vec<u32> {
    let mut order: Vec<u32> = (0..points.len() as u32).collect();
    let Some(bbox) = Aabb3::from_points(points.iter().copied()) else {
        return order;
    };
    let ext = bbox.extent();
    let scale = |e: f64| {
        if e > 0.0 {
            ((1u32 << 21) - 1) as f64 / e
        } else {
            0.0
        }
    };
    let (sx, sy, sz) = (scale(ext.x), scale(ext.y), scale(ext.z));
    let key = |p: Vec3| {
        morton3(
            ((p.x - bbox.lo.x) * sx) as u32,
            ((p.y - bbox.lo.y) * sy) as u32,
            ((p.z - bbox.lo.z) * sz) as u32,
        )
    };
    order.sort_by_key(|&i| key(points[i as usize]));
    order
}

/// The canonical spatially-sorted insertion order: Morton order, split into
/// [`STREAMS`] contiguous chunks (sizes differing by at most one), emitted
/// round-robin. Every construction path — serial, parallel, and the
/// deprecated shims — inserts in exactly this order, which is what makes
/// their outputs identical even on inputs whose Delaunay triangulation is
/// not unique.
pub fn stratified_order(points: &[Vec3]) -> Vec<u32> {
    interleave(&morton_order(points), STREAMS)
}

/// Round-robin interleave of `streams` contiguous chunks of `order`.
fn interleave(order: &[u32], streams: usize) -> Vec<u32> {
    let n = order.len();
    if n <= streams {
        return order.to_vec();
    }
    let (base, rem) = (n / streams, n % streams);
    // Chunk `c` starts at `c*base + min(c, rem)`: the first `rem` chunks
    // hold one extra element.
    let start = |c: usize| c * base + c.min(rem);
    let mut out = Vec::with_capacity(n);
    for row in 0..base + (rem > 0) as usize {
        for c in 0..streams {
            let i = start(c) + row;
            if i < start(c + 1) {
                out.push(order[i]);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_is_permutation() {
        let pts: Vec<Vec3> = (0..100)
            .map(|i| {
                let f = i as f64;
                Vec3::new(
                    (f * 0.37).fract() * 8.0,
                    (f * 0.71).fract() * 8.0,
                    (f * 0.13).fract() * 8.0,
                )
            })
            .collect();
        let mut order = morton_order(&pts);
        order.sort_unstable();
        assert_eq!(order, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn nearby_points_nearby_in_order() {
        // Two clusters far apart: the order must not interleave them.
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(Vec3::new(i as f64 * 1e-3, 0.0, 0.0));
        }
        for i in 0..10 {
            pts.push(Vec3::new(1000.0 + i as f64 * 1e-3, 0.0, 0.0));
        }
        let order = morton_order(&pts);
        let first_cluster: Vec<bool> = order.iter().map(|&i| i < 10).collect();
        let transitions = first_cluster.windows(2).filter(|w| w[0] != w[1]).count();
        assert_eq!(transitions, 1, "clusters interleaved: {order:?}");
    }

    #[test]
    fn empty_and_singleton() {
        assert!(morton_order(&[]).is_empty());
        assert_eq!(morton_order(&[Vec3::ZERO]), vec![0]);
    }

    #[test]
    fn stratified_is_permutation() {
        for n in [0usize, 1, 5, STREAMS - 1, STREAMS, STREAMS + 1, 1000, 1037] {
            let pts: Vec<Vec3> = (0..n)
                .map(|i| {
                    let f = i as f64;
                    Vec3::new(
                        (f * 0.37).fract() * 8.0,
                        (f * 0.71).fract() * 8.0,
                        (f * 0.13).fract() * 8.0,
                    )
                })
                .collect();
            let mut order = stratified_order(&pts);
            order.sort_unstable();
            assert_eq!(order, (0..n as u32).collect::<Vec<u32>>(), "n={n}");
        }
    }

    #[test]
    fn stratified_round_robins_the_chunks() {
        // 2·STREAMS points on a line: Morton order is coordinate order, so
        // chunk c is {2c, 2c+1} and the interleave must emit all chunk heads
        // before any chunk tails.
        let pts: Vec<Vec3> = (0..2 * STREAMS)
            .map(|i| Vec3::new(i as f64, 0.0, 0.0))
            .collect();
        let order = stratified_order(&pts);
        let heads: Vec<u32> = order[..STREAMS].to_vec();
        let tails: Vec<u32> = order[STREAMS..].to_vec();
        assert!(heads.iter().all(|&i| i % 2 == 0), "{heads:?}");
        assert!(tails.iter().all(|&i| i % 2 == 1), "{tails:?}");
    }

    #[test]
    fn morton_key_monotone_per_axis() {
        assert!(morton3(0, 0, 0) < morton3(1, 0, 0));
        assert!(morton3(0, 0, 0) < morton3(0, 1, 0));
        assert!(morton3(0, 0, 0) < morton3(0, 0, 1));
        assert!(morton3(1, 1, 1) < morton3(2, 2, 2));
    }
}
