//! Bowyer–Watson insertion: bootstrap, conflict region, cavity
//! retriangulation.

use crate::locate::Located;
use crate::mesh::{TetId, VertexId, INFINITE, NONE};
use crate::{Delaunay, DelaunayError};
use dtfe_geometry::predicates::{insphere, orient2d, orient3d, Orientation};
use dtfe_geometry::{Vec2, Vec3};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Minimal multiply-xor hasher for the (u64-keyed) facet map — the standard
/// SipHash is measurably slow in this hot path and HashDoS is irrelevant for
/// internal geometry ids.
#[derive(Default)]
pub(crate) struct FxHasher(u64);

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0.rotate_left(5) ^ n).wrapping_mul(0x517cc1b727220a95);
    }
}

pub(crate) type FacetMap = HashMap<u64, (TetId, u8), BuildHasherDefault<FxHasher>>;

/// Reusable buffers for the insertion loop.
#[derive(Default)]
pub(crate) struct Scratch {
    stack: Vec<TetId>,
    conflict: Vec<TetId>,
    /// Boundary facets as `(outside_tet, face_index_in_outside_tet)`.
    boundary: Vec<(TetId, u8)>,
    /// Edge-of-boundary-facet → (new tet, face index) for wiring the new
    /// tetrahedra to each other.
    facet_map: FacetMap,
    created: Vec<TetId>,
}

/// Key for the facet map: the two vertices of a new tet's face other than
/// the inserted point, order-normalized.
#[inline]
pub(crate) fn edge_key(a: VertexId, b: VertexId) -> u64 {
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    ((lo as u64) << 32) | hi as u64
}

/// Vertex/neighbor record for one star tetrahedron over the boundary facet
/// `f` of a cavity, as seen from the outside tet `o` (i.e. `f` is
/// outward-oriented w.r.t. `o`, its normal pointing into the cavity).
/// Reversing two vertices makes `(f0, f2, f1, vid)` positively oriented.
/// Ghosts are canonicalized — `INFINITE` moved to slot 3 by an even
/// permutation (a 3-cycle), preserving orientation. Shared by the serial
/// and parallel insertion paths so their cavities are bit-identical.
#[inline]
pub(crate) fn star_record(
    f: [VertexId; 3],
    vid: VertexId,
    o: TetId,
) -> ([VertexId; 4], [TetId; 4]) {
    let mut verts = [f[0], f[2], f[1], vid];
    let mut nbrs = [NONE, NONE, NONE, o];
    if let Some(k) = verts[..3].iter().position(|&v| v == INFINITE) {
        let m = (k + 1) % 3; // any other slot below 3
                             // 3-cycle k -> 3 -> m -> k.
        let (vk, v3, vm) = (verts[k], verts[3], verts[m]);
        verts[3] = vk;
        verts[m] = v3;
        verts[k] = vm;
        let (nk, n3, nm) = (nbrs[k], nbrs[3], nbrs[m]);
        nbrs[3] = nk;
        nbrs[m] = n3;
        nbrs[k] = nm;
    }
    (verts, nbrs)
}

/// Find four affinely independent points in `order` and build the initial
/// tetrahedron plus its four ghosts.
pub(crate) fn bootstrap(input: &[Vec3], order: &[u32]) -> Result<Delaunay, DelaunayError> {
    // First point.
    let Some(&i0) = order.first() else {
        return Err(DelaunayError::Degenerate);
    };
    let p0 = input[i0 as usize];
    // Second: first distinct point.
    let i1 = order
        .iter()
        .copied()
        .find(|&i| input[i as usize] != p0)
        .ok_or(DelaunayError::Degenerate)?;
    let p1 = input[i1 as usize];
    // Third: first point not collinear with (p0, p1). Collinearity in 3D is
    // tested exactly via the three coordinate-plane projections.
    let collinear = |p: Vec3, q: Vec3, r: Vec3| {
        let proj = |f: fn(Vec3) -> Vec2| orient2d(f(p), f(q), f(r)) == Orientation::Zero;
        proj(|v| Vec2::new(v.x, v.y))
            && proj(|v| Vec2::new(v.y, v.z))
            && proj(|v| Vec2::new(v.z, v.x))
    };
    let i2 = order
        .iter()
        .copied()
        .find(|&i| !collinear(p0, p1, input[i as usize]))
        .ok_or(DelaunayError::Degenerate)?;
    let p2 = input[i2 as usize];
    // Fourth: first point off the (p0, p1, p2) plane.
    let i3 = order
        .iter()
        .copied()
        .find(|&i| !orient3d(p0, p1, p2, input[i as usize]).is_zero())
        .ok_or(DelaunayError::Degenerate)?;
    let p3 = input[i3 as usize];

    // Orient the first tetrahedron positively.
    let (p1, p2, idx12) = if orient3d(p0, p1, p2, p3).is_positive() {
        (p1, p2, (i1, i2))
    } else {
        (p2, p1, (i2, i1))
    };

    let mut d = Delaunay {
        points: vec![p0, p1, p2, p3],
        tets: Vec::new(),
        free: Vec::new(),
        mark: Vec::new(),
        epoch: 0,
        hint: 0,
        input_vertex: vec![NONE; input.len()],
        rng_state: 0x9E3779B97F4A7C15,
        n_finite: 0,
        n_ghost: 0,
        scratch: Scratch::default(),
    };
    d.input_vertex[i0 as usize] = 0;
    d.input_vertex[idx12.0 as usize] = 1;
    d.input_vertex[idx12.1 as usize] = 2;
    d.input_vertex[i3 as usize] = 3;

    let t0 = d.alloc_tet([0, 1, 2, 3], [NONE; 4]);
    // One ghost per face. The face triple from TET_FACES is outward-oriented
    // w.r.t. t0; the ghost stores it reversed (inward) per the canonical
    // convention.
    let mut ghosts = [NONE; 4];
    for (i, slot) in ghosts.iter_mut().enumerate() {
        let [a, b, c] = d.tets[t0 as usize].face(i);
        let g = d.alloc_tet([a, c, b, INFINITE], [NONE, NONE, NONE, t0]);
        d.tets[t0 as usize].neighbors[i] = g;
        *slot = g;
    }
    // Wire ghost-ghost adjacency over the hull edges via the generic map.
    let mut map: FacetMap = FacetMap::default();
    for &g in &ghosts {
        let verts = d.tets[g as usize].verts;
        for l in 0..3usize {
            // Face l of the ghost contains INFINITE and the two base vertices
            // other than verts[l].
            let (u, v) = match l {
                0 => (verts[1], verts[2]),
                1 => (verts[0], verts[2]),
                _ => (verts[0], verts[1]),
            };
            let key = edge_key(u, v);
            match map.remove(&key) {
                Some((other, ol)) => {
                    d.tets[g as usize].neighbors[l] = other;
                    d.tets[other as usize].neighbors[ol as usize] = g;
                }
                None => {
                    map.insert(key, (g, l as u8));
                }
            }
        }
    }
    debug_assert!(map.is_empty());
    d.hint = t0;
    Ok(d)
}

impl Delaunay {
    /// Is tetrahedron `t` in conflict with `p` (its open circumball contains
    /// `p`; for ghosts, `p` is strictly beyond the hull facet, or coplanar
    /// with it and inside the circumball of the adjacent finite
    /// tetrahedron)?
    pub(crate) fn in_conflict(&self, t: TetId, p: Vec3) -> bool {
        let tet = &self.tets[t as usize];
        if tet.is_ghost() {
            let (a, b, c) = (
                self.points[tet.verts[0] as usize],
                self.points[tet.verts[1] as usize],
                self.points[tet.verts[2] as usize],
            );
            // Base is inward-oriented: Positive = strictly outside the hull
            // facet's plane.
            match orient3d(a, b, c, p) {
                Orientation::Positive => true,
                Orientation::Negative => false,
                Orientation::Zero => {
                    // Coplanar: in conflict iff inside the facet's circumdisk,
                    // which equals membership in the adjacent finite
                    // tetrahedron's circumball (their intersection with the
                    // facet plane is the same disk). This also covers
                    // degenerate (collinear) hull facets, where the plane
                    // test is vacuous.
                    let inner = &self.tets[tet.neighbors[3] as usize];
                    debug_assert!(!inner.is_ghost());
                    let q = |i: usize| self.points[inner.verts[i] as usize];
                    insphere(q(0), q(1), q(2), q(3), p).is_positive()
                }
            }
        } else {
            let q = |i: usize| self.points[tet.verts[i] as usize];
            insphere(q(0), q(1), q(2), q(3), p).is_positive()
        }
    }

    /// Insert one point, returning its vertex id (an existing id for an
    /// exact duplicate).
    pub(crate) fn insert_point(&mut self, p: Vec3) -> VertexId {
        let start = match self.locate(p) {
            Located::Vertex(v) => return v,
            Located::Finite(t) => t,
            Located::Ghost(g) => g,
        };
        let vid = self.points.len() as VertexId;
        self.points.push(p);

        // --- Conflict region (BFS with epoch marks) ---
        // mark = 2*epoch   : in conflict
        // mark = 2*epoch+1 : tested, not in conflict
        self.epoch += 1;
        let c_mark = 2 * self.epoch;
        let n_mark = c_mark + 1;
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.stack.clear();
        scratch.conflict.clear();
        scratch.boundary.clear();
        scratch.facet_map.clear();
        scratch.created.clear();

        debug_assert!(self.in_conflict(start, p), "located tet must conflict");
        self.mark[start as usize] = c_mark;
        scratch.stack.push(start);
        while let Some(t) = scratch.stack.pop() {
            scratch.conflict.push(t);
            for i in 0..4 {
                let n = self.tets[t as usize].neighbors[i];
                let m = self.mark[n as usize];
                if m == c_mark {
                    continue;
                }
                if m == n_mark || !self.in_conflict(n, p) {
                    if m != n_mark {
                        self.mark[n as usize] = n_mark;
                    }
                    // Boundary facet, identified from the outside tet.
                    let j = self.tets[n as usize]
                        .index_of_neighbor(t)
                        .expect("adjacency not reciprocal");
                    scratch.boundary.push((n, j as u8));
                } else {
                    self.mark[n as usize] = c_mark;
                    scratch.stack.push(n);
                }
            }
        }

        // --- Delete the conflict region ---
        for &t in &scratch.conflict {
            self.free_tet(t);
        }

        // --- Star the cavity boundary from the new point ---
        for &(o, j) in &scratch.boundary {
            // Facet as seen from the outside tet: outward w.r.t. `o`, i.e.
            // its normal points into the cavity (toward p). Reversing two
            // vertices makes (f0, f2, f1, p) positively oriented.
            let f = self.tets[o as usize].face(j as usize);
            let (verts, nbrs) = star_record(f, vid, o);
            let t_new = self.alloc_tet(verts, nbrs);
            scratch.created.push(t_new);
            // Reciprocal link to the outside tet through the boundary facet.
            let back = self.tets[t_new as usize]
                .index_of_neighbor(o)
                .expect("outside link lost in canonicalization");
            debug_assert_eq!(self.tets[t_new as usize].neighbors[back], o);
            self.tets[o as usize].neighbors[j as usize] = t_new;

            // Wire the three faces incident to the new point.
            for l in 0..4usize {
                if verts[l] == vid {
                    continue;
                }
                // Face l contains vid and the two other non-l vertices.
                let mut uv = [NONE, NONE];
                let mut n = 0;
                for (m, &v) in verts.iter().enumerate() {
                    if m != l && v != vid {
                        uv[n] = v;
                        n += 1;
                    }
                }
                debug_assert_eq!(n, 2);
                let key = edge_key(uv[0], uv[1]);
                match scratch.facet_map.remove(&key) {
                    Some((other, ol)) => {
                        self.tets[t_new as usize].neighbors[l] = other;
                        self.tets[other as usize].neighbors[ol as usize] = t_new;
                    }
                    None => {
                        scratch.facet_map.insert(key, (t_new, l as u8));
                    }
                }
            }
        }
        debug_assert!(scratch.facet_map.is_empty(), "unpaired cavity facets");

        #[cfg(debug_assertions)]
        for &t in &scratch.created {
            let tet = &self.tets[t as usize];
            if !tet.is_ghost() {
                let q = |i: usize| self.points[tet.verts[i] as usize];
                debug_assert!(
                    orient3d(q(0), q(1), q(2), q(3)).is_positive(),
                    "new tet {t} not positively oriented"
                );
            }
        }

        self.hint = *scratch.created.last().expect("cavity produced no tets");
        self.scratch = scratch;
        vid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_key_symmetric() {
        assert_eq!(edge_key(3, 9), edge_key(9, 3));
        assert_ne!(edge_key(3, 9), edge_key(3, 10));
        assert_eq!(edge_key(INFINITE, 2), edge_key(2, INFINITE));
    }

    #[test]
    fn bootstrap_skips_leading_degeneracies() {
        // Duplicates, collinear, and coplanar prefixes must be skipped when
        // hunting for the initial simplex.
        let pts = vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(2.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(1.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
        ];
        let order: Vec<u32> = (0..pts.len() as u32).collect();
        let d = bootstrap(&pts, &order).unwrap();
        assert_eq!(d.num_tets(), 1);
        assert_eq!(d.num_ghosts(), 4);
        d.validate().unwrap();
    }
}
