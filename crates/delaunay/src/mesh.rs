//! Tetrahedron storage: vertex/neighbor records, ghost convention, slot
//! allocation.

/// Vertex index into [`crate::Delaunay::vertices`].
pub type VertexId = u32;

/// Tetrahedron index into the triangulation's slot array.
pub type TetId = u32;

/// The symbolic vertex "at infinity". Every hull facet is the base of exactly
/// one *ghost* tetrahedron whose fourth vertex is `INFINITE`.
pub const INFINITE: VertexId = u32::MAX;

/// Sentinel for "no tetrahedron" / "no vertex".
pub const NONE: u32 = u32::MAX;

/// One tetrahedron record.
///
/// Invariants maintained by the insertion code:
///
/// * Finite tetrahedra are positively oriented
///   (`orient3d(v0, v1, v2, v3) > 0`).
/// * Ghost tetrahedra store the infinite vertex at index 3 and their base
///   facet `(v0, v1, v2)` is the hull facet oriented *inward* — the normal
///   points into the hull, so `orient3d(v0, v1, v2, x) < 0` for interior `x`
///   and `> 0` for points strictly outside. This is "symbolic positivity":
///   treating the infinite vertex as lying beyond the facet makes the ghost
///   positively oriented, so [`dtfe_geometry::plucker::TET_FACES`] stays
///   valid for ghosts too.
/// * `neighbors[i]` is the tetrahedron sharing the facet opposite
///   `verts[i]`, and the relation is reciprocal.
#[derive(Clone, Copy, Debug)]
pub struct Tet {
    pub verts: [VertexId; 4],
    pub neighbors: [TetId; 4],
}

impl Tet {
    pub(crate) const DEAD: Tet = Tet {
        verts: [NONE; 4],
        neighbors: [NONE; 4],
    };

    /// Is this slot live (not on the free list)?
    #[inline]
    pub fn is_live(&self) -> bool {
        self.verts[0] != NONE
    }

    /// Is this a ghost (hull) tetrahedron?
    #[inline]
    pub fn is_ghost(&self) -> bool {
        self.verts[3] == INFINITE
    }

    /// Does this tetrahedron have `v` as a vertex?
    #[inline]
    pub fn has_vertex(&self, v: VertexId) -> bool {
        self.verts.contains(&v)
    }

    /// Local index (0..4) of vertex `v`.
    #[inline]
    pub fn index_of_vertex(&self, v: VertexId) -> Option<usize> {
        self.verts.iter().position(|&x| x == v)
    }

    /// Local index (0..4) of neighbor `t`.
    #[inline]
    pub fn index_of_neighbor(&self, t: TetId) -> Option<usize> {
        self.neighbors.iter().position(|&x| x == t)
    }

    /// The three vertices of the face opposite local vertex `i`, in the
    /// outward orientation of [`dtfe_geometry::plucker::TET_FACES`].
    #[inline]
    pub fn face(&self, i: usize) -> [VertexId; 3] {
        let [a, b, c] = dtfe_geometry::plucker::TET_FACES[i];
        [self.verts[a], self.verts[b], self.verts[c]]
    }
}

impl crate::Delaunay {
    /// Allocate a tetrahedron slot (reusing freed slots).
    pub(crate) fn alloc_tet(&mut self, verts: [VertexId; 4], neighbors: [TetId; 4]) -> TetId {
        let tet = Tet { verts, neighbors };
        debug_assert!(tet.is_live());
        if tet.is_ghost() {
            self.n_ghost += 1;
        } else {
            self.n_finite += 1;
        }
        if let Some(id) = self.free.pop() {
            self.tets[id as usize] = tet;
            id
        } else {
            let id = self.tets.len() as TetId;
            self.tets.push(tet);
            self.mark.push(0);
            id
        }
    }

    /// Free a tetrahedron slot.
    pub(crate) fn free_tet(&mut self, t: TetId) {
        let tet = &mut self.tets[t as usize];
        debug_assert!(tet.is_live());
        if tet.is_ghost() {
            self.n_ghost -= 1;
        } else {
            self.n_finite -= 1;
        }
        *tet = Tet::DEAD;
        self.free.push(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ghost_detection() {
        let g = Tet {
            verts: [0, 1, 2, INFINITE],
            neighbors: [NONE; 4],
        };
        assert!(g.is_ghost());
        assert!(g.is_live());
        let f = Tet {
            verts: [0, 1, 2, 3],
            neighbors: [NONE; 4],
        };
        assert!(!f.is_ghost());
        assert!(!Tet::DEAD.is_live());
    }

    #[test]
    fn face_uses_outward_table() {
        let t = Tet {
            verts: [10, 11, 12, 13],
            neighbors: [NONE; 4],
        };
        assert_eq!(t.face(3), [10, 11, 12]);
        assert_eq!(t.face(0), [11, 13, 12]);
        assert_eq!(t.index_of_vertex(12), Some(2));
        assert_eq!(t.index_of_vertex(99), None);
    }
}
