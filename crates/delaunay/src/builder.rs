//! The [`DelaunayBuilder`] construction API.

use crate::{morton, parallel, Delaunay, DelaunayError, ValidationError};
use dtfe_geometry::Vec3;

/// Alias for the triangulation the builder produces.
pub type Triangulation = Delaunay;

/// Typed construction failure. Unlike the deprecated free-function path,
/// every failure mode — including non-finite coordinates, which used to
/// panic — surfaces as a `Result`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// Fewer than four affinely independent points: no 3D triangulation
    /// exists (empty input, all points coincident, collinear, or coplanar).
    Degenerate,
    /// An input coordinate is NaN or infinite.
    NonFinite {
        /// Index of the first offending input point.
        index: usize,
    },
    /// Post-build structural validation failed (only with
    /// [`DelaunayBuilder::validate`]). This indicates a library bug, not bad
    /// input; please report it.
    Validation(ValidationError),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Degenerate => {
                write!(
                    f,
                    "input points are affinely degenerate (need 4 non-coplanar points)"
                )
            }
            BuildError::NonFinite { index } => {
                write!(f, "input point {index} has a non-finite coordinate")
            }
            BuildError::Validation(e) => write!(f, "triangulation failed validation: {e}"),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Validation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DelaunayError> for BuildError {
    fn from(e: DelaunayError) -> BuildError {
        match e {
            DelaunayError::Degenerate => BuildError::Degenerate,
        }
    }
}

/// In auto mode (no explicit [`DelaunayBuilder::threads`] call), inputs
/// below this size build serially: round-synchronization overhead beats the
/// parallel win on small meshes.
const AUTO_PARALLEL_MIN: usize = 4096;

/// Builder for [`Delaunay`] triangulations — the single public construction
/// entry point.
///
/// Defaults: Morton (BRIO) spatial sort on, thread count chosen
/// automatically (serial for small inputs, the global Rayon pool otherwise),
/// no post-build validation.
///
/// The parallel and serial paths produce the *same* triangulation (identical
/// as an abstract simplicial complex, for every thread count); see
/// `parallel.rs` for why.
///
/// # Example
///
/// ```
/// use dtfe_delaunay::DelaunayBuilder;
/// use dtfe_geometry::Vec3;
///
/// let pts: Vec<Vec3> = (0..200)
///     .map(|i| {
///         let f = 1.0 + i as f64;
///         Vec3::new(
///             (f * 0.618_033_988_749_894_9).fract(),
///             (f * 0.414_213_562_373_095_1).fract(),
///             (f * 0.259_921_049_894_873_2).fract(),
///         )
///     })
///     .collect();
/// let tri = DelaunayBuilder::new()
///     .threads(2)
///     .spatial_sort(true)
///     .validate(true)
///     .build(&pts)
///     .unwrap();
/// assert_eq!(tri.num_vertices(), 200);
/// ```
#[derive(Clone, Debug, Default)]
pub struct DelaunayBuilder {
    threads: Option<usize>,
    no_spatial_sort: bool,
    validate: bool,
}

impl DelaunayBuilder {
    /// A builder with default settings.
    pub fn new() -> DelaunayBuilder {
        DelaunayBuilder::default()
    }

    /// Use exactly `n` worker threads: `1` forces the serial path, `n > 1`
    /// runs the parallel path in a dedicated pool of `n` threads. Without
    /// this call the builder decides automatically: serial below ~4k points
    /// or when the ambient Rayon pool has a single worker, the global pool
    /// otherwise.
    pub fn threads(mut self, n: usize) -> DelaunayBuilder {
        self.threads = Some(n.max(1));
        self
    }

    /// Insert in Morton (BRIO) order (`true`, default) or input order
    /// (`false`, mainly for the ablation bench).
    pub fn spatial_sort(mut self, yes: bool) -> DelaunayBuilder {
        self.no_spatial_sort = !yes;
        self
    }

    /// Run the full structural + local-Delaunay validation after
    /// construction, surfacing any violation as [`BuildError::Validation`].
    pub fn validate(mut self, yes: bool) -> DelaunayBuilder {
        self.validate = yes;
        self
    }

    /// Triangulate `points`. Duplicates merge ([`Delaunay::vertex_of_input`]
    /// maps input indices to vertex ids); degenerate or non-finite input
    /// returns a typed [`BuildError`] instead of panicking.
    pub fn build(&self, points: &[Vec3]) -> Result<Triangulation, BuildError> {
        let span = dtfe_telemetry::span!("delaunay.build", n = points.len());
        if let Some(index) = points.iter().position(|p| !p.is_finite()) {
            return Err(BuildError::NonFinite { index });
        }
        let order: Vec<u32> = if self.no_spatial_sort {
            (0..points.len() as u32).collect()
        } else {
            morton::stratified_order(points)
        };
        // Round accounting from the parallel path, published below from the
        // *caller's* thread (the round driver runs on a Rayon worker, which
        // a thread-locally installed recorder would not cover).
        let mut rounds = parallel::RoundStats::default();
        let d = match self.threads {
            Some(1) => crate::build_serial(points, &order)?,
            Some(n) => match rayon::ThreadPoolBuilder::new().num_threads(n).build() {
                Ok(pool) => pool.install(|| parallel::triangulate(points, &order, &mut rounds))?,
                // Pool creation can only fail in exotic environments; the
                // global pool still yields the identical mesh.
                Err(_) => parallel::triangulate(points, &order, &mut rounds)?,
            },
            // Auto mode: small inputs and single-worker pools gain nothing
            // from round synchronization — build serially (the mesh is
            // identical either way).
            None if points.len() < AUTO_PARALLEL_MIN || rayon::current_num_threads() < 2 => {
                crate::build_serial(points, &order)?
            }
            None => parallel::triangulate(points, &order, &mut rounds)?,
        };
        if self.validate {
            d.validate().map_err(BuildError::Validation)?;
        }
        dtfe_telemetry::counter_add!("delaunay.points_inserted", d.num_vertices() as u64);
        if rounds.rounds > 0 {
            dtfe_telemetry::counter_add!("delaunay.rounds", rounds.rounds);
            dtfe_telemetry::counter_add!("delaunay.round_inserted", rounds.inserted);
            dtfe_telemetry::counter_add!("delaunay.duplicates_merged", rounds.duplicates);
            dtfe_telemetry::counter_add!("delaunay.cache_hits", rounds.cache_hits);
            dtfe_telemetry::counter_add!("delaunay.scans", rounds.scans);
            dtfe_telemetry::counter_add!("delaunay.deferred", rounds.deferred);
            if dtfe_telemetry::is_enabled() {
                for &k in &rounds.per_round {
                    dtfe_telemetry::hist_record!("delaunay.points_per_round", k);
                }
            }
        } else {
            dtfe_telemetry::counter_add!("delaunay.serial_builds", 1);
        }
        drop(span);
        Ok(d)
    }
}
