//! Adversarial and property-based construction tests for the Delaunay
//! substrate.

use dtfe_delaunay::{BuildError, Delaunay, DelaunayBuilder, Located};
use dtfe_geometry::tetra::{contains, volume};
use dtfe_geometry::Vec3;
use proptest::prelude::*;

fn hull_volume(d: &Delaunay) -> f64 {
    d.finite_tets()
        .map(|t| {
            let p = d.tet_points(t);
            volume(p[0], p[1], p[2], p[3])
        })
        .sum()
}

/// Deterministic xorshift for non-proptest stress cases.
struct Rng(u64);

impl Rng {
    fn f(&mut self) -> f64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        (self.0.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[test]
fn collinear_hull_extensions() {
    // Points along cube edges inserted after a solid core: exercises the
    // degenerate "p collinear with a hull edge" ghost paths.
    let mut pts = vec![
        Vec3::new(0.0, 0.0, 0.0),
        Vec3::new(1.0, 0.0, 0.0),
        Vec3::new(0.0, 1.0, 0.0),
        Vec3::new(0.0, 0.0, 1.0),
    ];
    for i in 2..8 {
        pts.push(Vec3::new(i as f64, 0.0, 0.0));
        pts.push(Vec3::new(0.0, i as f64, 0.0));
        pts.push(Vec3::new(0.0, 0.0, i as f64));
    }
    let d = DelaunayBuilder::new()
        .spatial_sort(false)
        .build(&pts)
        .unwrap();
    d.validate().unwrap();
    d.validate_delaunay_global().unwrap();
    assert_eq!(d.num_vertices(), pts.len());
}

#[test]
fn cospherical_shell() {
    // Many points on (approximately) a sphere plus exact antipodal pairs:
    // stresses the insphere Zero paths.
    let mut pts = Vec::new();
    let n = 60;
    for i in 0..n {
        let theta = std::f64::consts::PI * (i as f64 + 0.5) / n as f64;
        for j in 0..6 {
            let phi = std::f64::consts::TAU * j as f64 / 6.0;
            pts.push(Vec3::new(
                theta.sin() * phi.cos(),
                theta.sin() * phi.sin(),
                theta.cos(),
            ));
        }
    }
    pts.push(Vec3::ZERO);
    let d = DelaunayBuilder::new().build(&pts).unwrap();
    d.validate().unwrap();
}

#[test]
fn two_planes_lattice() {
    // Two parallel coplanar lattices: every tet spans the gap; lots of exact
    // coplanarity in conflict walks.
    let mut pts = Vec::new();
    for z in [0.0, 1.0] {
        for i in 0..5 {
            for j in 0..5 {
                pts.push(Vec3::new(i as f64, j as f64, z));
            }
        }
    }
    let d = DelaunayBuilder::new().build(&pts).unwrap();
    d.validate().unwrap();
    d.validate_delaunay_global().unwrap();
    assert!((hull_volume(&d) - 16.0).abs() < 1e-9);
}

#[test]
fn clustered_points() {
    // Highly clustered (power-law-ish) points: deep walks, tiny tets.
    let mut rng = Rng(0xDEADBEEF);
    let mut pts = Vec::new();
    for _ in 0..40 {
        let cx = Vec3::new(rng.f() * 10.0, rng.f() * 10.0, rng.f() * 10.0);
        let scale = 0.01 + rng.f() * 0.1;
        for _ in 0..25 {
            pts.push(cx + Vec3::new(rng.f() - 0.5, rng.f() - 0.5, rng.f() - 0.5) * scale);
        }
    }
    let d = DelaunayBuilder::new().build(&pts).unwrap();
    assert_eq!(d.num_vertices(), pts.len());
    d.validate().unwrap();
}

#[test]
fn grid_plus_jitter_large() {
    let mut rng = Rng(123);
    let mut pts = Vec::new();
    for i in 0..8 {
        for j in 0..8 {
            for k in 0..8 {
                pts.push(Vec3::new(
                    i as f64 + 0.3 * rng.f(),
                    j as f64 + 0.3 * rng.f(),
                    k as f64 + 0.3 * rng.f(),
                ));
            }
        }
    }
    let d = DelaunayBuilder::new().build(&pts).unwrap();
    d.validate().unwrap();
    // Sanity: roughly 6 tets per interior point.
    assert!(d.num_tets() > 2 * pts.len(), "tets = {}", d.num_tets());
}

#[test]
fn needs_four_independent_points() {
    // Three distinct points only.
    let pts = vec![
        Vec3::new(0.0, 0.0, 0.0),
        Vec3::new(1.0, 2.0, 3.0),
        Vec3::new(-1.0, 0.5, 2.0),
    ];
    assert_eq!(
        DelaunayBuilder::new().build(&pts).unwrap_err(),
        BuildError::Degenerate
    );
}

#[test]
fn locate_after_build_is_consistent() {
    let mut rng = Rng(777);
    let pts: Vec<Vec3> = (0..400)
        .map(|_| Vec3::new(rng.f(), rng.f(), rng.f()))
        .collect();
    let mut d = DelaunayBuilder::new().build(&pts).unwrap();
    for _ in 0..100 {
        let q = Vec3::new(rng.f(), rng.f(), rng.f());
        match d.locate(q) {
            Located::Finite(t) => {
                let tp = d.tet_points(t);
                assert!(contains(q, &tp, 1e-9));
            }
            Located::Ghost(_) => {
                // q must be outside the hull; verify it is not inside any tet.
                // (Spot check: barycentric membership over a sample of tets.)
            }
            Located::Vertex(_) => {}
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_clouds_are_valid_delaunay(
        pts in prop::collection::vec(
            (0.0f64..4.0, 0.0f64..4.0, 0.0f64..4.0).prop_map(|(x, y, z)| Vec3::new(x, y, z)),
            8..80,
        )
    ) {
        match DelaunayBuilder::new().build(&pts) {
            Ok(d) => {
                d.validate().unwrap();
                d.validate_delaunay_global().unwrap();
                prop_assert!(d.num_vertices() <= pts.len());
            }
            Err(BuildError::Degenerate) => {
                // Possible only if proptest generated a degenerate cloud;
                // astronomically unlikely with continuous coordinates but not
                // an error of the library.
            }
            Err(e) => panic!("unexpected build error: {e}"),
        }
    }

    #[test]
    fn quantized_clouds_are_valid_delaunay(
        pts in prop::collection::vec((0u8..6, 0u8..6, 0u8..6), 10..60)
    ) {
        // Integer-snapped points: duplicates, collinear runs, cospherical
        // subsets everywhere. This is the robustness gauntlet.
        let pts: Vec<Vec3> = pts
            .into_iter()
            .map(|(x, y, z)| Vec3::new(x as f64, y as f64, z as f64))
            .collect();
        match DelaunayBuilder::new().build(&pts) {
            Ok(d) => {
                d.validate().unwrap();
                d.validate_delaunay_global().unwrap();
            }
            Err(BuildError::Degenerate) => {
                // Legitimate for flat/collinear draws.
            }
            Err(e) => panic!("unexpected build error: {e}"),
        }
    }
}
