//! Serial/parallel equivalence suite for [`DelaunayBuilder`].
//!
//! The parallel path is designed to produce *exactly* the triangulation the
//! serial Morton-order insertion produces (see `src/parallel.rs` for the
//! commutation argument), so these tests hold it to that bar on the three
//! adversarial families from the issue — uniform random clouds, exact
//! regular grids (maximally cospherical/coplanar), and points on a common
//! sphere — at 2, 4, and 8 threads:
//!
//! 1. both meshes pass `validate::global_delaunay_check` (full structural
//!    validation plus the brute-force global empty-circumsphere check), and
//! 2. the vertex-degree multisets are identical — and, stronger, the sorted
//!    finite-tet vertex quadruples match, i.e. the two meshes are the same
//!    abstract simplicial complex.

use dtfe_delaunay::{validate, Delaunay, DelaunayBuilder, Triangulation};
use dtfe_geometry::Vec3;
use proptest::prelude::*;

/// Canonical form of the finite complex: sorted list of sorted vertex
/// quadruples.
fn finite_complex(d: &Delaunay) -> Vec<[u32; 4]> {
    let mut tets: Vec<[u32; 4]> = d
        .finite_tets()
        .map(|t| {
            let mut v = d.tet(t).verts;
            v.sort_unstable();
            v
        })
        .collect();
    tets.sort_unstable();
    tets
}

fn degree_multiset(d: &Delaunay) -> Vec<u32> {
    let mut deg = d.vertex_degrees();
    deg.sort_unstable();
    deg
}

/// Build serially and at 2/4/8 threads; validate each and compare against
/// the serial reference.
///
/// The O(tets × vertices) brute-force global empty-circumsphere check runs
/// on the serial mesh and the first parallel one; the remaining thread
/// counts get the full structural + local-Delaunay validation (which implies
/// the global property for a valid triangulation) plus exact complex
/// equality against the already-globally-checked reference — re-running the
/// quadratic check on a complex asserted identical adds nothing but time.
fn assert_parallel_matches_serial(pts: &[Vec3]) {
    let serial = DelaunayBuilder::new()
        .threads(1)
        .build(pts)
        .expect("serial build");
    validate::global_delaunay_check(&serial).expect("serial validation");
    let reference = finite_complex(&serial);
    let degrees = degree_multiset(&serial);

    for threads in [2usize, 4, 8] {
        let par: Triangulation = DelaunayBuilder::new()
            .threads(threads)
            .build(pts)
            .unwrap_or_else(|e| panic!("parallel build ({threads} threads): {e}"));
        if threads == 2 {
            validate::global_delaunay_check(&par)
                .unwrap_or_else(|e| panic!("parallel validation ({threads} threads): {e}"));
        } else {
            par.validate()
                .unwrap_or_else(|e| panic!("parallel validation ({threads} threads): {e}"));
        }
        assert_eq!(
            degree_multiset(&par),
            degrees,
            "vertex-degree multiset diverged at {threads} threads"
        );
        assert_eq!(
            finite_complex(&par),
            reference,
            "finite complex diverged at {threads} threads"
        );
    }
}

/// Exact n×n×n lattice: every 2×2×2 sub-cube is cospherical, so nearly all
/// insertions hit the exact insphere==Zero path.
fn grid(n: usize) -> Vec<Vec3> {
    let mut pts = Vec::with_capacity(n * n * n);
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                pts.push(Vec3::new(i as f64, j as f64, k as f64));
            }
        }
    }
    pts
}

/// Points on a common sphere (plus center): one giant cospherical family.
fn cosphere(n: usize, jitter_seed: u64) -> Vec<Vec3> {
    let mut pts = vec![Vec3::new(0.0, 0.0, 0.0)];
    let mut s = jitter_seed | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s >> 11) as f64 / (1u64 << 53) as f64
    };
    for _ in 0..n {
        let z = 2.0 * next() - 1.0;
        let phi = std::f64::consts::TAU * next();
        let r = (1.0 - z * z).max(0.0).sqrt();
        pts.push(Vec3::new(r * phi.cos(), r * phi.sin(), z));
    }
    pts
}

#[test]
fn grid_5x5x5_equivalent() {
    assert_parallel_matches_serial(&grid(5));
}

#[test]
fn grid_7x7x7_equivalent() {
    assert_parallel_matches_serial(&grid(7));
}

#[test]
fn cospherical_200_equivalent() {
    assert_parallel_matches_serial(&cosphere(200, 0x5EED));
}

#[test]
fn cospherical_300_equivalent() {
    assert_parallel_matches_serial(&cosphere(300, 0xBADC0DE));
}

#[test]
fn duplicates_and_near_duplicates_equivalent() {
    // Stress the Located::Vertex dedup path under parallel scanning.
    let mut pts = grid(4);
    let dups: Vec<Vec3> = pts.iter().step_by(3).copied().collect();
    pts.extend(dups);
    pts.push(Vec3::new(0.5, 0.5, 0.5));
    assert_parallel_matches_serial(&pts);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn random_clouds_equivalent(
        pts in prop::collection::vec(
            (0.0f64..16.0, 0.0f64..16.0, 0.0f64..16.0).prop_map(|(x, y, z)| Vec3::new(x, y, z)),
            8..300,
        )
    ) {
        match DelaunayBuilder::new().threads(1).build(&pts) {
            Ok(_) => assert_parallel_matches_serial(&pts),
            // A degenerate random cloud (possible only at tiny sizes) must
            // be degenerate for every thread count too.
            Err(e) => {
                for threads in [2usize, 4, 8] {
                    let pe = DelaunayBuilder::new().threads(threads).build(&pts).unwrap_err();
                    prop_assert_eq!(&pe, &e);
                }
            }
        }
    }

    #[test]
    fn quantized_clouds_equivalent(
        pts in prop::collection::vec((0u8..5, 0u8..5, 0u8..5), 10..120)
    ) {
        // Integer-lattice clouds with duplicates: heavy exact-predicate and
        // vertex-merge traffic.
        let pts: Vec<Vec3> =
            pts.into_iter().map(|(x, y, z)| Vec3::new(x as f64, y as f64, z as f64)).collect();
        match DelaunayBuilder::new().threads(1).build(&pts) {
            Ok(_) => assert_parallel_matches_serial(&pts),
            Err(e) => {
                for threads in [2usize, 4, 8] {
                    let pe = DelaunayBuilder::new().threads(threads).build(&pts).unwrap_err();
                    prop_assert_eq!(&pe, &e);
                }
            }
        }
    }
}
