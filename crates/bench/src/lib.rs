//! Shared machinery for the experiment harnesses (one binary per paper
//! figure) and the Criterion benches.
//!
//! # Emulated wall clock
//!
//! The paper's scaling figures plot wall-clock time over MPI ranks /
//! OpenMP threads on multi-node hardware. This reproduction commonly runs
//! on few (or single!) cores, so harnesses measure **per-rank / per-thread
//! busy time** with real workloads and report the *emulated* wall clock —
//! the maximum busy time over ranks (plus measured communication waits).
//! Load distributions, schedules, and work content are all real; only the
//! physical simultaneity is emulated. Shapes (who wins, crossovers,
//! imbalance trends) are therefore comparable to the paper even on one
//! core.

use std::io::Write;

/// Experiment scale selector, from the harness command line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Seconds per figure: CI-sized.
    Small,
    /// Tens of seconds: the default for producing EXPERIMENTS.md numbers.
    Medium,
    /// Minutes: closest to the paper's problem sizes that fits one node.
    Paper,
}

impl Scale {
    /// Parse from `std::env::args()`: `--scale small|medium|paper`
    /// (default `medium`).
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        for w in args.windows(2) {
            if w[0] == "--scale" {
                return match w[1].as_str() {
                    "small" => Scale::Small,
                    "medium" => Scale::Medium,
                    "paper" => Scale::Paper,
                    other => panic!("unknown scale {other:?} (small|medium|paper)"),
                };
            }
        }
        Scale::Medium
    }

    /// Pick one of three values by scale.
    pub fn pick<T: Copy>(self, small: T, medium: T, paper: T) -> T {
        match self {
            Scale::Small => small,
            Scale::Medium => medium,
            Scale::Paper => paper,
        }
    }
}

/// Per-thread totals when distributing per-item costs over `nthreads` with
/// OpenMP-style *static* block scheduling (contiguous equal-count blocks —
/// the DTFE public software's per-thread sub-volumes).
pub fn static_schedule(costs: &[f64], nthreads: usize) -> Vec<f64> {
    assert!(nthreads > 0);
    let mut out = vec![0.0; nthreads];
    let chunk = costs.len().div_ceil(nthreads);
    for (t, block) in costs.chunks(chunk.max(1)).enumerate() {
        out[t.min(nthreads - 1)] += block.iter().sum::<f64>();
    }
    out
}

/// Per-thread totals under OpenMP-style *dynamic* scheduling: each item
/// goes to the earliest-finishing thread (the steady state of a work
/// queue). This is how the paper's kernel loop is scheduled.
pub fn dynamic_schedule(costs: &[f64], nthreads: usize) -> Vec<f64> {
    assert!(nthreads > 0);
    let mut out = vec![0.0; nthreads];
    for &c in costs {
        // Next free thread = argmin of accumulated time.
        let (t, _) = out
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        out[t] += c;
    }
    out
}

/// Emulated wall clock of a schedule: the max per-thread total.
pub fn wall_of(schedule: &[f64]) -> f64 {
    schedule.iter().cloned().fold(0.0, f64::max)
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// A CSV writer into `target/experiments/<name>.csv` that echoes rows to
/// stdout, so every harness both prints the figure's series and archives
/// it. On drop it also writes a JSON sibling `<name>.json` — the same
/// series as an array of row objects keyed by the header columns, with
/// numeric cells emitted as JSON numbers — so downstream tooling never
/// has to re-parse the CSV.
pub struct SeriesWriter {
    file: std::io::BufWriter<std::fs::File>,
    json_path: std::path::PathBuf,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl SeriesWriter {
    pub fn create(name: &str, header: &str) -> SeriesWriter {
        let dir = dtfe_core::io::experiments_dir();
        let path = dir.join(format!("{name}.csv"));
        let mut file =
            std::io::BufWriter::new(std::fs::File::create(&path).expect("create experiment csv"));
        writeln!(file, "{header}").unwrap();
        println!("# {name} -> {}", path.display());
        println!("{header}");
        SeriesWriter {
            file,
            json_path: dir.join(format!("{name}.json")),
            columns: header.split(',').map(|c| c.trim().to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, row: &str) {
        writeln!(self.file, "{row}").unwrap();
        println!("{row}");
        self.rows
            .push(row.split(',').map(|c| c.trim().to_string()).collect());
    }
}

/// Render the series rows as a JSON array of objects keyed by `columns`.
/// Cells that parse as finite floats become numbers, everything else a
/// string; short rows just omit the trailing columns.
pub fn series_json(columns: &[String], rows: &[Vec<String>]) -> String {
    use dtfe_telemetry::json::{escape_into, number};
    let mut out = String::from("[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n{");
        for (j, cell) in row.iter().enumerate().take(columns.len()) {
            if j > 0 {
                out.push(',');
            }
            escape_into(&mut out, &columns[j]);
            out.push(':');
            match cell.parse::<f64>() {
                Ok(v) if v.is_finite() => out.push_str(&number(v)),
                _ => escape_into(&mut out, cell),
            }
        }
        out.push('}');
    }
    out.push_str("\n]\n");
    out
}

impl Drop for SeriesWriter {
    fn drop(&mut self) {
        self.file.flush().ok();
        std::fs::write(&self.json_path, series_json(&self.columns, &self.rows)).ok();
    }
}

/// Deterministic xorshift helper for harness-local jitter.
pub struct XorShift(pub u64);

impl XorShift {
    pub fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        (self.0.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_blocks_preserve_total() {
        let costs = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let s = static_schedule(&costs, 3);
        assert_eq!(s.len(), 3);
        assert!((s.iter().sum::<f64>() - 21.0).abs() < 1e-12);
        assert_eq!(s, vec![3.0, 7.0, 11.0]);
    }

    #[test]
    fn dynamic_balances_better_than_static() {
        // Skewed costs at the front: static loads thread 0, dynamic spreads.
        let mut costs = vec![10.0, 10.0, 10.0];
        costs.extend(vec![1.0; 27]);
        let st = static_schedule(&costs, 3);
        let dy = dynamic_schedule(&costs, 3);
        assert!(wall_of(&dy) < wall_of(&st));
        assert!((dy.iter().sum::<f64>() - costs.iter().sum::<f64>()).abs() < 1e-9);
    }

    #[test]
    fn dynamic_is_lpt_like() {
        let costs = vec![5.0, 4.0, 3.0, 2.0];
        let dy = dynamic_schedule(&costs, 2);
        // 5 -> t0, 4 -> t1, 3 -> t1(4<5), wait: after 4, t1=4 < t0=5, so 3 -> t1 => t1=7; 2 -> t0 => 7.
        assert_eq!(wall_of(&dy), 7.0);
    }

    #[test]
    fn more_threads_never_worse() {
        let costs: Vec<f64> = (0..100).map(|i| 1.0 + (i % 7) as f64).collect();
        let w4 = wall_of(&dynamic_schedule(&costs, 4));
        let w8 = wall_of(&dynamic_schedule(&costs, 8));
        assert!(w8 <= w4 + 1e-12);
    }

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Small.pick(1, 2, 3), 1);
        assert_eq!(Scale::Paper.pick(1, 2, 3), 3);
    }

    #[test]
    fn series_json_types_cells() {
        let cols: Vec<String> = ["n", "label", "wall_s"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let rows = vec![
            vec!["8".to_string(), "static".to_string(), "0.25".to_string()],
            vec!["16".to_string(), "dynamic".to_string()],
        ];
        let json = series_json(&cols, &rows);
        assert_eq!(
            json,
            "[\n{\"n\":8,\"label\":\"static\",\"wall_s\":0.25},\n{\"n\":16,\"label\":\"dynamic\"}\n]\n"
        );
        // Must be accepted by the telemetry JSON parser.
        dtfe_telemetry::json::Json::parse(&json).expect("valid JSON");
    }
}

pub mod experiments;
