//! Shared experiment runner for the load-balancing figures (9, 10, 12):
//! run the full framework at several rank counts, balanced and unbalanced,
//! and report per-phase emulated wall times plus imbalance metrics.

use crate::{wall_of, SeriesWriter};
use dtfe_framework::eventsim::normalized_std;
use dtfe_framework::{run_distributed, FieldRequest, FrameworkConfig, RankReport};
use dtfe_geometry::{Aabb3, Vec3};

/// One (nranks, mode) measurement.
#[derive(Clone, Copy, Debug)]
pub struct ScalingPoint {
    pub nranks: usize,
    pub balanced: bool,
    /// Emulated per-phase wall times (max over ranks).
    pub partition: f64,
    pub model: f64,
    pub triangulate: f64,
    pub render: f64,
    pub sharing_wait: f64,
    /// Emulated end-to-end wall: sum of the phase maxima (phases are
    /// barrier-separated in the real framework).
    pub total: f64,
    /// Normalized std of per-rank compute time (Fig. 10's metric).
    pub imbalance: f64,
    pub fields: usize,
}

/// Run the framework at `nranks` and summarize.
pub fn measure(
    particles: &[Vec3],
    bounds: Aabb3,
    requests: &[FieldRequest],
    cfg: &FrameworkConfig,
    nranks: usize,
) -> (ScalingPoint, Vec<RankReport>) {
    let reports = run_distributed(nranks, particles, bounds, requests, cfg)
        .expect("fault-free benchmark run")
        .ranks;
    let collect = |f: &dyn Fn(&RankReport) -> f64| reports.iter().map(f).collect::<Vec<f64>>();
    let partition = collect(&|r| r.timings.partition);
    let model = collect(&|r| r.timings.model);
    let tri = collect(&|r| r.timings.triangulate);
    let render = collect(&|r| r.timings.render);
    let wait = collect(&|r| r.timings.sharing_wait);
    let compute: Vec<f64> = tri.iter().zip(&render).map(|(a, b)| a + b).collect();
    let point = ScalingPoint {
        nranks,
        balanced: cfg.balance,
        partition: wall_of(&partition),
        model: wall_of(&model),
        triangulate: wall_of(&tri),
        render: wall_of(&render),
        sharing_wait: wall_of(&wait),
        total: wall_of(&partition)
            + wall_of(&model)
            + wall_of(
                &compute
                    .iter()
                    .zip(&wait)
                    .map(|(c, w)| c + w)
                    .collect::<Vec<f64>>(),
            ),
        imbalance: normalized_std(&compute),
        fields: reports.iter().map(|r| r.fields_computed).sum(),
    };
    (point, reports)
}

/// Run the rank sweep for one field configuration, writing the figure's
/// time/speedup/imbalance series. Returns all the reports of the *largest
/// balanced* run (the Fig. 11 input).
pub fn scaling_sweep(
    name: &str,
    particles: &[Vec3],
    bounds: Aabb3,
    requests: &[FieldRequest],
    base_cfg: &FrameworkConfig,
    rank_counts: &[usize],
) -> Vec<RankReport> {
    let mut times = SeriesWriter::create(
        &format!("{name}_times"),
        "nranks,mode,partition_s,model_s,triangulate_s,grid_render_s,work_sharing_s,total_s",
    );
    let mut speed = SeriesWriter::create(&format!("{name}_speedup"), "nranks,mode,total_speedup");
    let mut imb = SeriesWriter::create(
        &format!("{name}_imbalance"),
        "nranks,balanced_norm_std,unbalanced_norm_std",
    );

    let mut last_reports = Vec::new();
    let mut base_total: Option<f64> = None;
    for &p in rank_counts {
        let mut row_imb = (0.0, 0.0);
        for balanced in [true, false] {
            let cfg = FrameworkConfig {
                balance: balanced,
                ..base_cfg.clone()
            };
            let (pt, reports) = measure(particles, bounds, requests, &cfg, p);
            assert_eq!(pt.fields, requests.len(), "lost work items");
            let mode = if balanced { "balanced" } else { "unbalanced" };
            times.row(&format!(
                "{p},{mode},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3}",
                pt.partition, pt.model, pt.triangulate, pt.render, pt.sharing_wait, pt.total
            ));
            let b = *base_total.get_or_insert(pt.total);
            speed.row(&format!("{p},{mode},{:.2}", b / pt.total));
            if balanced {
                row_imb.0 = pt.imbalance;
                last_reports = reports;
            } else {
                row_imb.1 = pt.imbalance;
            }
        }
        imb.row(&format!("{p},{:.3},{:.3}", row_imb.0, row_imb.1));
    }
    last_reports
}
