//! Figure 8: the DTFE vs TESS/DENSE field maps, their log-ratio map, and
//! the ratio histogram exposing the zero-order estimator's bias bump.
//!
//! ```text
//! cargo run --release -p dtfe-bench --bin fig8 [--scale small|medium|paper]
//! ```
//!
//! Writes `fig8_dtfe.pgm`, `fig8_dense.pgm`, `fig8_ratio.pgm`,
//! `fig8_ratio_hist.csv` under `target/experiments/`.

use dtfe_bench::{Scale, SeriesWriter};
use dtfe_core::density::{DtfeField, Mass};
use dtfe_core::grid::{histogram, GridSpec2};
use dtfe_core::io::{experiments_dir, write_pgm};
use dtfe_core::marching::{surface_density, MarchOptions};
use dtfe_geometry::Vec3;
use dtfe_nbody::datasets::planck_like;
use dtfe_tess::VoronoiDensity;

fn main() {
    let scale = Scale::from_args();
    let n_side = scale.pick(16usize, 32, 64);
    let ng = scale.pick(128usize, 256, 512);
    let box_len = 32.0;
    let particles = planck_like(n_side, box_len, 8);
    println!("# fig8: {} particles, {ng}² grids", particles.len());

    let field = DtfeField::build(&particles, Mass::Uniform(1.0)).expect("triangulation");
    let grid = GridSpec2::square(Vec3::splat(box_len / 2.0).xy(), box_len * 0.8, ng);

    // DTFE marching map.
    let sigma_dtfe = surface_density(&field, &grid, &MarchOptions::new().z_range(0.0, box_len));
    // TESS/DENSE zero-order map on the same grid (3D grid with nz = ng).
    let vd = VoronoiDensity::from_dtfe(&field);
    let sigma_dense = vd.surface_density(&grid, (0.0, box_len), ng, true);

    let dir = experiments_dir();
    write_pgm(&sigma_dtfe, &dir.join("fig8_dtfe.pgm"), true).unwrap();
    write_pgm(&sigma_dense, &dir.join("fig8_dense.pgm"), true).unwrap();
    let ratio = sigma_dtfe.log10_ratio(&sigma_dense);
    write_pgm(&ratio, &dir.join("fig8_ratio.pgm"), false).unwrap();

    // Ratio histogram (paper Fig. 8d: 1e0..1e7 counts over log10 ratio in
    // [-2, 2]).
    let bins = 80;
    let h = histogram(ratio.data.iter().copied(), -2.0, 2.0, bins);
    let mut w = SeriesWriter::create("fig8_ratio_hist", "log10_ratio,count");
    for (b, &c) in h.iter().enumerate() {
        let x = -2.0 + 4.0 * (b as f64 + 0.5) / bins as f64;
        w.row(&format!("{x:.3},{c}"));
    }
    drop(w);

    // Agreement summary: the paper reports the maps "mostly in agreement"
    // with a small bias bump from the differing interpolations.
    let finite: Vec<f64> = ratio
        .data
        .iter()
        .copied()
        .filter(|v| v.is_finite())
        .collect();
    let mean = finite.iter().sum::<f64>() / finite.len() as f64;
    let within = finite.iter().filter(|v| v.abs() < 0.25).count() as f64 / finite.len() as f64;
    let mut s = SeriesWriter::create("fig8_summary", "metric,value");
    s.row(&format!("mean_log10_ratio,{mean:.4}"));
    s.row(&format!("fraction_within_quarter_dex,{within:.4}"));
    s.row(&format!("mass_dtfe,{:.1}", sigma_dtfe.total_mass()));
    s.row(&format!("mass_dense,{:.1}", sigma_dense.total_mass()));
    println!("# expect: mean near 0, most cells within ±0.25 dex, a skewed tail (bias bump)");
}
