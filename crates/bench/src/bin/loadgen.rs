//! Open-loop load generator for `dtfe-service`, reporting
//! `target/experiments/BENCH_service.json`.
//!
//! Two phases against a zipf-popular tile workload:
//!
//! 1. **cold sweep** — one request per tile, serially, with an empty
//!    cache: every request pays (or would pay) a triangulation build, so
//!    the phase's p50 is the triangulation-included latency;
//! 2. **warm open-loop** — `--requests` requests at `--rate` req/s with
//!    zipf(`--zipf`) tile popularity. Arrivals follow a fixed schedule
//!    (open loop: a slow server grows queueing delay rather than slowing
//!    the arrival process), spread over enough sender threads that the
//!    schedule never starves.
//!
//! Modes: in-process (default; self-seeds a demo snapshot) or `--addr
//! HOST:PORT` against a running `dtfe-served` (the CI smoke run). Exits
//! nonzero if any request fails or the hit/miss counters fail to account
//! for every completed request.
//!
//! ```text
//! cargo run --release -p dtfe-bench --bin loadgen [-- --requests 400 --rate 100]
//! cargo run --release -p dtfe-bench --bin loadgen -- --addr 127.0.0.1:7433
//! ```

use dtfe_core::EstimatorKind;
use dtfe_framework::Decomposition;
use dtfe_geometry::{Aabb3, Vec3};
use dtfe_nbody::halos::{clustered_box, ClusteredBoxSpec};
use dtfe_nbody::snapshot::write_snapshot;
use dtfe_service::{Client, RenderRequest, Service, ServiceConfig};
use dtfe_telemetry::json::number;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

struct Args {
    addr: Option<String>,
    snapshots: PathBuf,
    snapshot_id: String,
    requests: usize,
    rate: f64,
    zipf: f64,
    tiles: usize,
    box_len: f64,
    field_len: f64,
    resolution: usize,
    particles: usize,
    senders: usize,
    seed: u64,
    /// Estimator mix: requests cycle through these backends
    /// deterministically (request `i` uses `estimators[i % len]`), so a
    /// `dtfe,psdtfe` mix exercises two cache-key populations at a fixed
    /// 50/50 ratio regardless of seed.
    estimators: Vec<EstimatorKind>,
    /// After the run, send the wire `Shutdown` to a `--addr` server (the
    /// SIGTERM-equivalent) and wait for its ack — the CI smoke run uses
    /// this to assert clean drain.
    shutdown: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--addr HOST:PORT] [--snapshots DIR] [--snapshot ID] [--requests N] \
         [--rate R] [--zipf S] [--tiles N] [--box-len L] [--field-len L] [--resolution N] \
         [--particles N] [--senders N] [--seed N] [--estimators dtfe,psdtfe,...] [--shutdown]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: None,
        snapshots: PathBuf::from("target/service-snapshots"),
        snapshot_id: "demo".into(),
        requests: 200,
        rate: 50.0,
        zipf: 1.1,
        tiles: 8,
        box_len: 32.0,
        field_len: 8.0,
        resolution: 64,
        particles: 120_000,
        senders: 8,
        seed: 42,
        estimators: vec![EstimatorKind::Dtfe],
        shutdown: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => args.addr = Some(val()),
            "--snapshots" => args.snapshots = PathBuf::from(val()),
            "--snapshot" => args.snapshot_id = val(),
            "--requests" => args.requests = val().parse().unwrap_or_else(|_| usage()),
            "--rate" => args.rate = val().parse().unwrap_or_else(|_| usage()),
            "--zipf" => args.zipf = val().parse().unwrap_or_else(|_| usage()),
            "--tiles" => args.tiles = val().parse().unwrap_or_else(|_| usage()),
            "--box-len" => args.box_len = val().parse().unwrap_or_else(|_| usage()),
            "--field-len" => args.field_len = val().parse().unwrap_or_else(|_| usage()),
            "--resolution" => args.resolution = val().parse().unwrap_or_else(|_| usage()),
            "--particles" => args.particles = val().parse().unwrap_or_else(|_| usage()),
            "--senders" => args.senders = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = val().parse().unwrap_or_else(|_| usage()),
            "--estimators" => {
                args.estimators = val()
                    .split(',')
                    .map(|s| EstimatorKind::parse_label(s.trim()).unwrap_or_else(|| usage()))
                    .collect();
                if args.estimators.is_empty() {
                    usage();
                }
            }
            "--shutdown" => args.shutdown = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    args
}

struct Xorshift(u64);

impl Xorshift {
    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        (self.0.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Zipf sampler over `0..k` (rank r has weight `1/(r+1)^s`).
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(k: usize, s: f64) -> Zipf {
        let mut cdf = Vec::with_capacity(k);
        let mut acc = 0.0;
        for r in 0..k {
            acc += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(acc);
        }
        for v in &mut cdf {
            *v /= acc;
        }
        Zipf { cdf }
    }

    fn sample(&self, rng: &mut Xorshift) -> usize {
        let u = rng.next_f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Either transport, one per sender thread.
enum Conn {
    InProc(Arc<Service>),
    Tcp(Client),
}

impl Conn {
    fn render(&mut self, req: &RenderRequest) -> Result<bool, String> {
        let resp = match self {
            Conn::InProc(svc) => svc.render(req),
            Conn::Tcp(client) => client.render(req),
        };
        match resp {
            Ok(r) => Ok(r.meta.cache_hit),
            Err(e) => Err(e.to_string()),
        }
    }
}

#[derive(Default)]
struct Tally {
    /// `(was_hit, latency_us)` per completed request.
    done: Vec<(bool, u64)>,
    errors: Vec<String>,
}

fn percentile_ms(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx] as f64 / 1e3
}

fn main() -> ExitCode {
    let args = parse_args();
    let bounds = Aabb3::new(Vec3::ZERO, Vec3::splat(args.box_len));
    let decomp = Decomposition::new(bounds, args.tiles);
    let tiles = decomp.num_ranks();

    // The service under test: remote, or started in-process over a
    // self-seeded demo snapshot.
    let service: Option<Arc<Service>> = if args.addr.is_some() {
        None
    } else {
        std::fs::create_dir_all(&args.snapshots).expect("create snapshot dir");
        let path = args.snapshots.join(format!("{}.snap", args.snapshot_id));
        if !path.is_file() {
            let (points, _) =
                clustered_box(&ClusteredBoxSpec::new(bounds, args.particles, 24, 1234));
            write_snapshot(&path, &[points], bounds).expect("write demo snapshot");
        }
        let mut cfg = ServiceConfig::new(args.field_len, args.resolution);
        cfg.tiles = args.tiles;
        cfg.telemetry = true;
        Some(Arc::new(
            Service::start(&args.snapshots, cfg).expect("start service"),
        ))
    };
    let connect = || -> Conn {
        match (&service, &args.addr) {
            (Some(svc), _) => Conn::InProc(svc.clone()),
            (None, Some(addr)) => Conn::Tcp(Client::connect(addr).expect("connect")),
            (None, None) => unreachable!(),
        }
    };

    // Request centres: the tile centre, nudged inward so jitter never
    // leaves the tile (tile popularity stays exactly zipf).
    let center_of = |tile: usize, rng: &mut Xorshift| -> Vec3 {
        let bx = decomp.rank_box(tile);
        let c = bx.center();
        let jitter = 0.25
            * (bx.hi.x - bx.lo.x)
                .min(bx.hi.y - bx.lo.y)
                .min(bx.hi.z - bx.lo.z);
        Vec3::new(
            c.x + (rng.next_f64() - 0.5) * jitter,
            c.y + (rng.next_f64() - 0.5) * jitter,
            c.z + (rng.next_f64() - 0.5) * jitter,
        )
    };

    // ---- Phase 1: cold sweep, one request per tile, serial.
    let mut rng = Xorshift(args.seed | 1);
    let mut conn = connect();
    let mut cold_us = Vec::with_capacity(tiles);
    let mut errors: Vec<String> = Vec::new();
    let mut hits = 0u64;
    let mut misses = 0u64;
    let est_counts: Vec<AtomicU64> = args.estimators.iter().map(|_| AtomicU64::new(0)).collect();
    let t_cold = Instant::now();
    for tile in 0..tiles {
        let est = args.estimators[tile % args.estimators.len()];
        let req = RenderRequest::new(&args.snapshot_id, center_of(tile, &mut rng)).estimator(est);
        let t0 = Instant::now();
        match conn.render(&req) {
            Ok(hit) => {
                cold_us.push(t0.elapsed().as_micros() as u64);
                est_counts[tile % args.estimators.len()].fetch_add(1, Ordering::Relaxed);
                if hit {
                    hits += 1;
                } else {
                    misses += 1;
                }
            }
            Err(e) => errors.push(format!("cold tile {tile} ({}): {e}", est.label())),
        }
    }
    let cold_wall = t_cold.elapsed().as_secs_f64();
    eprintln!(
        "# cold sweep: {tiles} tiles in {cold_wall:.2}s ({} ok, {} errors)",
        cold_us.len(),
        errors.len()
    );

    // ---- Phase 2: warm open-loop at fixed rate with zipf popularity.
    let zipf = Zipf::new(tiles, args.zipf);
    let schedule: Vec<(Duration, Vec3, EstimatorKind)> = {
        let mut rng = Xorshift(args.seed.wrapping_mul(0x9E3779B97F4A7C15) | 1);
        (0..args.requests)
            .map(|i| {
                let tile = zipf.sample(&mut rng);
                (
                    Duration::from_secs_f64(i as f64 / args.rate),
                    center_of(tile, &mut rng),
                    args.estimators[i % args.estimators.len()],
                )
            })
            .collect()
    };
    let schedule = Arc::new(schedule);
    let next = Arc::new(AtomicUsize::new(0));
    let tally = Arc::new(Mutex::new(Tally::default()));
    let lag_us = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let est_counts = Arc::new(est_counts);
    let n_estimators = args.estimators.len();
    let senders: Vec<_> = (0..args.senders.max(1))
        .map(|_| {
            let schedule = schedule.clone();
            let next = next.clone();
            let tally = tally.clone();
            let lag_us = lag_us.clone();
            let est_counts = est_counts.clone();
            let snapshot_id = args.snapshot_id.clone();
            let mut conn = connect();
            std::thread::spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some((at, center, est)) = schedule.get(i).copied() else {
                    return;
                };
                // Open loop: wait for the scheduled arrival, then record
                // how late the send actually is (sender starvation shows
                // up as lag, not as a silently lowered rate).
                let now = start.elapsed();
                if now < at {
                    std::thread::sleep(at - now);
                } else {
                    lag_us.fetch_add((now - at).as_micros() as u64, Ordering::Relaxed);
                }
                let req = RenderRequest::new(&snapshot_id, center).estimator(est);
                let t0 = Instant::now();
                let result = conn.render(&req);
                let us = t0.elapsed().as_micros() as u64;
                let mut t = tally.lock().unwrap();
                match result {
                    Ok(hit) => {
                        t.done.push((hit, us));
                        est_counts[i % n_estimators].fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => t
                        .errors
                        .push(format!("warm req {i} ({}): {e}", est.label())),
                }
            })
        })
        .collect();
    for h in senders {
        let _ = h.join();
    }
    let warm_wall = start.elapsed().as_secs_f64();
    let tally = Arc::try_unwrap(tally).ok().unwrap().into_inner().unwrap();
    errors.extend(tally.errors);

    for &(hit, _) in &tally.done {
        if hit {
            hits += 1;
        } else {
            misses += 1;
        }
    }
    let completed = cold_us.len() + tally.done.len();
    let accounted = hits + misses == completed as u64;

    let mut all_us: Vec<u64> = cold_us
        .iter()
        .copied()
        .chain(tally.done.iter().map(|&(_, us)| us))
        .collect();
    all_us.sort_unstable();
    let mut cold_sorted = cold_us.clone();
    cold_sorted.sort_unstable();
    let mut warm_hit_us: Vec<u64> = tally
        .done
        .iter()
        .filter(|&&(hit, _)| hit)
        .map(|&(_, us)| us)
        .collect();
    warm_hit_us.sort_unstable();

    let p50_ms = percentile_ms(&all_us, 0.50);
    let p99_ms = percentile_ms(&all_us, 0.99);
    let cold_p50_ms = percentile_ms(&cold_sorted, 0.50);
    let warm_p50_ms = percentile_ms(&warm_hit_us, 0.50);
    let throughput_rps = tally.done.len() as f64 / warm_wall.max(1e-9);
    let mean_lag_ms = if tally.done.is_empty() {
        0.0
    } else {
        lag_us.load(Ordering::Relaxed) as f64 / 1e3 / args.requests as f64
    };

    let stats_json = match (&service, &args.addr) {
        (Some(svc), _) => svc.metrics_json(),
        (None, Some(addr)) => Client::connect(addr)
            .ok()
            .and_then(|mut c| c.stats().ok())
            .unwrap_or_else(|| "null".into()),
        (None, None) => unreachable!(),
    };

    let est_json = args
        .estimators
        .iter()
        .zip(est_counts.iter())
        .map(|(e, c)| format!("\"{e}\":{}", c.load(Ordering::Relaxed)))
        .collect::<Vec<_>>()
        .join(",");
    let out = format!(
        "{{\"bench\":\"service\",\"mode\":\"{}\",\"tiles\":{tiles},\"requests\":{},\
         \"rate\":{},\"zipf\":{},\"completed\":{completed},\"errors\":{},\
         \"hits\":{hits},\"misses\":{misses},\"accounted\":{accounted},\
         \"estimators\":{{{est_json}}},\
         \"throughput_rps\":{},\"p50_ms\":{},\"p99_ms\":{},\
         \"cold_p50_ms\":{},\"warm_p50_ms\":{},\"mean_lag_ms\":{},\"server\":{stats_json}}}\n",
        if args.addr.is_some() { "tcp" } else { "inproc" },
        args.requests,
        number(args.rate),
        number(args.zipf),
        errors.len(),
        number(throughput_rps),
        number(p50_ms),
        number(p99_ms),
        number(cold_p50_ms),
        number(warm_p50_ms),
        number(mean_lag_ms),
    );
    let dir = dtfe_core::io::experiments_dir();
    let path = dir.join("BENCH_service.json");
    std::fs::write(&path, &out).expect("write BENCH_service.json");
    dtfe_telemetry::json::Json::parse(&out).expect("valid bench report JSON");

    println!("# service -> {}", path.display());
    println!(
        "requests={completed} errors={} | throughput {throughput_rps:.1} rps | \
         p50 {p50_ms:.2} ms p99 {p99_ms:.2} ms | cold p50 {cold_p50_ms:.2} ms \
         warm p50 {warm_p50_ms:.2} ms ({:.1}x) | hits {hits} misses {misses} | lag {mean_lag_ms:.2} ms",
        errors.len(),
        cold_p50_ms / warm_p50_ms.max(1e-9),
    );
    for e in errors.iter().take(5) {
        eprintln!("error: {e}");
    }

    if let Some(svc) = service {
        // In-process mode owns the service: drain before reporting success
        // so the run also smoke-tests shutdown.
        svc.drain();
    } else if args.shutdown {
        let addr = args.addr.as_deref().unwrap();
        match Client::connect(addr)
            .map_err(|e| e.to_string())
            .and_then(|mut c| c.shutdown().map_err(|e| e.to_string()))
        {
            Ok(()) => eprintln!("# server acked shutdown"),
            Err(e) => {
                eprintln!("error: shutdown: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if !errors.is_empty() || !accounted {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
