//! Open-loop load generator for `dtfe-service`, reporting
//! `target/experiments/BENCH_service.json`.
//!
//! Two phases against a zipf-popular tile workload:
//!
//! 1. **cold sweep** — one request per tile, serially, with an empty
//!    cache: every request pays (or would pay) a triangulation build, so
//!    the phase's p50 is the triangulation-included latency;
//! 2. **warm open-loop** — `--requests` requests at `--rate` req/s with
//!    zipf(`--zipf`) tile popularity. Arrivals follow a fixed schedule
//!    (open loop: a slow server grows queueing delay rather than slowing
//!    the arrival process), spread over enough sender threads that the
//!    schedule never starves.
//!
//! Modes: in-process (default; self-seeds a demo snapshot), `--addr
//! HOST:PORT` against a running `dtfe-served` (the CI smoke run), or
//! `--chaos SEED` — spin up a local TCP server behind a seeded
//! [`ChaosProxy`] and drive all traffic through the injected faults.
//! Exits nonzero if any request fails (faults-off modes), if the
//! hit/miss counters fail to account for every completed request, or —
//! chaos mode's reason to exist — if a client ever **accepts a corrupt
//! payload** (responses are checked bit-for-bit against unjittered
//! per-tile references) or the battered server fails its clean drain.
//!
//! `--client retry|naive` selects the wire client for `--addr`/`--chaos`
//! runs: the naive [`Client`] fails a request on the first transport
//! error (reconnecting for the next one), the [`ResilientClient`]
//! retries with jittered backoff — run both under the same `--chaos`
//! seed to compare tail latency and error rates.
//!
//! Observability knobs (PR 8):
//!
//! * `--trace` samples every request (deterministic per-request trace
//!   ids), so server-side per-stage timings come back in `ResponseMeta`
//!   and sampled requests land in the flight recorder. The report then
//!   carries per-stage (admission/queue/build/render) latency aggregates.
//! * `--slo p99=MS,error_rate=FRAC` turns the run into a gate: the
//!   process exits nonzero if overall p99 exceeds `MS` milliseconds or
//!   the request error rate exceeds `FRAC`. Either key may be omitted.
//! * `--dump-out FILE` / `--stats-out FILE` fetch the server's flight
//!   recorder dump (Chrome-trace JSON) and stats document after the run
//!   (directly, bypassing the fault proxy in chaos mode) — CI feeds
//!   these to `trace_check`.
//! * `--ab-telemetry` runs a closed-loop in-process A/B leg before the
//!   main phases: the same warm render timed with telemetry disabled vs
//!   enabled. The delta lands in the report and the run fails if the
//!   enabled path costs more than 50% extra — the "disabled telemetry
//!   is (near) free, enabled telemetry is cheap" claim, enforced.
//!
//! ```text
//! cargo run --release -p dtfe-bench --bin loadgen [-- --requests 400 --rate 100]
//! cargo run --release -p dtfe-bench --bin loadgen -- --addr 127.0.0.1:7433
//! cargo run --release -p dtfe-bench --bin loadgen -- --chaos 42 --client retry
//! cargo run --release -p dtfe-bench --bin loadgen -- --trace --slo p99=500,error_rate=0.01
//! ```

use dtfe_cluster::{ClusterClient, ClusterConfig, ClusterNode};
use dtfe_core::EstimatorKind;
use dtfe_framework::Decomposition;
use dtfe_geometry::{Aabb3, Vec3};
use dtfe_nbody::halos::{clustered_box, ClusteredBoxSpec};
use dtfe_nbody::snapshot::write_snapshot;
use dtfe_service::{
    ChaosProxy, Client, ClientConfig, RenderRequest, RenderResponse, ResilientClient, Service,
    ServiceConfig, SocketFaultPlan, SocketFaultRule, TcpServer, TraceContext,
};
use dtfe_telemetry::json::number;
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

struct Args {
    addr: Option<String>,
    snapshots: PathBuf,
    snapshot_id: String,
    requests: usize,
    rate: f64,
    zipf: f64,
    tiles: usize,
    box_len: f64,
    field_len: f64,
    resolution: usize,
    particles: usize,
    senders: usize,
    seed: u64,
    /// Estimator mix: requests cycle through these backends
    /// deterministically (request `i` uses `estimators[i % len]`), so a
    /// `dtfe,psdtfe` mix exercises two cache-key populations at a fixed
    /// 50/50 ratio regardless of seed.
    estimators: Vec<EstimatorKind>,
    /// After the run, send the wire `Shutdown` to a `--addr` server (the
    /// SIGTERM-equivalent) and wait for its ack — the CI smoke run uses
    /// this to assert clean drain.
    shutdown: bool,
    /// Chaos mode: start a local TCP server behind a fault-injecting
    /// proxy seeded with this value and route all traffic through it.
    chaos: Option<u64>,
    /// Wire client for `--addr`/`--chaos` runs.
    client: ClientKind,
    /// Report path override (default `target/experiments/BENCH_service.json`).
    out: Option<PathBuf>,
    /// Sample a trace on every request (per-stage breakdowns + flight
    /// recorder entries on the server).
    trace: bool,
    /// SLO gate: exit nonzero when breached.
    slo: Option<Slo>,
    /// Write the server's flight-recorder dump (Chrome-trace JSON) here.
    dump_out: Option<PathBuf>,
    /// Write the server's stats document JSON here.
    stats_out: Option<PathBuf>,
    /// Run the telemetry-off vs telemetry-on A/B leg.
    ab_telemetry: bool,
    /// Boot an N-shard in-process cluster and drive all traffic through
    /// the ring-aware [`ClusterClient`] (0 = off).
    cluster: usize,
    /// Drive an already-running cluster: `addrs[i]` is shard `i`'s
    /// listener (the CI job boots `dtfe-clusterd` and passes these).
    cluster_addrs: Vec<String>,
    /// Kill this shard at the warm phase's midpoint: in-process clusters
    /// stop the shard's listener and gossip, external ones get a wire
    /// `Shutdown`. The run then exercises rehash + failover under load.
    kill_shard: Option<usize>,
}

/// `--slo p99=MS,error_rate=FRAC`; either key may be omitted.
#[derive(Clone, Copy, Default)]
struct Slo {
    p99_ms: Option<f64>,
    error_rate: Option<f64>,
}

impl Slo {
    fn parse(spec: &str) -> Option<Slo> {
        let mut slo = Slo::default();
        for part in spec.split(',') {
            let (key, value) = part.split_once('=')?;
            let value: f64 = value.trim().parse().ok()?;
            if !value.is_finite() || value < 0.0 {
                return None;
            }
            match key.trim() {
                "p99" => slo.p99_ms = Some(value),
                "error_rate" => slo.error_rate = Some(value),
                _ => return None,
            }
        }
        (slo.p99_ms.is_some() || slo.error_rate.is_some()).then_some(slo)
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum ClientKind {
    Naive,
    Retry,
}

impl ClientKind {
    fn label(self) -> &'static str {
        match self {
            ClientKind::Naive => "naive",
            ClientKind::Retry => "retry",
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--addr HOST:PORT] [--snapshots DIR] [--snapshot ID] [--requests N] \
         [--rate R] [--zipf S] [--tiles N] [--box-len L] [--field-len L] [--resolution N] \
         [--particles N] [--senders N] [--seed N] [--estimators dtfe,psdtfe,...] [--shutdown] \
         [--chaos SEED] [--client naive|retry] [--out FILE] [--trace] \
         [--slo p99=MS,error_rate=FRAC] [--dump-out FILE] [--stats-out FILE] [--ab-telemetry] \
         [--cluster N] [--cluster-addrs A,B,C] [--kill-shard I]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: None,
        snapshots: PathBuf::from("target/service-snapshots"),
        snapshot_id: "demo".into(),
        requests: 200,
        rate: 50.0,
        zipf: 1.1,
        tiles: 8,
        box_len: 32.0,
        field_len: 8.0,
        resolution: 64,
        particles: 120_000,
        senders: 8,
        seed: 42,
        estimators: vec![EstimatorKind::Dtfe],
        shutdown: false,
        chaos: None,
        client: ClientKind::Naive,
        out: None,
        trace: false,
        slo: None,
        dump_out: None,
        stats_out: None,
        ab_telemetry: false,
        cluster: 0,
        cluster_addrs: Vec::new(),
        kill_shard: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => args.addr = Some(val()),
            "--snapshots" => args.snapshots = PathBuf::from(val()),
            "--snapshot" => args.snapshot_id = val(),
            "--requests" => args.requests = val().parse().unwrap_or_else(|_| usage()),
            "--rate" => args.rate = val().parse().unwrap_or_else(|_| usage()),
            "--zipf" => args.zipf = val().parse().unwrap_or_else(|_| usage()),
            "--tiles" => args.tiles = val().parse().unwrap_or_else(|_| usage()),
            "--box-len" => args.box_len = val().parse().unwrap_or_else(|_| usage()),
            "--field-len" => args.field_len = val().parse().unwrap_or_else(|_| usage()),
            "--resolution" => args.resolution = val().parse().unwrap_or_else(|_| usage()),
            "--particles" => args.particles = val().parse().unwrap_or_else(|_| usage()),
            "--senders" => args.senders = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = val().parse().unwrap_or_else(|_| usage()),
            "--estimators" => {
                args.estimators = val()
                    .split(',')
                    .map(|s| EstimatorKind::parse_label(s.trim()).unwrap_or_else(|| usage()))
                    .collect();
                if args.estimators.is_empty() {
                    usage();
                }
            }
            "--shutdown" => args.shutdown = true,
            "--chaos" => args.chaos = Some(val().parse().unwrap_or_else(|_| usage())),
            "--client" => {
                args.client = match val().as_str() {
                    "naive" => ClientKind::Naive,
                    "retry" => ClientKind::Retry,
                    _ => usage(),
                }
            }
            "--out" => args.out = Some(PathBuf::from(val())),
            "--trace" => args.trace = true,
            "--slo" => args.slo = Some(Slo::parse(&val()).unwrap_or_else(|| usage())),
            "--dump-out" => args.dump_out = Some(PathBuf::from(val())),
            "--stats-out" => args.stats_out = Some(PathBuf::from(val())),
            "--ab-telemetry" => args.ab_telemetry = true,
            "--cluster" => args.cluster = val().parse().unwrap_or_else(|_| usage()),
            "--cluster-addrs" => {
                args.cluster_addrs = val().split(',').map(|s| s.trim().to_string()).collect();
                if args.cluster_addrs.is_empty() {
                    usage();
                }
            }
            "--kill-shard" => args.kill_shard = Some(val().parse().unwrap_or_else(|_| usage())),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    args
}

struct Xorshift(u64);

impl Xorshift {
    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        (self.0.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Zipf sampler over `0..k` (rank r has weight `1/(r+1)^s`).
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(k: usize, s: f64) -> Zipf {
        let mut cdf = Vec::with_capacity(k);
        let mut acc = 0.0;
        for r in 0..k {
            acc += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(acc);
        }
        for v in &mut cdf {
            *v /= acc;
        }
        Zipf { cdf }
    }

    fn sample(&self, rng: &mut Xorshift) -> usize {
        let u = rng.next_f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Either transport, one per sender thread. The naive TCP variant
/// reconnects lazily after a failed request (one error per fault, no
/// retries); the resilient variant carries its own retry discipline.
enum Conn {
    InProc(Arc<Service>),
    Tcp {
        client: Option<Client>,
        addr: String,
    },
    Resilient(Box<ResilientClient>),
    Cluster(Box<ClusterClient>),
}

impl Conn {
    /// Render; the second value is the serving shard (cluster mode only).
    fn render(&mut self, req: &RenderRequest) -> Result<(RenderResponse, Option<usize>), String> {
        match self {
            Conn::InProc(svc) => svc
                .render(req)
                .map(|r| (r, None))
                .map_err(|e| e.to_string()),
            Conn::Tcp { client, addr } => {
                if client.is_none() {
                    *client =
                        Some(Client::connect(addr.as_str()).map_err(|e| format!("connect: {e}"))?);
                }
                let result = client.as_mut().unwrap().render(req);
                if result.is_err() {
                    // The connection may be mid-frame garbage now; a naive
                    // client's only move is to throw it away.
                    *client = None;
                }
                result.map(|r| (r, None)).map_err(|e| e.to_string())
            }
            Conn::Resilient(client) => client
                .render(req)
                .map(|r| (r, None))
                .map_err(|e| e.to_string()),
            Conn::Cluster(client) => client
                .render(req)
                .map(|(r, shard)| (r, Some(shard)))
                .map_err(|e| e.to_string()),
        }
    }

    /// `(retries, hedges, reconnects, giveups)` for the report.
    fn client_stats(&self) -> (u64, u64, u64, u64) {
        match self {
            Conn::Resilient(client) => (
                client.stats.retries.load(Ordering::Relaxed),
                client.stats.hedges.load(Ordering::Relaxed),
                client.stats.reconnects.load(Ordering::Relaxed),
                client.stats.giveups.load(Ordering::Relaxed),
            ),
            _ => (0, 0, 0, 0),
        }
    }
}

/// The all-kinds fault mix for `--chaos` runs: every injector fires with
/// equal probability, totalling 0.35 per frame, so a bounded-retry client
/// usually gets through while every failure mode is exercised.
fn chaos_rule() -> SocketFaultRule {
    SocketFaultRule::all()
        .drop(0.05)
        .delay(0.05, Duration::from_millis(5))
        .truncate(0.05)
        .split(0.05)
        .stall(0.05, Duration::from_millis(30))
        .reset(0.05)
        .bitflip(0.05)
}

/// One in-process cluster shard and the handles needed to kill it.
struct InprocShard {
    node: Arc<ClusterNode>,
    stop: Arc<AtomicBool>,
    serve: Option<std::thread::JoinHandle<()>>,
    gossip: Option<std::thread::JoinHandle<()>>,
}

impl InprocShard {
    /// Stop accepting, drain, drop the listener; gossip goes silent so
    /// the survivors declare this shard dead and rehash its arcs.
    fn kill(&mut self) {
        self.node.stop_gossip();
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.serve.take() {
            let _ = h.join();
        }
        if let Some(h) = self.gossip.take() {
            let _ = h.join();
        }
    }
}

/// The cluster under test: in-process shards (with kill handles) or just
/// the listener addresses of an external `dtfe-clusterd`.
struct ClusterCtx {
    addrs: Vec<std::net::SocketAddr>,
    inproc: Vec<InprocShard>,
}

/// Boot an N-shard in-process cluster over the seeded snapshot directory:
/// bind ephemeral listeners first, then install the membership and start
/// gossip. Shard 0 owns the process-global telemetry recorder.
fn boot_cluster(args: &Args) -> ClusterCtx {
    let mut addrs = Vec::new();
    let mut pending = Vec::new();
    for i in 0..args.cluster {
        let mut cfg = ServiceConfig::new(args.field_len, args.resolution);
        cfg.tiles = args.tiles;
        cfg.telemetry = i == 0;
        cfg.read_timeout = Some(Duration::from_millis(500));
        cfg.write_timeout = Some(Duration::from_millis(500));
        let service = Arc::new(Service::start(&args.snapshots, cfg).expect("start shard service"));
        let node = ClusterNode::new(
            service,
            ClusterConfig {
                shard: i as u32,
                ..ClusterConfig::default()
            },
        );
        let handler: Arc<dyn dtfe_service::RequestHandler> = node.clone();
        let server = TcpServer::bind_with(handler, ("127.0.0.1", 0)).expect("bind shard");
        addrs.push(server.local_addr().expect("shard addr"));
        pending.push((node, server));
    }
    let inproc = pending
        .into_iter()
        .map(|(node, server)| {
            node.configure_peers(addrs.clone());
            let gossip = node.start_gossip();
            let stop = server.stop_handle();
            let serve = std::thread::spawn(move || server.serve());
            InprocShard {
                node,
                stop,
                serve: Some(serve),
                gossip: Some(gossip),
            }
        })
        .collect();
    ClusterCtx { addrs, inproc }
}

#[derive(Default)]
struct Tally {
    /// `(was_hit, latency_us)` per completed request.
    done: Vec<(bool, u64)>,
    /// `(serving_shard, latency_us)` per completed request (cluster mode).
    per_shard: Vec<(usize, u64)>,
    /// `[admission, queue, build, render]` µs per completed request
    /// (server-reported, nonzero breakdowns only arrive on v4 traced
    /// responses but the fields default to 0 either way).
    stages: Vec<[u64; 4]>,
    errors: Vec<String>,
}

const STAGE_NAMES: [&str; 4] = ["admission", "queue", "build", "render"];

fn stage_row(resp: &RenderResponse) -> [u64; 4] {
    let m = &resp.meta;
    [m.admission_us, m.queue_us, m.build_us, m.render_us]
}

/// Per-stage aggregate JSON: `{"admission":{"mean_ms":..,"p50_ms":..,
/// "p99_ms":..},...}` over every completed request.
fn stages_json(rows: &[[u64; 4]]) -> String {
    let fields = STAGE_NAMES
        .iter()
        .enumerate()
        .map(|(s, name)| {
            let mut us: Vec<u64> = rows.iter().map(|r| r[s]).collect();
            us.sort_unstable();
            let mean_ms = if us.is_empty() {
                0.0
            } else {
                us.iter().sum::<u64>() as f64 / 1e3 / us.len() as f64
            };
            format!(
                "\"{name}\":{{\"mean_ms\":{},\"p50_ms\":{},\"p99_ms\":{}}}",
                number(mean_ms),
                number(percentile_ms(&us, 0.50)),
                number(percentile_ms(&us, 0.99)),
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!("{{{fields}}}")
}

/// Deterministic sampled trace id for request `i` of a run (phase 0 =
/// cold, 1 = warm), so reruns at the same seed produce identical ids.
fn trace_for(seed: u64, phase: u64, i: u64) -> TraceContext {
    let mut id = [0u8; 16];
    id[..8].copy_from_slice(&(seed ^ phase.rotate_left(32)).to_le_bytes());
    id[8..].copy_from_slice(&i.wrapping_mul(0x9E3779B97F4A7C15).to_le_bytes());
    TraceContext::sampled(id)
}

fn percentile_ms(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx] as f64 / 1e3
}

/// The `--ab-telemetry` leg: the same warm (cache-hit) render timed
/// closed-loop against two fresh in-process services, telemetry disabled
/// vs enabled. Runs before the main service exists so the "off" leg truly
/// exercises the disabled-recorder fast path (no global recorder
/// installed). Returns `(off_ms, on_ms)` mean per-render latency.
fn telemetry_ab_leg(args: &Args, bounds: Aabb3) -> (f64, f64) {
    let leg = |telemetry: bool| -> f64 {
        let mut cfg = ServiceConfig::new(args.field_len, args.resolution);
        cfg.tiles = args.tiles;
        cfg.telemetry = telemetry;
        let svc = Service::start(&args.snapshots, cfg).expect("start A/B service");
        let req = RenderRequest::new(&args.snapshot_id, bounds.center());
        svc.render(&req).expect("A/B warm render");
        let iters = 50;
        let t0 = Instant::now();
        for _ in 0..iters {
            svc.render(&req).expect("A/B render");
        }
        let mean_ms = t0.elapsed().as_secs_f64() * 1e3 / iters as f64;
        svc.drain();
        mean_ms
    };
    // Off first: the on-leg's recorder uninstalls on drop either way, but
    // this order never even transiently installs one before the off leg.
    let off_ms = leg(false);
    let on_ms = leg(true);
    (off_ms, on_ms)
}

fn main() -> ExitCode {
    let args = parse_args();
    if args.chaos.is_some() && args.addr.is_some() {
        eprintln!("--chaos starts its own local server; it conflicts with --addr");
        return ExitCode::from(2);
    }
    let cluster_on = args.cluster > 0 || !args.cluster_addrs.is_empty();
    if cluster_on && (args.addr.is_some() || args.chaos.is_some()) {
        eprintln!("--cluster/--cluster-addrs conflict with --addr and --chaos");
        return ExitCode::from(2);
    }
    if args.cluster > 0 && !args.cluster_addrs.is_empty() {
        eprintln!("--cluster boots its own shards; it conflicts with --cluster-addrs");
        return ExitCode::from(2);
    }
    let nshards = if args.cluster > 0 {
        args.cluster
    } else {
        args.cluster_addrs.len()
    };
    if args.kill_shard.is_some_and(|k| !cluster_on || k >= nshards) {
        eprintln!("--kill-shard needs a cluster and a shard index inside it");
        return ExitCode::from(2);
    }
    let bounds = Aabb3::new(Vec3::ZERO, Vec3::splat(args.box_len));
    let decomp = Decomposition::new(bounds, args.tiles);
    let tiles = decomp.num_ranks();

    // Self-seed the demo snapshot for any mode that runs a local service.
    if args.addr.is_none() || args.ab_telemetry {
        std::fs::create_dir_all(&args.snapshots).expect("create snapshot dir");
        let path = args.snapshots.join(format!("{}.snap", args.snapshot_id));
        if !path.is_file() {
            let (points, _) =
                clustered_box(&ClusteredBoxSpec::new(bounds, args.particles, 24, 1234));
            write_snapshot(&path, &[points], bounds).expect("write demo snapshot");
        }
    }

    // A/B leg first: it must run while no global telemetry recorder is
    // installed, which stops being true once the main in-process service
    // starts.
    let ab = args.ab_telemetry.then(|| telemetry_ab_leg(&args, bounds));
    if let Some((off_ms, on_ms)) = ab {
        eprintln!(
            "# ab-telemetry: warm render off {off_ms:.3} ms, on {on_ms:.3} ms \
             ({:+.1}%)",
            (on_ms / off_ms.max(1e-9) - 1.0) * 100.0
        );
    }

    // Cluster mode: boot in-process shards (or adopt external listeners),
    // plus a single-node *reference* service over the same snapshot — the
    // bit-identity oracle every cluster response is checked against.
    let mut cluster_ctx: Option<ClusterCtx> = if args.cluster > 0 {
        Some(boot_cluster(&args))
    } else if !args.cluster_addrs.is_empty() {
        let addrs = args
            .cluster_addrs
            .iter()
            .map(|a| {
                use std::net::ToSocketAddrs;
                a.to_socket_addrs()
                    .ok()
                    .and_then(|mut it| it.next())
                    .unwrap_or_else(|| {
                        eprintln!("bad cluster address {a}");
                        std::process::exit(2)
                    })
            })
            .collect();
        Some(ClusterCtx {
            addrs,
            inproc: Vec::new(),
        })
    } else {
        None
    };
    let cluster_reference: Option<Service> = cluster_on.then(|| {
        let mut cfg = ServiceConfig::new(args.field_len, args.resolution);
        cfg.tiles = args.tiles;
        Service::start(&args.snapshots, cfg).expect("start reference service")
    });

    // The service under test: remote, or started in-process over the
    // seeded demo snapshot.
    let service: Option<Arc<Service>> = if args.addr.is_some() || cluster_on {
        None
    } else {
        let mut cfg = ServiceConfig::new(args.field_len, args.resolution);
        cfg.tiles = args.tiles;
        cfg.telemetry = true;
        if args.chaos.is_some() {
            // Chaos-severed connections must not pin handler threads for
            // the default 10s when the run tears down.
            cfg.read_timeout = Some(Duration::from_millis(500));
            cfg.write_timeout = Some(Duration::from_millis(500));
        }
        Some(Arc::new(
            Service::start(&args.snapshots, cfg).expect("start service"),
        ))
    };
    // Chaos topology: in-proc service → local TCP server → fault proxy;
    // every client connects through the proxy, the clean-drain Shutdown
    // at the end goes to the server directly.
    let mut chaos_ctx: Option<(
        ChaosProxy,
        std::net::SocketAddr,
        std::thread::JoinHandle<()>,
    )> = None;
    let wire_addr: Option<String> = if let Some(chaos_seed) = args.chaos {
        let svc = service.clone().expect("chaos mode is in-proc");
        let server = TcpServer::bind(svc, ("127.0.0.1", 0)).expect("bind chaos server");
        let server_addr = server.local_addr().expect("server addr");
        let serve = std::thread::spawn(move || server.serve());
        let plan = SocketFaultPlan::seeded(chaos_seed).rule(chaos_rule());
        let proxy = ChaosProxy::start(plan, server_addr).expect("start chaos proxy");
        let addr = proxy.addr().to_string();
        chaos_ctx = Some((proxy, server_addr, serve));
        Some(addr)
    } else {
        args.addr.clone()
    };
    let retry_cfg = ClientConfig {
        connect_timeout: Duration::from_secs(1),
        read_timeout: Some(Duration::from_secs(5)),
        write_timeout: Some(Duration::from_secs(5)),
        max_retries: 5,
        backoff_base: Duration::from_millis(5),
        backoff_max: Duration::from_millis(200),
        hedge_after: None,
        seed: args.seed ^ args.chaos.unwrap_or(0).rotate_left(17),
        sample_traces: args.trace,
    };
    let connect = || -> Conn {
        if let Some(ctx) = &cluster_ctx {
            let mut client =
                ClusterClient::new(&ctx.addrs, 128, 2, retry_cfg).expect("connect cluster client");
            client.register_snapshot(args.snapshot_id.clone(), bounds, args.tiles);
            return Conn::Cluster(Box::new(client));
        }
        match (&wire_addr, &service) {
            (Some(addr), _) => match args.client {
                ClientKind::Naive => Conn::Tcp {
                    client: None,
                    addr: addr.clone(),
                },
                ClientKind::Retry => Conn::Resilient(Box::new(
                    ResilientClient::new(addr.as_str(), retry_cfg).expect("resolve addr"),
                )),
            },
            (None, Some(svc)) => Conn::InProc(svc.clone()),
            (None, None) => unreachable!(),
        }
    };

    // Request centres: the tile centre, nudged inward so jitter never
    // leaves the tile (tile popularity stays exactly zipf). Chaos and
    // cluster modes drop the jitter entirely — each (tile, estimator)
    // pair then maps to one exact request, so every response can be
    // checked bit-for-bit against a reference map. The rng draws are
    // consumed either way to keep schedules identical across modes at the
    // same seed.
    let chaos_jitter = if args.chaos.is_some() || cluster_on {
        0.0
    } else {
        0.25
    };
    let center_of = |tile: usize, rng: &mut Xorshift| -> Vec3 {
        let bx = decomp.rank_box(tile);
        let c = bx.center();
        let jitter = chaos_jitter
            * (bx.hi.x - bx.lo.x)
                .min(bx.hi.y - bx.lo.y)
                .min(bx.hi.z - bx.lo.z);
        Vec3::new(
            c.x + (rng.next_f64() - 0.5) * jitter,
            c.y + (rng.next_f64() - 0.5) * jitter,
            c.z + (rng.next_f64() - 0.5) * jitter,
        )
    };

    // Reference map: every (tile, estimator) request rendered once by a
    // single-node in-process service (no network, no sharding). Any wire
    // response that disagrees with its reference is a *silently accepted
    // corruption* — the outcome chaos mode exists to rule out, and in
    // cluster mode the proof that sharding, rebalances, and failover
    // never change a single served byte.
    let references: Arc<HashMap<String, Vec<u64>>> = Arc::new(
        if let Some(svc) = cluster_reference
            .as_ref()
            .or_else(|| service.as_deref().filter(|_| args.chaos.is_some()))
        {
            let mut rng = Xorshift(args.seed | 1);
            let mut map = HashMap::new();
            for tile in 0..tiles {
                for est in &args.estimators {
                    let req = RenderRequest::new(&args.snapshot_id, center_of(tile, &mut rng))
                        .estimator(*est);
                    let resp = svc.render(&req).expect("reference render");
                    map.insert(
                        format!("{tile}:{}", est.label()),
                        resp.data.iter().map(|v| v.to_bits()).collect(),
                    );
                }
            }
            map
        } else {
            HashMap::new()
        },
    );
    // The reference service's job is done; release its workers before the
    // load starts.
    if let Some(r) = &cluster_reference {
        r.drain();
    }
    let corrupt = Arc::new(AtomicU64::new(0));
    let degraded_served = Arc::new(AtomicU64::new(0));
    // True when the response matches its reference (or there is none).
    let verify = |tile: usize, est: EstimatorKind, resp: &RenderResponse| -> bool {
        let Some(expect) = references.get(&format!("{tile}:{}", est.label())) else {
            return true;
        };
        if resp.meta.degraded {
            return true; // flagged stale data is honest, not corrupt
        }
        resp.data.len() == expect.len()
            && resp
                .data
                .iter()
                .zip(expect)
                .all(|(v, &bits)| v.to_bits() == bits)
    };

    // ---- Phase 1: cold sweep, one request per tile, serial.
    let mut rng = Xorshift(args.seed | 1);
    let mut conn = connect();
    let mut cold_us = Vec::with_capacity(tiles);
    let mut cold_stages: Vec<[u64; 4]> = Vec::with_capacity(tiles);
    let mut cold_per_shard: Vec<(usize, u64)> = Vec::new();
    let mut errors: Vec<String> = Vec::new();
    let mut hits = 0u64;
    let mut misses = 0u64;
    let est_counts: Vec<AtomicU64> = args.estimators.iter().map(|_| AtomicU64::new(0)).collect();
    let t_cold = Instant::now();
    for tile in 0..tiles {
        let est = args.estimators[tile % args.estimators.len()];
        let mut req =
            RenderRequest::new(&args.snapshot_id, center_of(tile, &mut rng)).estimator(est);
        if args.trace {
            req = req.traced(trace_for(args.seed, 0, tile as u64));
        }
        let t0 = Instant::now();
        match conn.render(&req) {
            Ok((resp, shard)) => {
                let us = t0.elapsed().as_micros() as u64;
                cold_us.push(us);
                cold_stages.push(stage_row(&resp));
                if let Some(shard) = shard {
                    cold_per_shard.push((shard, us));
                }
                est_counts[tile % args.estimators.len()].fetch_add(1, Ordering::Relaxed);
                if resp.meta.cache_hit {
                    hits += 1;
                } else {
                    misses += 1;
                }
                if resp.meta.degraded {
                    degraded_served.fetch_add(1, Ordering::Relaxed);
                }
                if !verify(tile, est, &resp) {
                    corrupt.fetch_add(1, Ordering::Relaxed);
                    errors.push(format!(
                        "cold tile {tile} ({}): CORRUPT payload",
                        est.label()
                    ));
                }
            }
            Err(e) => errors.push(format!("cold tile {tile} ({}): {e}", est.label())),
        }
    }
    let cold_wall = t_cold.elapsed().as_secs_f64();
    let cold_client_stats = conn.client_stats();
    drop(conn); // close the cold connection before teardown accounting
    eprintln!(
        "# cold sweep: {tiles} tiles in {cold_wall:.2}s ({} ok, {} errors)",
        cold_us.len(),
        errors.len()
    );

    // ---- Phase 2: warm open-loop at fixed rate with zipf popularity.
    let zipf = Zipf::new(tiles, args.zipf);
    let schedule: Vec<(Duration, usize, Vec3, EstimatorKind)> = {
        let mut rng = Xorshift(args.seed.wrapping_mul(0x9E3779B97F4A7C15) | 1);
        (0..args.requests)
            .map(|i| {
                let tile = zipf.sample(&mut rng);
                (
                    Duration::from_secs_f64(i as f64 / args.rate),
                    tile,
                    center_of(tile, &mut rng),
                    args.estimators[i % args.estimators.len()],
                )
            })
            .collect()
    };
    let schedule = Arc::new(schedule);
    let next = Arc::new(AtomicUsize::new(0));
    let tally = Arc::new(Mutex::new(Tally::default()));
    let lag_us = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let est_counts = Arc::new(est_counts);
    let n_estimators = args.estimators.len();
    let (trace, seed) = (args.trace, args.seed);
    let retry_totals = Arc::new([(); 4].map(|_| AtomicU64::new(0)));
    let senders: Vec<_> = (0..args.senders.max(1))
        .map(|_| {
            let schedule = schedule.clone();
            let next = next.clone();
            let tally = tally.clone();
            let lag_us = lag_us.clone();
            let est_counts = est_counts.clone();
            let snapshot_id = args.snapshot_id.clone();
            let references = references.clone();
            let corrupt = corrupt.clone();
            let degraded_served = degraded_served.clone();
            let retry_totals = retry_totals.clone();
            let mut conn = connect();
            std::thread::spawn(move || {
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some((at, tile, center, est)) = schedule.get(i).copied() else {
                        break;
                    };
                    // Open loop: wait for the scheduled arrival, then record
                    // how late the send actually is (sender starvation shows
                    // up as lag, not as a silently lowered rate).
                    let now = start.elapsed();
                    if now < at {
                        std::thread::sleep(at - now);
                    } else {
                        lag_us.fetch_add((now - at).as_micros() as u64, Ordering::Relaxed);
                    }
                    let mut req = RenderRequest::new(&snapshot_id, center).estimator(est);
                    if trace {
                        req = req.traced(trace_for(seed, 1, i as u64));
                    }
                    let t0 = Instant::now();
                    let result = conn.render(&req);
                    let us = t0.elapsed().as_micros() as u64;
                    let mut t = tally.lock().unwrap();
                    match result {
                        Ok((resp, shard)) => {
                            t.done.push((resp.meta.cache_hit, us));
                            t.stages.push(stage_row(&resp));
                            if let Some(shard) = shard {
                                t.per_shard.push((shard, us));
                            }
                            est_counts[i % n_estimators].fetch_add(1, Ordering::Relaxed);
                            if resp.meta.degraded {
                                degraded_served.fetch_add(1, Ordering::Relaxed);
                            }
                            let expect = references.get(&format!("{tile}:{}", est.label()));
                            let ok = expect.is_none_or(|bits| {
                                resp.meta.degraded
                                    || (resp.data.len() == bits.len()
                                        && resp
                                            .data
                                            .iter()
                                            .zip(bits)
                                            .all(|(v, &b)| v.to_bits() == b))
                            });
                            if !ok {
                                corrupt.fetch_add(1, Ordering::Relaxed);
                                t.errors.push(format!(
                                    "warm req {i} tile {tile} ({}): CORRUPT payload",
                                    est.label()
                                ));
                            }
                        }
                        Err(e) => t
                            .errors
                            .push(format!("warm req {i} ({}): {e}", est.label())),
                    }
                }
                let (r, h, c, g) = conn.client_stats();
                for (slot, v) in retry_totals.iter().zip([r, h, c, g]) {
                    slot.fetch_add(v, Ordering::Relaxed);
                }
            })
        })
        .collect();
    // Mid-run shard kill: fire at the warm schedule's midpoint, so half
    // the load lands before the rehash and half rides the failover.
    let killer: Option<std::thread::JoinHandle<()>> = args.kill_shard.map(|victim| {
        let at = Duration::from_secs_f64(args.requests as f64 / 2.0 / args.rate.max(1e-9));
        let inproc = cluster_ctx.as_mut().and_then(|ctx| {
            ctx.inproc.get_mut(victim).map(|s| {
                (
                    s.node.clone(),
                    s.stop.clone(),
                    s.serve.take(),
                    s.gossip.take(),
                )
            })
        });
        let ext_addr = cluster_ctx.as_ref().map(|ctx| ctx.addrs[victim]);
        std::thread::spawn(move || {
            let now = start.elapsed();
            if now < at {
                std::thread::sleep(at - now);
            }
            if let Some((node, stop, serve, gossip)) = inproc {
                node.stop_gossip();
                stop.store(true, Ordering::SeqCst);
                if let Some(h) = serve {
                    let _ = h.join();
                }
                if let Some(h) = gossip {
                    let _ = h.join();
                }
                eprintln!(
                    "# killed shard {victim} at {:.2}s",
                    start.elapsed().as_secs_f64()
                );
            } else if let Some(addr) = ext_addr {
                match Client::connect(addr)
                    .map_err(|e| e.to_string())
                    .and_then(|mut c| c.shutdown().map_err(|e| e.to_string()))
                {
                    Ok(()) => eprintln!(
                        "# shard {victim} acked kill shutdown at {:.2}s",
                        start.elapsed().as_secs_f64()
                    ),
                    Err(e) => eprintln!("# shard {victim} kill: {e}"),
                }
            }
        })
    });
    for h in senders {
        let _ = h.join();
    }
    if let Some(h) = killer {
        let _ = h.join();
    }
    let warm_wall = start.elapsed().as_secs_f64();
    let tally = Arc::try_unwrap(tally).ok().unwrap().into_inner().unwrap();
    errors.extend(tally.errors);

    for &(hit, _) in &tally.done {
        if hit {
            hits += 1;
        } else {
            misses += 1;
        }
    }
    let completed = cold_us.len() + tally.done.len();
    let accounted = hits + misses == completed as u64;

    let mut all_us: Vec<u64> = cold_us
        .iter()
        .copied()
        .chain(tally.done.iter().map(|&(_, us)| us))
        .collect();
    all_us.sort_unstable();
    let mut cold_sorted = cold_us.clone();
    cold_sorted.sort_unstable();
    let mut warm_hit_us: Vec<u64> = tally
        .done
        .iter()
        .filter(|&&(hit, _)| hit)
        .map(|&(_, us)| us)
        .collect();
    warm_hit_us.sort_unstable();

    let p50_ms = percentile_ms(&all_us, 0.50);
    let p99_ms = percentile_ms(&all_us, 0.99);
    let cold_p50_ms = percentile_ms(&cold_sorted, 0.50);
    let warm_p50_ms = percentile_ms(&warm_hit_us, 0.50);
    let throughput_rps = tally.done.len() as f64 / warm_wall.max(1e-9);
    let mean_lag_ms = if tally.done.is_empty() {
        0.0
    } else {
        lag_us.load(Ordering::Relaxed) as f64 / 1e3 / args.requests as f64
    };

    for (slot, v) in retry_totals.iter().zip([
        cold_client_stats.0,
        cold_client_stats.1,
        cold_client_stats.2,
        cold_client_stats.3,
    ]) {
        slot.fetch_add(v, Ordering::Relaxed);
    }

    // Per-shard accounting (cluster mode): who served how much, at what
    // tail, holding how many resident bytes — and whether it was the one
    // we killed.
    let shards_json = if let Some(ctx) = &cluster_ctx {
        let mut per: Vec<Vec<u64>> = vec![Vec::new(); nshards];
        for &(shard, us) in cold_per_shard.iter().chain(tally.per_shard.iter()) {
            if shard < nshards {
                per[shard].push(us);
            }
        }
        let rows = (0..nshards)
            .map(|i| {
                let mut us = std::mem::take(&mut per[i]);
                us.sort_unstable();
                let killed = args.kill_shard == Some(i);
                let resident = if let Some(s) = ctx.inproc.get(i) {
                    Some(s.node.service().health().resident_bytes)
                } else if !killed {
                    Client::connect(ctx.addrs[i])
                        .ok()
                        .and_then(|mut c| c.health().ok())
                        .map(|h| h.resident_bytes)
                } else {
                    None
                };
                format!(
                    "{{\"shard\":{i},\"served\":{},\"p50_ms\":{},\"p99_ms\":{},\
                     \"resident_bytes\":{},\"killed\":{killed}}}",
                    us.len(),
                    number(percentile_ms(&us, 0.50)),
                    number(percentile_ms(&us, 0.99)),
                    resident.map_or_else(|| "null".into(), |b| b.to_string()),
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!("[{rows}]")
    } else {
        "null".to_string()
    };

    // Observability artifacts, fetched before teardown. In chaos mode the
    // fetch goes directly to the server (not through the fault proxy):
    // the artifacts document the chaos run, they should not ride through
    // it.
    // Artifacts (and the final stats document) come from shard 0 in
    // cluster mode — the shard holding the process-global recorder
    // in-process, or the first listener externally.
    let artifact_svc: Option<Arc<Service>> = service.clone().or_else(|| {
        cluster_ctx
            .as_ref()
            .and_then(|c| c.inproc.first().map(|s| s.node.service().clone()))
    });
    if args.dump_out.is_some() || args.stats_out.is_some() {
        let direct_addr: Option<String> = chaos_ctx
            .as_ref()
            .map(|(_, server_addr, _)| server_addr.to_string())
            .or_else(|| args.addr.clone())
            .or_else(|| {
                cluster_ctx
                    .as_ref()
                    .filter(|c| c.inproc.is_empty())
                    .map(|c| c.addrs[0].to_string())
            });
        let fetch = |what: &str, f: &dyn Fn() -> Option<String>, out: &Option<PathBuf>| {
            let Some(path) = out else { return };
            match f() {
                Some(json) => {
                    if let Some(parent) = path.parent() {
                        let _ = std::fs::create_dir_all(parent);
                    }
                    std::fs::write(path, json).expect("write artifact");
                    eprintln!("# {what} -> {}", path.display());
                }
                None => eprintln!("error: failed to fetch {what}"),
            }
        };
        fetch(
            "flight dump",
            &|| match (&artifact_svc, &direct_addr) {
                (Some(svc), None) => Some(svc.dump_trace()),
                (_, Some(addr)) => Client::connect(addr.as_str())
                    .ok()
                    .and_then(|mut c| c.dump().ok()),
                (None, None) => None,
            },
            &args.dump_out,
        );
        fetch(
            "stats document",
            &|| match (&artifact_svc, &direct_addr) {
                (Some(svc), None) => Some(svc.metrics_json()),
                (_, Some(addr)) => Client::connect(addr.as_str())
                    .ok()
                    .and_then(|mut c| c.stats().ok())
                    .map(|doc| doc.to_json()),
                (None, None) => None,
            },
            &args.stats_out,
        );
    }

    // Chaos teardown first: the battered server must still drain cleanly
    // on a direct (unproxied) Shutdown before the report is written.
    let mut drain_ok = true;
    let chaos_json = if let Some((mut proxy, server_addr, serve)) = chaos_ctx {
        match Client::connect(server_addr)
            .map_err(|e| e.to_string())
            .and_then(|mut c| c.shutdown().map_err(|e| e.to_string()))
        {
            Ok(()) => eprintln!("# chaos server acked direct shutdown"),
            Err(e) => {
                eprintln!("error: chaos clean drain: {e}");
                drain_ok = false;
            }
        }
        if serve.join().is_err() {
            eprintln!("error: serve loop panicked");
            drain_ok = false;
        }
        let s = &proxy.stats;
        let json = format!(
            "{{\"forwarded\":{},\"dropped\":{},\"delayed\":{},\"truncated\":{},\
             \"split\":{},\"stalled\":{},\"reset\":{},\"bitflipped\":{}}}",
            s.forwarded.load(Ordering::Relaxed),
            s.dropped.load(Ordering::Relaxed),
            s.delayed.load(Ordering::Relaxed),
            s.truncated.load(Ordering::Relaxed),
            s.split.load(Ordering::Relaxed),
            s.stalled.load(Ordering::Relaxed),
            s.reset.load(Ordering::Relaxed),
            s.bitflipped.load(Ordering::Relaxed),
        );
        proxy.stop();
        json
    } else {
        "null".into()
    };

    let stats_json = if let Some(svc) = &artifact_svc {
        svc.metrics_json()
    } else if let Some(addr) = args
        .addr
        .clone()
        .or_else(|| cluster_ctx.as_ref().map(|c| c.addrs[0].to_string()))
    {
        Client::connect(addr.as_str())
            .ok()
            .and_then(|mut c| c.stats().ok())
            .map(|doc| doc.to_json())
            .unwrap_or_else(|| "null".into())
    } else {
        unreachable!()
    };

    let est_json = args
        .estimators
        .iter()
        .zip(est_counts.iter())
        .map(|(e, c)| format!("\"{e}\":{}", c.load(Ordering::Relaxed)))
        .collect::<Vec<_>>()
        .join(",");
    let n_corrupt = corrupt.load(Ordering::Relaxed);
    let n_degraded = degraded_served.load(Ordering::Relaxed);

    // Per-stage breakdowns over every completed request (cold + warm).
    let all_stages: Vec<[u64; 4]> = cold_stages
        .iter()
        .chain(tally.stages.iter())
        .copied()
        .collect();
    let stages_json = stages_json(&all_stages);

    // SLO gate: overall p99 and request error rate against the target.
    let attempts = completed + errors.len();
    let error_rate = if attempts == 0 {
        0.0
    } else {
        errors.len() as f64 / attempts as f64
    };
    let mut slo_breaches: Vec<String> = Vec::new();
    if let Some(slo) = args.slo {
        if let Some(target) = slo.p99_ms {
            if p99_ms > target {
                slo_breaches.push(format!("p99 {p99_ms:.2} ms > target {target} ms"));
            }
        }
        if let Some(target) = slo.error_rate {
            if error_rate > target {
                slo_breaches.push(format!("error rate {error_rate:.4} > target {target}"));
            }
        }
    }
    let slo_json = match args.slo {
        None => "null".to_string(),
        Some(slo) => format!(
            "{{\"p99_ms\":{},\"error_rate\":{},\"breached\":{}}}",
            slo.p99_ms.map_or("null".into(), number),
            slo.error_rate.map_or("null".into(), number),
            !slo_breaches.is_empty(),
        ),
    };

    // A/B telemetry overhead: generous 50% bound on the *enabled* path
    // for a warm (microsecond-scale) render; the disabled path is the
    // baseline by construction.
    let ab_breached = ab.map(|(off_ms, on_ms)| on_ms > off_ms * 1.5) == Some(true);
    let ab_json = match ab {
        None => "null".to_string(),
        Some((off_ms, on_ms)) => format!(
            "{{\"off_ms\":{},\"on_ms\":{},\"delta_frac\":{}}}",
            number(off_ms),
            number(on_ms),
            number(on_ms / off_ms.max(1e-9) - 1.0),
        ),
    };
    let out = format!(
        "{{\"bench\":\"service\",\"mode\":\"{}\",\"tiles\":{tiles},\"requests\":{},\
         \"rate\":{},\"zipf\":{},\"completed\":{completed},\"errors\":{},\
         \"hits\":{hits},\"misses\":{misses},\"accounted\":{accounted},\
         \"estimators\":{{{est_json}}},\
         \"chaos_seed\":{},\"client\":\"{}\",\"corrupt\":{n_corrupt},\
         \"degraded\":{n_degraded},\"drain_ok\":{drain_ok},\"chaos\":{chaos_json},\
         \"client_stats\":{{\"retries\":{},\"hedges\":{},\"reconnects\":{},\"giveups\":{}}},\
         \"throughput_rps\":{},\"p50_ms\":{},\"p99_ms\":{},\
         \"cold_p50_ms\":{},\"warm_p50_ms\":{},\"mean_lag_ms\":{},\
         \"trace\":{},\"stages\":{stages_json},\"error_rate\":{},\"slo\":{slo_json},\
         \"ab_telemetry\":{ab_json},\"cluster\":{},\"kill_shard\":{},\"shards\":{shards_json},\
         \"server\":{stats_json}}}\n",
        if args.chaos.is_some() {
            "chaos"
        } else if cluster_on {
            "cluster"
        } else if args.addr.is_some() {
            "tcp"
        } else {
            "inproc"
        },
        args.requests,
        number(args.rate),
        number(args.zipf),
        errors.len(),
        args.chaos.map_or("null".into(), |s| s.to_string()),
        args.client.label(),
        retry_totals[0].load(Ordering::Relaxed),
        retry_totals[1].load(Ordering::Relaxed),
        retry_totals[2].load(Ordering::Relaxed),
        retry_totals[3].load(Ordering::Relaxed),
        number(throughput_rps),
        number(p50_ms),
        number(p99_ms),
        number(cold_p50_ms),
        number(warm_p50_ms),
        number(mean_lag_ms),
        args.trace,
        number(error_rate),
        if cluster_on {
            nshards.to_string()
        } else {
            "null".into()
        },
        args.kill_shard
            .map_or_else(|| "null".into(), |k| k.to_string()),
    );
    let path = args
        .out
        .clone()
        .unwrap_or_else(|| dtfe_core::io::experiments_dir().join("BENCH_service.json"));
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(&path, &out).expect("write bench report");
    dtfe_telemetry::json::Json::parse(&out).expect("valid bench report JSON");

    println!("# service -> {}", path.display());
    println!(
        "requests={completed} errors={} | throughput {throughput_rps:.1} rps | \
         p50 {p50_ms:.2} ms p99 {p99_ms:.2} ms | cold p50 {cold_p50_ms:.2} ms \
         warm p50 {warm_p50_ms:.2} ms ({:.1}x) | hits {hits} misses {misses} | lag {mean_lag_ms:.2} ms",
        errors.len(),
        cold_p50_ms / warm_p50_ms.max(1e-9),
    );
    if let Some(chaos_seed) = args.chaos {
        println!(
            "chaos seed={chaos_seed} client={} | corrupt {n_corrupt} | degraded {n_degraded} | \
             request errors {} | retries {} hedges {} | drain_ok={drain_ok}",
            args.client.label(),
            errors.len(),
            retry_totals[0].load(Ordering::Relaxed),
            retry_totals[1].load(Ordering::Relaxed),
        );
    }
    if let Some(ctx) = &cluster_ctx {
        let served: Vec<usize> = {
            let mut v = vec![0usize; nshards];
            for &(shard, _) in cold_per_shard.iter().chain(tally.per_shard.iter()) {
                if shard < nshards {
                    v[shard] += 1;
                }
            }
            v
        };
        println!(
            "cluster shards={} mode={} served={served:?} kill_shard={:?} | corrupt {n_corrupt}",
            nshards,
            if ctx.inproc.is_empty() {
                "external"
            } else {
                "inproc"
            },
            args.kill_shard,
        );
    }
    if args.trace && !all_stages.is_empty() {
        let mean = |s: usize| {
            all_stages.iter().map(|r| r[s]).sum::<u64>() as f64 / 1e3 / all_stages.len() as f64
        };
        println!(
            "stages (mean ms): admission {:.3} queue {:.3} build {:.3} render {:.3}",
            mean(0),
            mean(1),
            mean(2),
            mean(3),
        );
    }
    for b in &slo_breaches {
        eprintln!("error: SLO breached: {b}");
    }
    if ab_breached {
        let (off_ms, on_ms) = ab.unwrap();
        eprintln!(
            "error: telemetry overhead: warm render {on_ms:.3} ms enabled vs \
             {off_ms:.3} ms disabled exceeds the 50% bound"
        );
    }
    for e in errors.iter().take(5) {
        eprintln!("error: {e}");
    }

    if let Some(mut ctx) = cluster_ctx {
        if ctx.inproc.is_empty() && args.shutdown {
            // External cluster: drain every still-running shard.
            for (i, addr) in ctx.addrs.iter().enumerate() {
                if args.kill_shard == Some(i) {
                    continue;
                }
                match Client::connect(*addr)
                    .map_err(|e| e.to_string())
                    .and_then(|mut c| c.shutdown().map_err(|e| e.to_string()))
                {
                    Ok(()) => eprintln!("# shard {i} acked shutdown"),
                    Err(e) => {
                        eprintln!("error: shard {i} shutdown: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
        for s in &mut ctx.inproc {
            s.kill();
        }
    }
    if let Some(svc) = service {
        // In-process mode owns the service: drain before reporting success
        // so the run also smoke-tests shutdown.
        svc.drain();
    } else if args.shutdown && args.addr.is_some() {
        let addr = args.addr.as_deref().unwrap();
        match Client::connect(addr)
            .map_err(|e| e.to_string())
            .and_then(|mut c| c.shutdown().map_err(|e| e.to_string()))
        {
            Ok(()) => eprintln!("# server acked shutdown"),
            Err(e) => {
                eprintln!("error: shutdown: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    // A silently accepted corrupt payload or a failed clean drain fails
    // the run in any mode. Request *errors* fail it only when nothing was
    // being broken on purpose — under chaos or a mid-run shard kill,
    // typed errors are the contract and `--slo error_rate` is the gate.
    if n_corrupt > 0 || !drain_ok {
        return ExitCode::FAILURE;
    }
    if args.chaos.is_none() && args.kill_shard.is_none() && (!errors.is_empty() || !accounted) {
        return ExitCode::FAILURE;
    }
    if !slo_breaches.is_empty() || ab_breached {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
