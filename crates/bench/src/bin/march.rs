//! Marching-kernel micro-benchmark: the coherent kernel (shared-edge
//! Plücker traversal + hinted hull entry + cache-ordered mesh + tiled
//! scheduling) against the straightforward reference kernel on the same
//! field, verifying bit-identical output and reporting
//! `target/experiments/BENCH_march.json`:
//!
//! ```json
//! {"bench":"march","n":...,"grid":...,"threads":...,
//!  "wall_s":...,"cells_per_s":...,"tets_per_los":...,
//!  "seed_wall_s":...,"speedup":...,"par_wall_s":...,
//!  "edge_evals":...,"edge_evals_seed":...,
//!  "entry_hint_hits":...,"entry_hint_misses":...,
//!  "packet":...,"packet_wall_s":...,"packet_speedup":...,
//!  "packet_lanes_occupancy":...,"packet_scalar_fallbacks":...}
//! ```
//!
//! `wall_s`/`cells_per_s` time the *single-threaded* coherent kernel (the
//! apples-to-apples number against `seed_wall_s`, the single-threaded
//! reference); `speedup` is their ratio. `par_wall_s` is the tiled parallel
//! render on all host threads. `packet_wall_s` is the single-threaded
//! SIMD ray-packet kernel at the requested width and `packet_speedup` its
//! ratio over the scalar coherent kernel; `packet_lanes_occupancy` is the
//! mean fraction of live lanes per packet step. Any kernel mismatch exits
//! nonzero — CI runs this bin as a smoke test.
//!
//! ```text
//! cargo run --release -p dtfe-bench --bin march \
//!     [-- --scale small|medium|paper] [--packet N] [--repeat K]
//! ```

use dtfe_bench::Scale;
use dtfe_core::density::{DtfeField, Mass};
use dtfe_core::grid::GridSpec2;
use dtfe_core::marching::{
    surface_density_reference, surface_density_with_index, HullIndex, MarchOptions,
};
use dtfe_core::{EstimatorKind, PsDtfeField};
use dtfe_delaunay::DelaunayBuilder;
use dtfe_geometry::{Vec2, Vec3};
use dtfe_nbody::datasets::galaxy_box;
use dtfe_telemetry::json::number;
use std::time::Instant;

/// `--flag N` from the process arguments, or `default` when absent.
fn flag_usize(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    for w in args.windows(2) {
        if w[0] == name {
            return w[1]
                .parse()
                .unwrap_or_else(|_| panic!("{name} wants an unsigned integer, got {:?}", w[1]));
        }
    }
    default
}

fn main() {
    let scale = Scale::from_args();
    let n = scale.pick(4_000, 32_000, 200_000);
    let grid_n = scale.pick(96, 192, 384);
    // Requested packet width (0 = scalar dispatch; MarchOptions rounds
    // 2..=7 down to 4 and ≥8 to 8) and timed repetitions per kernel.
    let packet = flag_usize("--packet", 8);
    let reps = flag_usize("--repeat", 5).max(1);

    let box_len = 16.0;
    let (particles, _halos) = galaxy_box(box_len, n, 24, 7);

    // "Old" is the pre-optimization pipeline state: construction-order mesh
    // slots and the reference kernel. "New" is the shipped path: the
    // cache-reordered mesh and the coherent kernel. Both fields hold
    // bit-identical densities and interpolants (the reorder is pure data
    // movement), so the rendered outputs must match exactly.
    let margin = 0.02 * box_len;
    let grid = GridSpec2::covering(
        Vec2::new(-margin, -margin),
        Vec2::new(box_len + margin, box_len + margin),
        grid_n,
        grid_n,
    );
    let cells = grid.num_cells() as f64;

    let serial = MarchOptions::new().samples(2).parallel(false);
    let parallel = MarchOptions::new().samples(2).parallel(true);

    // The reported wall time of each kernel is the minimum over `reps`
    // repetitions, which estimates the interference-free time on a shared
    // host.

    // Old configuration first, timed with only its own field resident — the
    // production process only ever holds one mesh, and the two ~40 MB
    // working sets would evict each other if both stayed live. The warm-up
    // pass pages the mesh in before any timed rep.
    let (seed_field, seed_stats, seed_wall_s) = {
        let del = DelaunayBuilder::new()
            .build(&particles)
            .expect("triangulation");
        let field_old =
            DtfeField::from_delaunay_unordered(del, particles.len(), Mass::Uniform(1.0));
        let index_old = HullIndex::build(&field_old);
        let _ = surface_density_reference(&field_old, &index_old, &grid, &serial);
        let mut best = f64::INFINITY;
        let mut out = None;
        for _ in 0..reps {
            let t0 = Instant::now();
            let r = surface_density_reference(&field_old, &index_old, &grid, &serial);
            best = best.min(t0.elapsed().as_secs_f64());
            out = Some(r);
        }
        let (f, s) = out.unwrap();
        (f, s, best)
    };

    let t0 = Instant::now();
    let field = DtfeField::build(&particles, Mass::Uniform(1.0)).expect("triangulation");
    let index = HullIndex::build(&field);
    field.march_cache(); // fold the cache build into setup, not the timings
    let build_s = t0.elapsed().as_secs_f64();

    let _ = surface_density_with_index(&field, &index, &grid, &serial);
    let mut wall_s = f64::INFINITY;
    let mut coh = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = surface_density_with_index(&field, &index, &grid, &serial);
        wall_s = wall_s.min(t0.elapsed().as_secs_f64());
        coh = Some(r);
    }
    let (coh_field, coh_stats) = coh.unwrap();

    let t0 = Instant::now();
    let (par_field, par_stats) = surface_density_with_index(&field, &index, &grid, &parallel);
    let par_wall_s = t0.elapsed().as_secs_f64();

    // SIMD ray-packet leg: the same single-threaded render with bundles of
    // coherent lines of sight classified per tetrahedron in SIMD lanes.
    let packet_opts = serial.clone().packet(packet);
    let _ = surface_density_with_index(&field, &index, &grid, &packet_opts);
    let mut packet_wall_s = f64::INFINITY;
    let mut pk = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = surface_density_with_index(&field, &index, &grid, &packet_opts);
        packet_wall_s = packet_wall_s.min(t0.elapsed().as_secs_f64());
        pk = Some(r);
    }
    let (packet_field, packet_stats) = pk.unwrap();

    // The whole point of the rewrite: same bits, fewer cycles. A mismatch
    // anywhere is a hard failure (CI runs this bin as a smoke test).
    let mut ok = true;
    if coh_field.data != seed_field.data {
        eprintln!("MISMATCH: coherent serial field differs from reference kernel");
        ok = false;
    }
    if par_field.data != seed_field.data {
        eprintln!("MISMATCH: tiled parallel field differs from reference kernel");
        ok = false;
    }
    if packet_field.data != seed_field.data {
        eprintln!("MISMATCH: packet field (width {packet}) differs from reference kernel");
        ok = false;
    }
    for (name, a, b) in [
        ("crossings", seed_stats.crossings, coh_stats.crossings),
        (
            "perturbations",
            seed_stats.perturbations,
            coh_stats.perturbations,
        ),
        ("failures", seed_stats.failures, coh_stats.failures),
        ("par crossings", seed_stats.crossings, par_stats.crossings),
        (
            "packet crossings",
            seed_stats.crossings,
            packet_stats.crossings,
        ),
        (
            "packet perturbations",
            seed_stats.perturbations,
            packet_stats.perturbations,
        ),
    ] {
        if a != b {
            eprintln!("MISMATCH: {name} {a} (reference) vs {b}");
            ok = false;
        }
    }
    if !ok {
        std::process::exit(1);
    }

    // Non-DTFE estimator leg: the same marching kernel behind the
    // FieldEstimator seam, driven by a PS-DTFE field (smooth periodic demo
    // flow — the bench measures the kernel, not astrophysics).
    let w = std::f64::consts::TAU / box_len;
    let vels: Vec<Vec3> = particles
        .iter()
        .map(|p| {
            Vec3::new(
                0.1 * box_len * (w * p.x).sin(),
                0.1 * box_len * (w * p.y).sin(),
                0.1 * box_len * (w * p.z).sin(),
            )
        })
        .collect();
    let ps_wall_s = match PsDtfeField::build(&particles, &vels, Mass::Uniform(1.0)) {
        Ok(ps) => {
            let ps_index = HullIndex::build(&ps);
            let ps_opts = serial.clone().estimator(EstimatorKind::PsDtfe);
            let _ = surface_density_with_index(&ps, &ps_index, &grid, &ps_opts);
            let mut best = f64::INFINITY;
            for _ in 0..reps {
                let t0 = Instant::now();
                let (f, _) = surface_density_with_index(&ps, &ps_index, &grid, &ps_opts);
                best = best.min(t0.elapsed().as_secs_f64());
                if !f.total_mass().is_finite() {
                    eprintln!("MISMATCH: PS-DTFE render produced non-finite mass");
                    std::process::exit(1);
                }
            }
            best
        }
        Err(e) => {
            eprintln!("MISMATCH: PS-DTFE build failed: {e}");
            std::process::exit(1);
        }
    };

    let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let los = cells * serial.render.samples as f64;
    let tets_per_los = coh_stats.crossings as f64 / los;
    let speedup = seed_wall_s / wall_s.max(1e-12);
    let packet_speedup = wall_s / packet_wall_s.max(1e-12);
    // Mean fraction of live lanes per packet step, against the dispatched
    // lane width (MarchOptions rounds the request to 1, 2, 4 or 8).
    let lane_width = match packet {
        0 => 0,
        1 => 1,
        2..=3 => 2,
        4..=7 => 4,
        _ => 8,
    };
    let packet_lanes_occupancy = if packet_stats.packet_steps == 0 || lane_width == 0 {
        0.0
    } else {
        packet_stats.packet_lane_steps as f64
            / (packet_stats.packet_steps as f64 * lane_width as f64)
    };
    let mut out = String::from("{\"bench\":\"march\",\"estimator\":\"dtfe\"");
    out.push_str(&format!(
        ",\"n\":{n},\"grid\":{grid_n},\"threads\":{threads},\"wall_s\":{},\"cells_per_s\":{},\
         \"tets_per_los\":{},\"seed_wall_s\":{},\"speedup\":{},\"par_wall_s\":{},\
         \"build_s\":{},\"edge_evals\":{},\"edge_evals_seed\":{},\
         \"entry_hint_hits\":{},\"entry_hint_misses\":{},\"psdtfe_wall_s\":{},\
         \"packet\":{packet},\"packet_wall_s\":{},\"packet_speedup\":{},\
         \"packet_lanes_occupancy\":{},\"packet_scalar_fallbacks\":{}}}\n",
        number(wall_s),
        number(cells / wall_s.max(1e-12)),
        number(tets_per_los),
        number(seed_wall_s),
        number(speedup),
        number(par_wall_s),
        number(build_s),
        number(coh_stats.edge_evals as f64),
        number(seed_stats.edge_evals as f64),
        number(coh_stats.entry_hint_hits as f64),
        number(coh_stats.entry_hint_misses as f64),
        number(ps_wall_s),
        number(packet_wall_s),
        number(packet_speedup),
        number(packet_lanes_occupancy),
        number(packet_stats.packet_scalar_fallbacks as f64),
    ));

    let dir = dtfe_core::io::experiments_dir();
    let path = dir.join("BENCH_march.json");
    std::fs::write(&path, &out).expect("write BENCH_march.json");
    dtfe_telemetry::json::Json::parse(&out).expect("valid bench report JSON");

    println!("# march -> {}", path.display());
    println!(
        "n={n} grid={grid_n}x{grid_n} | reference {seed_wall_s:.3}s -> coherent {wall_s:.3}s \
         (x{speedup:.2} single-thread) -> packet[{packet}] {packet_wall_s:.3}s \
         (x{packet_speedup:.2} over coherent, {:.0}% lanes live, {} fallbacks) | \
         parallel {par_wall_s:.3}s on {threads} threads",
        100.0 * packet_lanes_occupancy,
        packet_stats.packet_scalar_fallbacks,
    );
    println!(
        "cells/s {:.0} | tets/LOS {tets_per_los:.1} | edge evals {} -> {} ({:.0}% saved) | \
         entry hints {} hit / {} miss | psdtfe {ps_wall_s:.3}s",
        cells / wall_s.max(1e-12),
        seed_stats.edge_evals,
        coh_stats.edge_evals,
        100.0 * (1.0 - coh_stats.edge_evals as f64 / seed_stats.edge_evals.max(1) as f64),
        coh_stats.entry_hint_hits,
        coh_stats.entry_hint_misses,
    );
}
