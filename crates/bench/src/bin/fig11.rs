//! Figure 11: prediction-error histograms of the two workload models,
//! from actual per-item wall measurements of a galaxy-galaxy run.
//!
//! Paper: 7,209 test samples; both error distributions symmetric and
//! centred near zero.
//!
//! ```text
//! cargo run --release -p dtfe-bench --bin fig11 [--scale small|medium|paper]
//! ```

use dtfe_bench::{Scale, SeriesWriter};
use dtfe_core::grid::histogram;
use dtfe_framework::{run_distributed, FieldRequest, FrameworkConfig};
use dtfe_geometry::{Aabb3, Vec3};
use dtfe_lensing::configs::galaxy_galaxy_centers;
use dtfe_nbody::halos::{clustered_box, ClusteredBoxSpec};

fn main() {
    let scale = Scale::from_args();
    let n_particles = scale.pick(150_000usize, 400_000, 1_000_000);
    let n_halos = scale.pick(200usize, 400, 800);
    let n_fields = scale.pick(160usize, 350, 700);
    let box_len = 48.0;
    let bounds = Aabb3::new(Vec3::ZERO, Vec3::splat(box_len));
    let (particles, halos) = clustered_box(&ClusteredBoxSpec {
        occupation_range: (50.0, 3_000.0),
        occupation_slope: -1.6,
        ..ClusteredBoxSpec::new(bounds, n_particles, n_halos, 2024)
    });
    let field_len = 3.0;
    let centers = galaxy_galaxy_centers(&halos, n_fields, bounds, field_len * 0.5);
    let requests: Vec<FieldRequest> = centers
        .iter()
        .map(|&c| FieldRequest { center: c })
        .collect();
    println!(
        "# fig11: {} fields over {} particles",
        requests.len(),
        particles.len()
    );

    let cfg = FrameworkConfig::new(field_len, scale.pick(24, 40, 64));
    let reports = run_distributed(8, &particles, bounds, &requests, &cfg)
        .expect("fault-free figure run")
        .ranks;

    // Relative prediction errors (predicted − actual) / mean(actual): the
    // paper plots raw seconds; normalizing makes the histogram hardware-
    // independent while preserving its shape and centring.
    let mut tri_err = Vec::new();
    let mut interp_err = Vec::new();
    let (mut tri_sum, mut interp_sum, mut n) = (0.0, 0.0, 0usize);
    for r in &reports {
        for rec in &r.records {
            tri_sum += rec.actual_tri;
            interp_sum += rec.actual_interp;
            n += 1;
        }
    }
    let (tri_mean, interp_mean) = (tri_sum / n as f64, interp_sum / n as f64);
    for r in &reports {
        for rec in &r.records {
            tri_err.push((rec.predicted_tri - rec.actual_tri) / tri_mean);
            interp_err.push((rec.predicted_interp - rec.actual_interp) / interp_mean);
        }
    }

    let bins = 40;
    let range = 4.0;
    let h_tri = histogram(tri_err.iter().copied(), -range, range, bins);
    let h_int = histogram(interp_err.iter().copied(), -range, range, bins);
    let mut w = SeriesWriter::create("fig11_model_error", "rel_error,tri_count,interp_count");
    for b in 0..bins {
        let x = -range + 2.0 * range * (b as f64 + 0.5) / bins as f64;
        w.row(&format!("{x:.3},{},{}", h_tri[b], h_int[b]));
    }
    drop(w);

    let mean_of = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let mut s = SeriesWriter::create("fig11_summary", "model,mean_rel_error,samples");
    s.row(&format!(
        "triangulation,{:.4},{}",
        mean_of(&tri_err),
        tri_err.len()
    ));
    s.row(&format!(
        "interpolation,{:.4},{}",
        mean_of(&interp_err),
        interp_err.len()
    ));
    println!("# paper: both distributions symmetric, centred near zero");
}
