//! End-to-end instrumented pipeline bench: one telemetry-enabled
//! `run_distributed` over a clustered galaxy box, reporting the whole
//! run as `target/experiments/BENCH_pipeline.json`:
//!
//! ```json
//! {"bench":"pipeline","n":...,"threads":...,"ranks":...,
//!  "wall_s":...,"cpu_s":...,"metrics":{counters,gauges,histograms}}
//! ```
//!
//! `threads` is the host parallelism available to the run (the simulated
//! ranks are OS threads); `cpu_s` is the summed per-rank busy time, so
//! `cpu_s / wall_s` is the achieved parallel efficiency. `metrics` is the
//! cluster-wide merged registry (span-derived phase gauges, item
//! histograms, predicate/marching counters).
//!
//! ```text
//! cargo run --release -p dtfe-bench --bin pipeline [-- --scale small|medium|paper]
//! ```

use dtfe_bench::Scale;
use dtfe_framework::{run_distributed, FieldRequest, FrameworkConfig};
use dtfe_geometry::{Aabb3, Vec3};
use dtfe_lensing::configs::galaxy_galaxy_centers;
use dtfe_nbody::datasets::galaxy_box;
use dtfe_telemetry::json::number;
use dtfe_telemetry::{check, merged_metrics, metrics_object, Summary};
use std::time::Instant;

fn main() {
    let scale = Scale::from_args();
    let n = scale.pick(20_000, 120_000, 400_000);
    let n_fields = scale.pick(16, 40, 96);
    let resolution = scale.pick(32, 64, 96);
    let nranks = 8;

    let box_len = 32.0;
    let bounds = Aabb3::new(Vec3::ZERO, Vec3::splat(box_len));
    let (particles, halos) = galaxy_box(box_len, n, 48, 99);
    let field_len = 3.0;
    let centers = galaxy_galaxy_centers(&halos, n_fields, bounds, field_len * 0.5);
    let requests: Vec<FieldRequest> = centers
        .iter()
        .map(|&c| FieldRequest { center: c })
        .collect();

    let cfg = FrameworkConfig {
        balance: true,
        telemetry: true,
        ..FrameworkConfig::new(field_len, resolution)
    };
    let t0 = Instant::now();
    let run = run_distributed(nranks, &particles, bounds, &requests, &cfg).expect("framework run");
    let wall_s = t0.elapsed().as_secs_f64();
    let cpu_s: f64 = run.ranks.iter().map(|r| r.timings.total).sum();

    let snaps = run.telemetry();
    let merged = merged_metrics(&snaps);
    let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut out = String::from("{\"bench\":\"pipeline\"");
    out.push_str(&format!(
        ",\"n\":{n},\"threads\":{threads},\"ranks\":{nranks},\"wall_s\":{},\"cpu_s\":{},\"metrics\":",
        number(wall_s),
        number(cpu_s),
    ));
    out.push_str(&metrics_object(&merged));
    out.push_str("}\n");

    let dir = dtfe_core::io::experiments_dir();
    let path = dir.join("BENCH_pipeline.json");
    std::fs::write(&path, &out).expect("write BENCH_pipeline.json");

    // Self-check the exports before declaring success: the trace must be a
    // valid Chrome trace and the report must parse back.
    let trace = run.chrome_trace().expect("telemetry on");
    let stats = check::check_chrome_trace(&trace).expect("valid chrome trace");
    dtfe_telemetry::json::Json::parse(&out).expect("valid bench report JSON");

    println!("# pipeline -> {}", path.display());
    println!(
        "n={n} ranks={nranks} fields={} wall {wall_s:.2}s cpu {cpu_s:.2}s \
         (efficiency {:.2}) | trace: {} spans over {} ranks | imbalance {:.3}",
        run.computed,
        cpu_s / wall_s.max(1e-12) / nranks as f64,
        stats.spans,
        stats.processes,
        run.imbalance(),
    );
    println!("{}", Summary(&snaps));
}
