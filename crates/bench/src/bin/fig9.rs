//! Figures 9 & 10: the galaxy-galaxy lensing experiment — fields centred on
//! the most massive halos (the most clustered, hardest-to-balance
//! configuration), swept over rank counts with and without work sharing.
//!
//! Paper setting: 7,209 fields over a 1024³-particle snapshot, 8–240 MPI
//! ranks; work-sharing speedup ~2.8× at 240 ranks, imbalance (Fig. 10)
//! growing as sub-volumes shrink.
//!
//! ```text
//! cargo run --release -p dtfe-bench --bin fig9 [--scale small|medium|paper]
//! ```
//!
//! Writes `fig9_times.csv`, `fig9_speedup.csv`, `fig9_imbalance.csv`
//! (the latter is Fig. 10).

use dtfe_bench::experiments::scaling_sweep;
use dtfe_bench::Scale;
use dtfe_framework::{FieldRequest, FrameworkConfig};
use dtfe_geometry::{Aabb3, Vec3};
use dtfe_lensing::configs::galaxy_galaxy_centers;
use dtfe_nbody::halos::{clustered_box, ClusteredBoxSpec};

fn main() {
    let scale = Scale::from_args();
    let n_particles = scale.pick(120_000usize, 300_000, 1_000_000);
    let n_halos = scale.pick(150usize, 300, 600);
    let n_fields = scale.pick(120usize, 256, 512);
    let resolution = scale.pick(24usize, 40, 64);
    let ranks: &[usize] = match scale {
        Scale::Small => &[2, 4, 8, 16],
        _ => &[2, 4, 8, 16, 32],
    };

    let box_len = 48.0;
    let bounds = Aabb3::new(Vec3::ZERO, Vec3::splat(box_len));
    // Many moderately-sized halos: like the paper's galaxy sample, no
    // single field dwarfs the rest (occupation capped), but halo-hosting
    // sub-volumes still concentrate the work.
    let (particles, halos) = clustered_box(&ClusteredBoxSpec {
        occupation_range: (50.0, 3_000.0),
        occupation_slope: -1.6,
        ..ClusteredBoxSpec::new(bounds, n_particles, n_halos, 1337)
    });
    let field_len = 3.0;
    let centers = galaxy_galaxy_centers(&halos, n_fields, bounds, field_len * 0.5);
    let requests: Vec<FieldRequest> = centers
        .iter()
        .map(|&c| FieldRequest { center: c })
        .collect();
    println!(
        "# fig9: {} particles, {} halos, {} fields of ({field_len})³ at {resolution}²",
        particles.len(),
        halos.len(),
        requests.len()
    );

    let cfg = FrameworkConfig::new(field_len, resolution);
    scaling_sweep("fig9", &particles, bounds, &requests, &cfg, ranks);
    println!("# paper: near-linear until ~64 ranks, balanced imbalance well below unbalanced");
}
