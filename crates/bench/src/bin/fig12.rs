//! Figure 12: the multiplane lensing experiment — field stacks along
//! observer lines of sight (a mixture of dense and empty sub-volumes),
//! swept over rank counts with and without work sharing.
//!
//! Paper setting: 700 lines of sight, 9,061 fields, 8–220 ranks; scales
//! better than the galaxy-galaxy configuration because the many small work
//! items pack more efficiently.
//!
//! ```text
//! cargo run --release -p dtfe-bench --bin fig12 [--scale small|medium|paper]
//! ```

use dtfe_bench::experiments::scaling_sweep;
use dtfe_bench::Scale;
use dtfe_framework::{FieldRequest, FrameworkConfig};
use dtfe_geometry::{Aabb3, Vec3};
use dtfe_lensing::configs::multiplane_los_centers;
use dtfe_nbody::halos::{clustered_box, ClusteredBoxSpec};

fn main() {
    let scale = Scale::from_args();
    let n_particles = scale.pick(120_000usize, 300_000, 1_000_000);
    let n_halos = scale.pick(150usize, 300, 600);
    let n_lines = scale.pick(16usize, 32, 64);
    let planes = scale.pick(10usize, 10, 13);
    let resolution = scale.pick(24usize, 40, 64);
    let ranks: &[usize] = match scale {
        Scale::Small => &[2, 4, 8, 16],
        _ => &[2, 4, 8, 16, 32],
    };

    let box_len = 48.0;
    let bounds = Aabb3::new(Vec3::ZERO, Vec3::splat(box_len));
    // Same clustered substrate as fig9 (the paper uses the same Planck
    // snapshot for both experiments).
    let (particles, _halos) = clustered_box(&ClusteredBoxSpec {
        occupation_range: (50.0, 3_000.0),
        occupation_slope: -1.6,
        ..ClusteredBoxSpec::new(bounds, n_particles, n_halos, 1337)
    });
    let field_len = 3.0;
    let centers = multiplane_los_centers(bounds, n_lines, planes, field_len * 0.5, 77);
    let requests: Vec<FieldRequest> = centers
        .iter()
        .map(|&c| FieldRequest { center: c })
        .collect();
    println!(
        "# fig12: {} lines × {} planes = {} fields over {} particles",
        n_lines,
        planes,
        requests.len(),
        particles.len()
    );

    let cfg = FrameworkConfig::new(field_len, resolution);
    scaling_sweep("fig12", &particles, bounds, &requests, &cfg, ranks);
    println!("# paper: near-linear scaling with only small deviation (better than fig9)");
}
