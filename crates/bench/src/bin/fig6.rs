//! Figure 6: shared-memory kernel comparison — per-thread interpolation
//! time of the walking 3D-grid renderer (DTFE public software analog, with
//! its static per-thread volume decomposition) vs our marching kernel
//! (dynamic cell scheduling), on one grid from one triangulation.
//!
//! Paper setting: 650,466 particles (Gadget demo), 1024³ grid, 24 threads;
//! our kernel ~10× faster with visibly flatter per-thread times.
//!
//! ```text
//! cargo run --release -p dtfe-bench --bin fig6 [--scale small|medium|paper]
//! ```

use dtfe_bench::{dynamic_schedule, mean, static_schedule, wall_of, Scale, SeriesWriter};
use dtfe_core::density::{DtfeField, Mass};
use dtfe_core::grid::{GridSpec2, GridSpec3};
use dtfe_core::marching::{cell_value, HullIndex, MarchOptions, MarchStats};
use dtfe_core::walking::walk_column;
use dtfe_geometry::Vec2;
use dtfe_nbody::datasets::gadget_demo_like;
use std::time::Instant;

fn main() {
    let scale = Scale::from_args();
    let n_side = scale.pick(16usize, 32, 64);
    let ng = scale.pick(96usize, 192, 384);
    let nthreads = 24; // the paper's thread count
    let (particles, box_len) = gadget_demo_like(n_side, 1);
    println!(
        "# fig6: {} particles, {ng}³-equivalent grid, {nthreads} threads (emulated)",
        particles.len()
    );

    let t0 = Instant::now();
    let field = DtfeField::build(&particles, Mass::Uniform(1.0)).expect("triangulation");
    println!(
        "# triangulation: {:.2}s (excluded from the comparison, as in the paper)",
        t0.elapsed().as_secs_f64()
    );

    let grid = GridSpec2::covering(Vec2::new(0.0, 0.0), Vec2::new(box_len, box_len), ng, ng);
    let g3 = GridSpec3::lift(&grid, 0.0, box_len, ng);

    // --- Walking baseline: per-column costs (each column = ng cell locates).
    let t_all = Instant::now();
    let mut walk_costs = Vec::with_capacity(ng * ng);
    let mut seed = 0xBEEF;
    for j in 0..ng {
        for i in 0..ng {
            let t = Instant::now();
            let v = walk_column(&field, &g3, i, j, 1, &mut seed);
            walk_costs.push(t.elapsed().as_secs_f64());
            std::hint::black_box(v);
        }
    }
    let walk_total = t_all.elapsed().as_secs_f64();

    // --- Marching kernel: per-cell costs.
    let index = HullIndex::build(&field);
    let opts = MarchOptions::new().parallel(false);
    let eps = opts.epsilon * grid.cell.norm();
    let mut stats = MarchStats::default();
    let t_all = Instant::now();
    let mut march_costs = Vec::with_capacity(ng * ng);
    for j in 0..ng {
        for i in 0..ng {
            let t = Instant::now();
            let v = cell_value(
                &field, &index, &grid, i, j, eps, &opts, &mut seed, &mut stats,
            );
            march_costs.push(t.elapsed().as_secs_f64());
            std::hint::black_box(v);
        }
    }
    let march_total = t_all.elapsed().as_secs_f64();

    // Distribute costs over threads the way each code schedules them.
    let walk_threads = static_schedule(&walk_costs, nthreads);
    let march_threads = dynamic_schedule(&march_costs, nthreads);

    let mut w = SeriesWriter::create("fig6_thread_times", "method,thread,time_s");
    for (t, v) in walk_threads.iter().enumerate() {
        w.row(&format!("DTFE-walking,{t},{v:.6}"));
    }
    for (t, v) in march_threads.iter().enumerate() {
        w.row(&format!("our-marching,{t},{v:.6}"));
    }
    drop(w);

    let mut s = SeriesWriter::create("fig6_summary", "metric,walking,marching,ratio");
    s.row(&format!(
        "total_cpu_s,{walk_total:.3},{march_total:.3},{:.2}",
        walk_total / march_total
    ));
    s.row(&format!(
        "thread_mean_s,{:.4},{:.4},{:.2}",
        mean(&walk_threads),
        mean(&march_threads),
        mean(&walk_threads) / mean(&march_threads)
    ));
    s.row(&format!(
        "thread_wall_s,{:.4},{:.4},{:.2}",
        wall_of(&walk_threads),
        wall_of(&march_threads),
        wall_of(&walk_threads) / wall_of(&march_threads)
    ));
    let spread =
        |v: &[f64]| (wall_of(v) - v.iter().cloned().fold(f64::INFINITY, f64::min)) / mean(v);
    s.row(&format!(
        "thread_spread,{:.3},{:.3},{:.2}",
        spread(&walk_threads),
        spread(&march_threads),
        spread(&walk_threads) / spread(&march_threads).max(1e-9)
    ));
    println!(
        "# paper: ~10x kernel speedup, walking threads visibly imbalanced; \
         measured speedup {:.1}x",
        wall_of(&walk_threads) / wall_of(&march_threads)
    );
}
