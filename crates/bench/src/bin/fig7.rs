//! Figure 7: distributed-memory comparison against TESS/DENSE.
//!
//! One large surface-density grid decomposed into per-rank sub-grids
//! (multiple-process-single-thread mode). Stages timed separately, as the
//! paper plots them:
//!
//! * ours: Triangulation (local Delaunay over the rank's inflated
//!   sub-volume) + Interpolation (marching the rank's sub-grid);
//! * TESS analog: tessellation (Delaunay + Voronoi cell volumes) + DENSE
//!   (zero-order 3D grid render collapsed along z).
//!
//! Paper setting: 1.7 M particles in a 32 Mpc/h sub-volume, 4096² grid,
//! 1–64 MPI ranks; ours ~8× faster overall. Wall clock here is emulated as
//! max-over-ranks busy time (see `dtfe-bench` docs).
//!
//! ```text
//! cargo run --release -p dtfe-bench --bin fig7 [--scale small|medium|paper]
//! ```

use dtfe_bench::{wall_of, Scale, SeriesWriter};
use dtfe_core::density::{DtfeField, Mass};
use dtfe_core::grid::GridSpec2;
use dtfe_core::marching::{surface_density, MarchOptions};
use dtfe_framework::decomp::Decomposition;
use dtfe_geometry::{Aabb3, Vec2, Vec3};
use dtfe_nbody::datasets::planck_like;
use dtfe_tess::VoronoiDensity;
use std::time::Instant;

struct StageTimes {
    tri: Vec<f64>,
    interp: Vec<f64>,
    tess: Vec<f64>,
    dense: Vec<f64>,
}

fn run_at(particles: &[Vec3], bounds: Aabb3, ng: usize, nranks: usize) -> StageTimes {
    let decomp = Decomposition::new(bounds, nranks);
    let margin = bounds.extent().x / (nranks as f64).cbrt() * 0.25;
    let full = GridSpec2::covering(bounds.lo.xy(), bounds.hi.xy(), ng, ng);
    let mut out = StageTimes {
        tri: vec![],
        interp: vec![],
        tess: vec![],
        dense: vec![],
    };

    for rank in 0..nranks {
        let sub = decomp.rank_box(rank);
        let inflated = sub.inflated(margin);
        let local: Vec<Vec3> = particles
            .iter()
            .copied()
            .filter(|p| inflated.contains_closed(*p))
            .collect();

        // The rank's share of the global 2D grid: the columns whose centre
        // falls in its box footprint AND whose z-range it owns — since the
        // decomposition cuts z too, each rank integrates only its z slab.
        let foot = sub.footprint();
        let (i0, i1) = (
            ((foot.lo.x - full.origin.x) / full.cell.x).round() as usize,
            ((foot.hi.x - full.origin.x) / full.cell.x).round() as usize,
        );
        let (j0, j1) = (
            ((foot.lo.y - full.origin.y) / full.cell.y).round() as usize,
            ((foot.hi.y - full.origin.y) / full.cell.y).round() as usize,
        );
        let nx = (i1 - i0).max(1);
        let nyy = (j1 - j0).max(1);
        let sub_grid = GridSpec2 {
            origin: Vec2::new(
                full.origin.x + i0 as f64 * full.cell.x,
                full.origin.y + j0 as f64 * full.cell.y,
            ),
            cell: full.cell,
            nx,
            ny: nyy,
        };
        let z_range = (sub.lo.z, sub.hi.z);

        // --- ours ---
        let t0 = Instant::now();
        let del = dtfe_delaunay::DelaunayBuilder::new()
            .build(&local)
            .expect("triangulation");
        let field = DtfeField::from_delaunay_for_inputs(del, local.len(), Mass::Uniform(1.0));
        out.tri.push(t0.elapsed().as_secs_f64());

        let t0 = Instant::now();
        let opts = MarchOptions::new()
            .parallel(false)
            .z_range(z_range.0, z_range.1);
        let sigma = surface_density(&field, &sub_grid, &opts);
        out.interp.push(t0.elapsed().as_secs_f64());
        std::hint::black_box(sigma);

        // --- TESS / DENSE analog ---
        let t0 = Instant::now();
        let vd = VoronoiDensity::build(&local, Mass::Uniform(1.0)).expect("tessellation");
        out.tess.push(t0.elapsed().as_secs_f64());

        let t0 = Instant::now();
        // DENSE materializes the rank's 3D slab; nz proportional to its z
        // extent so the global work matches a ng³ grid.
        let nz = ((z_range.1 - z_range.0) / (bounds.extent().z / ng as f64)).round() as usize;
        let sigma = vd.surface_density(&sub_grid, z_range, nz.max(1), false);
        out.dense.push(t0.elapsed().as_secs_f64());
        std::hint::black_box(sigma);
    }
    out
}

fn main() {
    let scale = Scale::from_args();
    let n_side = scale.pick(24usize, 48, 96); // cbrt-ish of particle count
    let ng = scale.pick(128usize, 256, 512);
    let box_len = 32.0;
    // planck_like needs a power-of-two side; use halos-free Zel'dovich at
    // the nearest power of two and subsample to n_side³.
    let pow2 = n_side.next_power_of_two();
    let mut particles = planck_like(pow2, box_len, 3);
    let keep = n_side * n_side * n_side;
    if particles.len() > keep {
        let step = particles.len() as f64 / keep as f64;
        particles = (0..keep)
            .map(|i| particles[(i as f64 * step) as usize])
            .collect();
    }
    let bounds = Aabb3::new(Vec3::ZERO, Vec3::splat(box_len));
    println!("# fig7: {} particles, {ng}² global grid", particles.len());

    let ranks: &[usize] = &[1, 2, 4, 8, 16, 32, 64];
    let mut times = SeriesWriter::create(
        "fig7_times",
        "nranks,interpolation_s,triangulation_s,dense_s,tess_s,ours_total_s,tessdense_total_s",
    );
    let mut base: Option<(f64, f64, f64, f64)> = None;
    let mut speed = SeriesWriter::create(
        "fig7_speedup",
        "nranks,interpolation,triangulation,dense,tess",
    );
    for &p in ranks {
        let st = run_at(&particles, bounds, ng, p);
        let (wi, wt, wd, wv) = (
            wall_of(&st.interp),
            wall_of(&st.tri),
            wall_of(&st.dense),
            wall_of(&st.tess),
        );
        times.row(&format!(
            "{p},{wi:.3},{wt:.3},{wd:.3},{wv:.3},{:.3},{:.3}",
            wi + wt,
            wd + wv
        ));
        let b = *base.get_or_insert((wi * 1.0, wt, wd, wv));
        speed.row(&format!(
            "{p},{:.2},{:.2},{:.2},{:.2}",
            b.0 / wi,
            b.1 / wt,
            b.2 / wd,
            b.3 / wv
        ));
        if p == 1 {
            println!(
                "# single-rank total: ours {:.2}s vs TESS/DENSE {:.2}s ({:.1}x; paper ~8x)",
                wi + wt,
                wd + wv,
                (wd + wv) / (wi + wt)
            );
        }
    }
}
