//! Figure 13: the large-scale (MiraU) experiment — 233,230 fields on
//! 4,096–16,384 ranks — replayed through the discrete-event schedule
//! simulator (running 16k OS threads on one node is not possible; see
//! DESIGN.md substitutions).
//!
//! One fixed, spatially-autocorrelated population of work items is
//! re-partitioned for every rank count. A fixed sprinkling of "degenerate
//! point configurations" (items whose real cost vastly exceeds the model's
//! prediction) is irrelevant while per-rank loads are large, but at 16k
//! ranks a single degenerate item exceeds the mean rank load: the senders
//! holding them stall, their receivers idle, and the work-sharing speedup
//! drops — the knee the paper reports.
//!
//! ```text
//! cargo run --release -p dtfe-bench --bin fig13 [--scale small|medium|paper]
//! ```

use dtfe_bench::{Scale, SeriesWriter};
use dtfe_framework::eventsim::{
    normalized_std, partition_items, simulate_balanced, simulate_unbalanced, synth_global_workload,
    SimParams,
};

fn main() {
    let scale = Scale::from_args();
    let total_fields = scale.pick(65_536usize, 131_072, 233_230);
    let n_degenerate = 8;
    // Degenerate items end up ~ a few × the 16k-rank mean load: atomic
    // work that cannot be balanced away at the largest scale.
    let degenerate_factor = 12.0;
    let ranks: &[usize] = &[1024, 2048, 4096, 6144, 8192, 12288, 16384];

    println!(
        "# fig13: {total_fields} fields (event-simulated), {n_degenerate} degenerate items x{degenerate_factor:.0}"
    );
    let items = synth_global_workload(total_fields, 0.6, 0.15, n_degenerate, degenerate_factor, 9);
    let total_cost: f64 = items.iter().map(|&(_, a)| a).sum();
    println!("# total work: {total_cost:.0} cost units");

    let mut times = SeriesWriter::create(
        "fig13_times",
        "nranks,unbalanced_wall,balanced_wall,work_sharing_speedup,transfers,balanced_norm_std",
    );
    let mut speed = SeriesWriter::create("fig13_speedup", "nranks,total_speedup,ideal");
    let params = SimParams::default();
    let mut base: Option<f64> = None;
    for &p in ranks {
        let work = partition_items(&items, p);
        let unbal = simulate_unbalanced(&work);
        let bal = simulate_balanced(&work, &params);
        times.row(&format!(
            "{p},{:.1},{:.1},{:.2},{},{:.3}",
            unbal.wall,
            bal.wall,
            unbal.wall / bal.wall,
            bal.transfers,
            normalized_std(&bal.finish)
        ));
        // Total speedup normalized so the first point sits on the ideal
        // line, as the paper plots it.
        let b = *base.get_or_insert(bal.wall * ranks[0] as f64);
        speed.row(&format!("{p},{:.0},{p}", b / bal.wall));
    }
    println!(
        "# paper: ~3.6x work-sharing speedup mid-scale; total speedup near-linear \
         until 16,384 ranks where the degenerate configurations bite"
    );
}
