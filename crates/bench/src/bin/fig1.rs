//! Figure 1: "a typical surface density field computed during a strong
//! lensing study" — the largest structural object of a snapshot, rendered
//! with the DTFE marching kernel.
//!
//! Paper: 2048² grid, ~1.5 M particles in a (4 Mpc/h)³ sub-volume. This
//! harness renders a synthetic cluster with substructure at a scale chosen
//! by `--scale` and writes the log-Σ map.
//!
//! ```text
//! cargo run --release -p dtfe-bench --bin fig1 [--scale small|medium|paper]
//! ```

use dtfe_bench::{Scale, SeriesWriter};
use dtfe_core::density::{DtfeField, Mass};
use dtfe_core::grid::GridSpec2;
use dtfe_core::io::{experiments_dir, write_pgm};
use dtfe_core::marching::{surface_density_with_stats, MarchOptions};
use dtfe_nbody::datasets::cluster_with_substructure;
use std::time::Instant;

fn main() {
    let scale = Scale::from_args();
    let n_particles = scale.pick(100_000usize, 400_000, 1_500_000);
    let ng = scale.pick(256usize, 512, 2048);
    let (particles, bounds) = cluster_with_substructure(n_particles, 7);
    println!("# fig1: {} particles in (4)³, {ng}² grid", particles.len());

    let t0 = Instant::now();
    let field = DtfeField::build(&particles, Mass::Uniform(1.0)).expect("triangulation");
    let t_tri = t0.elapsed().as_secs_f64();
    let grid = GridSpec2::square(bounds.center().xy(), 4.0, ng);
    let t0 = Instant::now();
    let (sigma, stats) = surface_density_with_stats(&field, &grid, &MarchOptions::default());
    let t_render = t0.elapsed().as_secs_f64();

    let out = experiments_dir().join("fig1_cluster.pgm");
    write_pgm(&sigma, &out, true).expect("write pgm");

    let (_, hi) = sigma.min_max();
    // Minimum over covered cells (cells outside the hull footprint are 0).
    let lo = sigma
        .data
        .iter()
        .copied()
        .filter(|&v| v > 0.0)
        .fold(f64::INFINITY, f64::min);
    let mut w = SeriesWriter::create("fig1_summary", "metric,value");
    w.row(&format!("particles,{}", particles.len()));
    w.row(&format!("grid,{ng}"));
    w.row(&format!("triangulate_s,{t_tri:.2}"));
    w.row(&format!("render_s,{t_render:.2}"));
    w.row(&format!("sigma_min_covered,{lo:.4e}"));
    w.row(&format!("sigma_max,{hi:.4e}"));
    w.row(&format!("dynamic_range_dex,{:.2}", (hi / lo).log10()));
    w.row(&format!("perturbations,{}", stats.perturbations));
    println!("# map: {}", out.display());
}
