//! Figure 10: workload imbalance (normalized std of per-rank compute time)
//! vs rank count, balanced and unbalanced.
//!
//! This is the imbalance series of the galaxy-galaxy experiment; `fig9`
//! writes the same data as `fig9_imbalance.csv` alongside its timing sweep.
//! This standalone harness runs a denser rank sweep of just the imbalance
//! measurement.
//!
//! ```text
//! cargo run --release -p dtfe-bench --bin fig10 [--scale small|medium|paper]
//! ```

use dtfe_bench::experiments::measure;
use dtfe_bench::{Scale, SeriesWriter};
use dtfe_framework::{FieldRequest, FrameworkConfig};
use dtfe_geometry::{Aabb3, Vec3};
use dtfe_lensing::configs::galaxy_galaxy_centers;
use dtfe_nbody::halos::{clustered_box, ClusteredBoxSpec};

fn main() {
    let scale = Scale::from_args();
    let n_particles = scale.pick(120_000usize, 300_000, 1_000_000);
    let n_halos = scale.pick(150usize, 300, 600);
    let n_fields = scale.pick(120usize, 256, 512);
    let ranks: &[usize] = match scale {
        Scale::Small => &[2, 4, 6, 8, 12, 16],
        _ => &[2, 4, 6, 8, 12, 16, 24, 32],
    };

    let box_len = 48.0;
    let bounds = Aabb3::new(Vec3::ZERO, Vec3::splat(box_len));
    let (particles, halos) = clustered_box(&ClusteredBoxSpec {
        occupation_range: (50.0, 3_000.0),
        occupation_slope: -1.6,
        ..ClusteredBoxSpec::new(bounds, n_particles, n_halos, 1337)
    });
    let field_len = 3.0;
    let centers = galaxy_galaxy_centers(&halos, n_fields, bounds, field_len * 0.5);
    let requests: Vec<FieldRequest> = centers
        .iter()
        .map(|&c| FieldRequest { center: c })
        .collect();
    println!(
        "# fig10: {} fields over {} particles",
        requests.len(),
        particles.len()
    );

    let mut w = SeriesWriter::create(
        "fig10_imbalance",
        "nranks,balanced_norm_std,unbalanced_norm_std",
    );
    for &p in ranks {
        let cfg_b = FrameworkConfig {
            balance: true,
            ..FrameworkConfig::new(field_len, 24)
        };
        let cfg_u = FrameworkConfig {
            balance: false,
            ..FrameworkConfig::new(field_len, 24)
        };
        let (bal, _) = measure(&particles, bounds, &requests, &cfg_b, p);
        let (unbal, _) = measure(&particles, bounds, &requests, &cfg_u, p);
        w.row(&format!("{p},{:.3},{:.3}", bal.imbalance, unbal.imbalance));
    }
    println!("# paper: imbalance grows as sub-volumes shrink; work sharing holds it down");
}
