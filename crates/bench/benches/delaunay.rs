//! Criterion benches of the Delaunay substrate: construction (with the
//! Morton-order ablation from DESIGN.md), the parallel-build thread sweep,
//! and point location.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dtfe_delaunay::DelaunayBuilder;
use dtfe_geometry::Vec3;

fn cloud(n: usize, seed: u64) -> Vec<Vec3> {
    let mut s = seed;
    let mut r = move || {
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        (s.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n).map(|_| Vec3::new(r(), r(), r())).collect()
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("delaunay_build");
    group.sample_size(10);
    for &n in &[2_000usize, 10_000] {
        let pts = cloud(n, 42);
        group.bench_with_input(BenchmarkId::new("morton", n), &pts, |b, pts| {
            b.iter(|| DelaunayBuilder::new().threads(1).build(pts).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("input_order", n), &pts, |b, pts| {
            b.iter(|| {
                DelaunayBuilder::new()
                    .threads(1)
                    .spatial_sort(false)
                    .build(pts)
                    .unwrap()
            })
        });
    }
    group.finish();
}

/// The issue's scaling experiment: identical input, 1/2/4/8 builder threads.
/// Thread count 1 is the serial path; the others run the round-synchronous
/// parallel insertion, which produces the same mesh (see `parallel.rs`).
fn bench_build_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("delaunay_build_threads");
    group.sample_size(10);
    let pts = cloud(20_000, 42);
    for &threads in &[1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &pts, |b, pts| {
            b.iter(|| DelaunayBuilder::new().threads(threads).build(pts).unwrap())
        });
    }
    group.finish();
}

fn bench_locate(c: &mut Criterion) {
    let pts = cloud(20_000, 7);
    let del = DelaunayBuilder::new().build(&pts).unwrap();
    let mut group = c.benchmark_group("delaunay_locate");
    group.bench_function("cold_walk", |b| {
        let mut seed = 1u64;
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(0x9E3779B9);
            let q = Vec3::new(
                (i % 1009) as f64 / 1009.0,
                (i % 1013) as f64 / 1013.0,
                (i % 1019) as f64 / 1019.0,
            );
            del.locate_seeded(q, dtfe_delaunay::NONE, &mut seed)
        });
    });
    group.bench_function("warm_walk_nearby", |b| {
        // Remembering walk between spatially adjacent queries — the access
        // pattern of both kernels.
        let mut seed = 2u64;
        let mut hint = dtfe_delaunay::NONE;
        let mut t = 0.0f64;
        b.iter(|| {
            t += 1e-3;
            let q = Vec3::new(
                0.5 + 0.3 * (t * 1.7).sin(),
                0.5 + 0.3 * (t * 1.3).cos(),
                0.5 + 0.3 * (t * 0.7).sin(),
            );
            let loc = del.locate_seeded(q, hint, &mut seed);
            if let dtfe_delaunay::Located::Finite(f) = loc {
                hint = f;
            }
            loc
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(3));
    targets = bench_build, bench_build_threads, bench_locate
}
criterion_main!(benches);
