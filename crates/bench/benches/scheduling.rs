//! Criterion benches of the load-balancing machinery at the paper's 16k
//! rank scale: schedule construction, bin packing, and a full event-sim
//! round.

use criterion::{criterion_group, criterion_main, Criterion};
use dtfe_framework::eventsim::{
    partition_items, simulate_balanced, synth_global_workload, SimParams,
};
use dtfe_framework::sharing::{create_schedule, pack_bins, pack_bins_naive};

fn bench_scheduling(c: &mut Criterion) {
    // Heavy-tailed per-rank totals at 16,384 ranks.
    let mut s = 9u64;
    let mut rnd = move || {
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        (s.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
    };
    let times: Vec<f64> = (0..16_384).map(|_| (1.0 - rnd()).powf(-0.5)).collect();

    let mut group = c.benchmark_group("scheduling");
    group.sample_size(20);
    group.bench_function("create_schedule_16k", |b| {
        b.iter(|| create_schedule(&times).unwrap());
    });

    let items: Vec<f64> = (0..512).map(|i| 1.0 + (i % 13) as f64).collect();
    let bins: Vec<f64> = (0..64).map(|i| 10.0 + i as f64).collect();
    group.bench_function("pack_bins_ffd_512x64", |b| {
        b.iter(|| pack_bins(&items, &bins).unwrap());
    });
    group.bench_function("pack_bins_naive_512x64", |b| {
        b.iter(|| pack_bins_naive(&items, &bins).unwrap());
    });
    group.finish();

    let global = synth_global_workload(131_072, 0.6, 0.15, 8, 12.0, 3);
    let mut group = c.benchmark_group("eventsim");
    group.sample_size(10);
    group.bench_function("balanced_16k_ranks", |b| {
        b.iter(|| {
            let work = partition_items(&global, 16_384);
            simulate_balanced(&work, &SimParams::default())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_scheduling);
criterion_main!(benches);
