//! Criterion benches of the robust predicates: the static-filter ablation
//! from DESIGN.md — fast path (filter accepts) vs exact fallback
//! (degenerate inputs) vs the unfiltered float determinant.

use criterion::{criterion_group, criterion_main, Criterion};
use dtfe_geometry::predicates::{insphere, orient3d, orient3d_det};
use dtfe_geometry::Vec3;

fn bench_predicates(c: &mut Criterion) {
    // Well-separated points: the filter accepts, no exact arithmetic.
    let a = Vec3::new(0.11, 0.23, 0.37);
    let b = Vec3::new(1.03, 0.17, 0.29);
    let cc = Vec3::new(0.19, 1.07, 0.31);
    let d = Vec3::new(0.29, 0.41, 1.13);
    let e_in = Vec3::new(0.4, 0.45, 0.5);

    // Exactly degenerate (lattice) points: every call takes the exact path.
    let la = Vec3::new(0.0, 0.0, 0.0);
    let lb = Vec3::new(2.0, 4.0, 6.0);
    let lc = Vec3::new(1.0, 1.0, 1.0);
    let ld = Vec3::new(3.0, 5.0, 7.0); // la + lb + ... coplanar with (la, lb, lc)

    let mut group = c.benchmark_group("orient3d");
    group.bench_function("float_det_unfiltered", |bch| {
        bch.iter(|| orient3d_det(a, b, cc, d));
    });
    group.bench_function("filtered_fast_path", |bch| {
        bch.iter(|| orient3d(a, b, cc, d));
    });
    group.bench_function("exact_fallback_degenerate", |bch| {
        bch.iter(|| orient3d(la, lb, lc, ld));
    });
    group.finish();

    let mut group = c.benchmark_group("insphere");
    group.bench_function("filtered_fast_path", |bch| {
        bch.iter(|| insphere(a, b, cc, d, e_in));
    });
    // Cospherical cube corners: exact fallback.
    let ca = Vec3::new(1.0, 0.0, 0.0);
    let cb = Vec3::new(0.0, 0.0, 0.0);
    let ccc = Vec3::new(0.0, 1.0, 0.0);
    let cd = Vec3::new(0.0, 0.0, 1.0);
    let ce = Vec3::new(1.0, 1.0, 1.0);
    group.bench_function("exact_fallback_cospherical", |bch| {
        bch.iter(|| insphere(ca, cb, ccc, cd, ce));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(2));
    targets = bench_predicates
}
criterion_main!(benches);
