//! Criterion micro-benches of the two surface-density kernels: per-ray
//! marching vs per-column walking (the per-unit costs behind Fig. 6), plus
//! the hull-index entry query and an entry-strategy ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dtfe_core::density::{DtfeField, Mass};
use dtfe_core::grid::{GridSpec2, GridSpec3};
use dtfe_core::marching::{march_cell, HullIndex, MarchStats};
use dtfe_core::walking::walk_column;
use dtfe_geometry::{Vec2, Vec3};
use dtfe_nbody::datasets::planck_like;

fn setup(n_side: usize) -> DtfeField {
    let pts = planck_like(n_side, 16.0, 5);
    DtfeField::build(&pts, Mass::Uniform(1.0)).unwrap()
}

fn bench_kernels(c: &mut Criterion) {
    let field = setup(16); // 4096 particles
    let index = HullIndex::build(&field);
    let grid = GridSpec2::covering(Vec2::new(0.0, 0.0), Vec2::new(16.0, 16.0), 64, 64);
    let g3 = GridSpec3::lift(&grid, 0.0, 16.0, 64);

    let mut group = c.benchmark_group("kernel");
    group.bench_function("march_one_ray", |b| {
        let mut seed = 1u64;
        let mut stats = MarchStats::default();
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 7) % (64 * 64);
            let xi = grid.center(i % 64, i / 64);
            march_cell(&field, &index, xi, None, 1e-9, 16, &mut seed, &mut stats)
        });
    });
    group.bench_function("walk_one_column_nz64", |b| {
        let mut seed = 2u64;
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 7) % (64 * 64);
            walk_column(&field, &g3, i % 64, i / 64, 1, &mut seed)
        });
    });
    group.bench_function("hull_index_query", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(0x9E3779B9);
            let x = (i % 1000) as f64 / 1000.0 * 16.0;
            let y = ((i / 1000) % 1000) as f64 / 1000.0 * 16.0;
            index.query(Vec2::new(x, y))
        });
    });
    group.finish();

    // Ablation: entry location via the hull-projection index vs a fresh
    // visibility walk to the ray's start point.
    let mut group = c.benchmark_group("entry_ablation");
    let field = setup(16);
    let index = HullIndex::build(&field);
    group.bench_with_input(BenchmarkId::new("hull_index", 4096), &(), |b, _| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(0x9E3779B9);
            index.query(Vec2::new(
                (i % 997) as f64 / 997.0 * 16.0,
                (i % 991) as f64 / 991.0 * 16.0,
            ))
        });
    });
    group.bench_with_input(BenchmarkId::new("locate_walk", 4096), &(), |b, _| {
        let mut seed = 3u64;
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(0x9E3779B9);
            let p = Vec3::new(
                (i % 997) as f64 / 997.0 * 16.0,
                (i % 991) as f64 / 991.0 * 16.0,
                0.01,
            );
            field
                .delaunay()
                .locate_seeded(p, dtfe_delaunay::NONE, &mut seed)
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_kernels
}
criterion_main!(benches);
