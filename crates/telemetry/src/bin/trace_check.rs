//! CI checker for emitted telemetry artifacts.
//!
//! Usage: `trace_check <trace.json> [<metrics.json>] [--stats <stats.json>]`
//!
//! Validates that the trace is well-formed Chrome-trace JSON (balanced,
//! correctly nested B/E events with per-thread monotone timestamps); when
//! given, that the metrics document has the `ranks`/`merged` layout with
//! quantile-bearing histograms; and, with `--stats`, that a serving-tier
//! stats document is typed and versioned. Exits non-zero on any violation.

use std::process::ExitCode;

use dtfe_telemetry::check::{check_chrome_trace, check_metrics_json, check_stats_json};

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut stats_path = None;
    if let Some(pos) = args.iter().position(|a| a == "--stats") {
        if pos + 1 >= args.len() {
            eprintln!("trace_check: --stats requires a file argument");
            return ExitCode::from(2);
        }
        stats_path = Some(args.remove(pos + 1));
        args.remove(pos);
    }
    if args.is_empty() || args.len() > 2 {
        eprintln!("usage: trace_check <trace.json> [<metrics.json>] [--stats <stats.json>]");
        return ExitCode::from(2);
    }

    let trace_path = &args[0];
    let text = match std::fs::read_to_string(trace_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_check: cannot read {trace_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match check_chrome_trace(&text) {
        Ok(stats) => println!(
            "trace_check: {trace_path} OK ({} events, {} spans, {} process(es))",
            stats.events, stats.spans, stats.processes
        ),
        Err(e) => {
            eprintln!("trace_check: {trace_path} INVALID: {e}");
            return ExitCode::FAILURE;
        }
    }

    if let Some(metrics_path) = args.get(1) {
        let text = match std::fs::read_to_string(metrics_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("trace_check: cannot read {metrics_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match check_metrics_json(&text) {
            Ok(stats) => println!(
                "trace_check: {metrics_path} OK ({} rank(s), {} counters, {} gauges, {} histograms)",
                stats.ranks, stats.merged_counters, stats.merged_gauges, stats.merged_histograms
            ),
            Err(e) => {
                eprintln!("trace_check: {metrics_path} INVALID: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(stats_path) = stats_path {
        let text = match std::fs::read_to_string(&stats_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("trace_check: cannot read {stats_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match check_stats_json(&text) {
            Ok(stats) => println!(
                "trace_check: {stats_path} OK (version {}, {} histograms, {} windows)",
                stats.version, stats.histograms, stats.windows
            ),
            Err(e) => {
                eprintln!("trace_check: {stats_path} INVALID: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
