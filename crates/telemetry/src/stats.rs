//! Shared load statistics.
//!
//! Both the event-driven simulator's imbalance metric (`eventsim.rs`, the
//! paper's Fig. 10 "normalized standard deviation") and the work-sharing
//! schedule report (`sharing.rs`) summarize a vector of per-rank times.
//! They used to recompute mean/σ independently; both now call through this
//! one helper so the two numbers cannot drift.

/// Summary statistics over per-rank load (completion times, busy seconds…).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LoadSummary {
    pub n: usize,
    pub total: f64,
    pub mean: f64,
    pub min: f64,
    pub max: f64,
    /// Population standard deviation divided by the mean — the paper's
    /// Fig. 10 imbalance metric. Zero for empty input or zero mean.
    pub normalized_std: f64,
}

impl LoadSummary {
    pub fn from_times(times: &[f64]) -> LoadSummary {
        if times.is_empty() {
            return LoadSummary::default();
        }
        let n = times.len();
        let total: f64 = times.iter().sum();
        let mean = total / n as f64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut var = 0.0;
        for &t in times {
            min = min.min(t);
            max = max.max(t);
            var += (t - mean) * (t - mean);
        }
        var /= n as f64;
        let normalized_std = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
        LoadSummary {
            n,
            total,
            mean,
            min,
            max,
            normalized_std,
        }
    }
}

/// The Fig. 10 imbalance metric: population σ of `times` over its mean.
pub fn normalized_std(times: &[f64]) -> f64 {
    LoadSummary::from_times(times).normalized_std
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_uniform_are_zero() {
        assert_eq!(normalized_std(&[]), 0.0);
        assert_eq!(normalized_std(&[3.0, 3.0, 3.0]), 0.0);
    }

    #[test]
    fn summary_matches_hand_computation() {
        let s = LoadSummary::from_times(&[1.0, 3.0]);
        assert_eq!(s.n, 2);
        assert_eq!(s.total, 4.0);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.normalized_std - 0.5).abs() < 1e-12);
    }
}
