//! Validation for the emitted artifacts, shared by the `trace_check` binary
//! (CI) and the test-suite: Chrome-trace JSON must have balanced, correctly
//! nested B/E events with per-thread monotone timestamps, and the metrics
//! JSON must carry the `ranks`/`merged` structure.

use std::collections::BTreeMap;

use crate::json::Json;

/// What a valid trace contained, for reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceStats {
    pub events: usize,
    pub spans: usize,
    pub processes: usize,
}

/// Validate a Chrome-trace JSON document.
pub fn check_chrome_trace(text: &str) -> Result<TraceStats, String> {
    let doc = Json::parse(text).map_err(|e| format!("trace is not valid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .ok_or("missing traceEvents array")?;

    let mut stats = TraceStats {
        events: events.len(),
        ..Default::default()
    };
    let mut stacks: BTreeMap<(u64, u64), Vec<String>> = BTreeMap::new();
    let mut last_ts: BTreeMap<(u64, u64), f64> = BTreeMap::new();
    let mut pids: std::collections::BTreeSet<u64> = Default::default();

    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(|v| v.as_str())
            .ok_or(format!("event {i}: no ph"))?;
        let pid = ev.get("pid").and_then(|v| v.as_f64()).unwrap_or(0.0) as u64;
        let tid = ev.get("tid").and_then(|v| v.as_f64()).unwrap_or(0.0) as u64;
        pids.insert(pid);
        if ph != "B" && ph != "E" {
            continue; // metadata and counter events are unchecked
        }
        let ts = ev
            .get("ts")
            .and_then(|v| v.as_f64())
            .ok_or(format!("event {i}: B/E without ts"))?;
        let key = (pid, tid);
        let prev = last_ts.entry(key).or_insert(f64::NEG_INFINITY);
        if ts < *prev {
            return Err(format!(
                "event {i}: non-monotone ts on pid={pid} tid={tid}: {ts} < {prev}"
            ));
        }
        *prev = ts;
        let stack = stacks.entry(key).or_default();
        match ph {
            "B" => {
                let name = ev
                    .get("name")
                    .and_then(|v| v.as_str())
                    .ok_or(format!("event {i}: B without name"))?;
                stack.push(name.to_string());
                stats.spans += 1;
            }
            _ => {
                let open = stack.pop().ok_or(format!(
                    "event {i}: E without open span on pid={pid} tid={tid}"
                ))?;
                if let Some(name) = ev.get("name").and_then(|v| v.as_str()) {
                    if name != open {
                        return Err(format!(
                            "event {i}: E name '{name}' does not match open span '{open}'"
                        ));
                    }
                }
            }
        }
    }
    for ((pid, tid), stack) in &stacks {
        if !stack.is_empty() {
            return Err(format!(
                "unbalanced trace: {} span(s) never closed on pid={pid} tid={tid} (first: '{}')",
                stack.len(),
                stack[0]
            ));
        }
    }
    stats.processes = pids.len();
    Ok(stats)
}

/// What a valid metrics document contained, for reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetricsStats {
    pub ranks: usize,
    pub merged_counters: usize,
    pub merged_gauges: usize,
    pub merged_histograms: usize,
}

fn check_hist_digests(hists: &BTreeMap<String, Json>, what: &str) -> Result<(), String> {
    for (name, h) in hists {
        for key in ["count", "p50", "p90", "p99"] {
            h.get(key)
                .and_then(|v| v.as_f64())
                .ok_or(format!("{what}: histogram '{name}' missing {key}"))?;
        }
    }
    Ok(())
}

fn check_metrics_obj(v: &Json, what: &str) -> Result<(usize, usize, usize), String> {
    let counters = v
        .get("counters")
        .and_then(|c| c.as_obj())
        .ok_or(format!("{what}: missing counters object"))?;
    let gauges = v
        .get("gauges")
        .and_then(|c| c.as_obj())
        .ok_or(format!("{what}: missing gauges object"))?;
    let hists = v
        .get("histograms")
        .and_then(|c| c.as_obj())
        .ok_or(format!("{what}: missing histograms object"))?;
    check_hist_digests(hists, what)?;
    // Window sections are optional, but when present they must carry
    // quantile-bearing digests and a positive covered span.
    if let Some(w) = v.get("windows") {
        let w = w
            .as_obj()
            .ok_or(format!("{what}: windows is not an object"))?;
        check_hist_digests(w, &format!("{what} (windows)"))?;
        v.get("window_seconds")
            .and_then(|s| s.as_f64())
            .filter(|s| *s > 0.0)
            .ok_or(format!("{what}: windows without positive window_seconds"))?;
    }
    Ok((counters.len(), gauges.len(), hists.len()))
}

/// Validate a metrics JSON document as written by
/// [`crate::export::metrics_json`].
pub fn check_metrics_json(text: &str) -> Result<MetricsStats, String> {
    let doc = Json::parse(text).map_err(|e| format!("metrics not valid JSON: {e}"))?;
    let ranks = doc
        .get("ranks")
        .and_then(|v| v.as_arr())
        .ok_or("missing ranks array")?;
    for (i, r) in ranks.iter().enumerate() {
        r.get("label")
            .and_then(|v| v.as_str())
            .ok_or(format!("rank {i}: missing label"))?;
        check_metrics_obj(r, &format!("rank {i}"))?;
    }
    let merged = doc.get("merged").ok_or("missing merged object")?;
    let (c, g, h) = check_metrics_obj(merged, "merged")?;
    Ok(MetricsStats {
        ranks: ranks.len(),
        merged_counters: c,
        merged_gauges: g,
        merged_histograms: h,
    })
}

/// What a valid stats document contained, for reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsDocStats {
    pub version: u64,
    pub histograms: usize,
    pub windows: usize,
}

/// The serving counters every stats document must carry.
pub const SERVING_COUNTER_KEYS: [&str; 10] = [
    "admitted",
    "shed",
    "rejected",
    "completed",
    "deadline_dropped",
    "failed",
    "hits",
    "misses",
    "coalesced",
    "stale_served",
];

/// Validate a serving-tier stats document (the typed, versioned JSON the
/// wire `Stats` request answers): a `version`, the full set of serving
/// counters, a cache section, and — when the server runs with telemetry —
/// a metrics object whose histogram/window digests carry quantiles.
pub fn check_stats_json(text: &str) -> Result<StatsDocStats, String> {
    let doc = Json::parse(text).map_err(|e| format!("stats not valid JSON: {e}"))?;
    let version = doc
        .get("version")
        .and_then(|v| v.as_f64())
        .filter(|v| *v >= 1.0)
        .ok_or("missing or non-positive version")? as u64;
    let serving = doc
        .get("serving")
        .and_then(|v| v.as_obj())
        .ok_or("missing serving object")?;
    for key in SERVING_COUNTER_KEYS {
        serving
            .get(key)
            .and_then(|v| v.as_f64())
            .ok_or(format!("serving: missing counter '{key}'"))?;
    }
    let cache = doc
        .get("cache")
        .and_then(|v| v.as_obj())
        .ok_or("missing cache object")?;
    for key in ["resident_bytes", "budget_bytes", "entries"] {
        cache
            .get(key)
            .and_then(|v| v.as_f64())
            .ok_or(format!("cache: missing field '{key}'"))?;
    }
    let mut stats = StatsDocStats {
        version,
        ..Default::default()
    };
    if let Some(metrics) = doc.get("metrics") {
        let (_, _, h) = check_metrics_obj(metrics, "metrics")?;
        stats.histograms = h;
        stats.windows = metrics
            .get("windows")
            .and_then(|w| w.as_obj())
            .map_or(0, |w| w.len());
    }
    Ok(stats)
}
