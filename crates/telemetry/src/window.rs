//! Rotating-window metrics: histograms and gauges that answer "what was
//! p99 over the *last N seconds*" instead of "since boot".
//!
//! A window is `n` slots of `width_us` microseconds each. A slot is keyed
//! by its *epoch* (`now_us / width_us`); recording maps the current epoch
//! onto `epoch % n` and lazily resets a slot whose stored epoch is stale,
//! so rotation costs nothing when no samples arrive and there is no timer
//! thread. Reading merges every slot whose epoch is still inside the
//! window — [`WindowedHistogram::merged_at`] returns a plain
//! [`Histogram`], so all the quantile machinery (and its error bounds)
//! carries over unchanged.
//!
//! Every mutation and read takes an explicit `now_us` timestamp (the
//! convenience wrappers use [`clock::now_us`]), which makes rotation
//! boundaries deterministic under test: the same sequence of
//! `(now_us, value)` pairs always yields the same merged histogram.

use crate::clock;
use crate::metrics::Histogram;

/// One rotating slot: the samples recorded during a single epoch.
#[derive(Clone, Debug, Default)]
struct Slot {
    epoch: u64,
    hist: Histogram,
}

/// A histogram over the last `n × width` window of time.
#[derive(Clone, Debug)]
pub struct WindowedHistogram {
    width_us: u64,
    slots: Vec<Slot>,
}

impl WindowedHistogram {
    /// A window of `buckets` rotating slots, each covering `width_us`
    /// microseconds. Total coverage is `buckets × width_us`.
    pub fn new(buckets: usize, width_us: u64) -> WindowedHistogram {
        WindowedHistogram {
            width_us: width_us.max(1),
            slots: vec![Slot::default(); buckets.max(1)],
        }
    }

    /// Total time span the window covers, in microseconds.
    pub fn window_us(&self) -> u64 {
        self.width_us * self.slots.len() as u64
    }

    /// Record one sample at an explicit timestamp.
    pub fn record_at(&mut self, now_us: u64, v: u64) {
        let epoch = now_us / self.width_us;
        let idx = (epoch % self.slots.len() as u64) as usize;
        let slot = &mut self.slots[idx];
        if slot.epoch != epoch {
            // The slot last served an epoch a full rotation ago (or is
            // untouched); its samples have aged out of the window.
            slot.hist = Histogram::new();
            slot.epoch = epoch;
        }
        slot.hist.record(v);
    }

    /// Record one sample now.
    pub fn record(&mut self, v: u64) {
        self.record_at(clock::now_us(), v);
    }

    /// Record `n` occurrences of the same value at an explicit timestamp
    /// (the windowed companion of [`Histogram::record_n`]).
    pub fn record_n_at(&mut self, now_us: u64, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let epoch = now_us / self.width_us;
        let idx = (epoch % self.slots.len() as u64) as usize;
        let slot = &mut self.slots[idx];
        if slot.epoch != epoch {
            slot.hist = Histogram::new();
            slot.epoch = epoch;
        }
        slot.hist.record_n(v, n);
    }

    /// Merge every slot still inside the window ending at `now_us` into
    /// one histogram. Deterministic: slots are merged in index order and
    /// the same `(now_us, recordings)` history always yields an equal
    /// result.
    pub fn merged_at(&self, now_us: u64) -> Histogram {
        let epoch = now_us / self.width_us;
        let n = self.slots.len() as u64;
        let mut out = Histogram::new();
        for slot in &self.slots {
            // Live iff recorded within the last `n` epochs (inclusive of
            // the current one). `slot.epoch == 0` with an empty histogram
            // is the untouched initial state and merges as a no-op.
            if slot.epoch + n > epoch && slot.epoch <= epoch {
                out.merge(&slot.hist);
            }
        }
        out
    }

    /// Merge every currently-live slot into one histogram.
    pub fn merged(&self) -> Histogram {
        self.merged_at(clock::now_us())
    }
}

/// The last/min/max of a gauge over a rotating window.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GaugeWindow {
    /// Most recent value set inside the window.
    pub last: f64,
    /// Timestamp of that most recent set.
    pub last_at_us: u64,
    /// Smallest value set inside the window.
    pub min: f64,
    /// Largest value set inside the window.
    pub max: f64,
}

#[derive(Clone, Copy, Debug, Default)]
struct GaugeSlot {
    epoch: u64,
    set: bool,
    last: f64,
    last_at_us: u64,
    min: f64,
    max: f64,
}

/// A gauge whose reads cover only the last `n × width` of time — the
/// live-routing signal (`queue_depth` right now, not its all-time last
/// write from a quiet hour ago).
#[derive(Clone, Debug)]
pub struct WindowedGauge {
    width_us: u64,
    slots: Vec<GaugeSlot>,
}

impl WindowedGauge {
    pub fn new(buckets: usize, width_us: u64) -> WindowedGauge {
        WindowedGauge {
            width_us: width_us.max(1),
            slots: vec![GaugeSlot::default(); buckets.max(1)],
        }
    }

    /// Set the gauge at an explicit timestamp.
    pub fn set_at(&mut self, now_us: u64, v: f64) {
        let epoch = now_us / self.width_us;
        let idx = (epoch % self.slots.len() as u64) as usize;
        let slot = &mut self.slots[idx];
        if slot.epoch != epoch || !slot.set {
            *slot = GaugeSlot {
                epoch,
                set: true,
                last: v,
                last_at_us: now_us,
                min: v,
                max: v,
            };
            return;
        }
        slot.min = slot.min.min(v);
        slot.max = slot.max.max(v);
        if now_us >= slot.last_at_us {
            slot.last = v;
            slot.last_at_us = now_us;
        }
    }

    /// Set the gauge now.
    pub fn set(&mut self, v: f64) {
        self.set_at(clock::now_us(), v);
    }

    /// The gauge's last/min/max over the window ending at `now_us`, or
    /// `None` when nothing was set inside it.
    pub fn merged_at(&self, now_us: u64) -> Option<GaugeWindow> {
        let epoch = now_us / self.width_us;
        let n = self.slots.len() as u64;
        let mut out: Option<GaugeWindow> = None;
        for slot in &self.slots {
            if !slot.set || slot.epoch + n <= epoch || slot.epoch > epoch {
                continue;
            }
            out = Some(match out {
                None => GaugeWindow {
                    last: slot.last,
                    last_at_us: slot.last_at_us,
                    min: slot.min,
                    max: slot.max,
                },
                Some(w) => GaugeWindow {
                    last: if slot.last_at_us >= w.last_at_us {
                        slot.last
                    } else {
                        w.last
                    },
                    last_at_us: w.last_at_us.max(slot.last_at_us),
                    min: w.min.min(slot.min),
                    max: w.max.max(slot.max),
                },
            });
        }
        out
    }

    /// The gauge's window digest as of now.
    pub fn merged(&self) -> Option<GaugeWindow> {
        self.merged_at(clock::now_us())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: u64 = 1_000_000; // 1 s slots

    #[test]
    fn samples_age_out_after_one_full_window() {
        let mut h = WindowedHistogram::new(4, W);
        for i in 0..100 {
            h.record_at(10 + i, 50);
        }
        assert_eq!(h.merged_at(10 + 99).count(), 100);
        // Still inside the 4-slot window (epochs 0..=3 cover epoch 0).
        assert_eq!(h.merged_at(3 * W + 1).count(), 100);
        // Epoch 4: the samples' slot has aged out.
        assert_eq!(h.merged_at(4 * W + 1).count(), 0);
    }

    #[test]
    fn quantiles_are_correct_across_rotation_boundaries() {
        // 100 small samples in epoch 0, 10 huge ones in epoch 2: while
        // both slots are live the p50 sits in the small population and the
        // p99 in the spike; once epoch 0 rotates out, only the spike
        // remains and every quantile jumps to it.
        let mut h = WindowedHistogram::new(3, W);
        for _ in 0..100 {
            h.record_at(W / 2, 100);
        }
        for _ in 0..10 {
            h.record_at(2 * W + W / 2, 1_000_000);
        }
        let both = h.merged_at(2 * W + W / 2);
        assert_eq!(both.count(), 110);
        let p50 = both.quantile(0.5).unwrap();
        assert!((94..=107).contains(&p50), "p50={p50}");
        let p99 = both.quantile(0.99).unwrap();
        assert!(p99 >= 900_000, "p99={p99}");
        // Epoch 3: epoch 0's slot is out of the window, the spike is not.
        let spike_only = h.merged_at(3 * W + 1);
        assert_eq!(spike_only.count(), 10);
        assert!(spike_only.quantile(0.5).unwrap() >= 900_000);
        // Epoch 5: everything has aged out.
        assert!(h.merged_at(5 * W + 1).is_empty());
    }

    #[test]
    fn record_n_matches_repeated_record_and_ages_out() {
        let mut bulk = WindowedHistogram::new(3, W);
        let mut loop_h = WindowedHistogram::new(3, W);
        for (t, v, n) in [(10, 5u64, 4u64), (W + 3, 9, 2), (W + 3, 9, 0)] {
            bulk.record_n_at(t, v, n);
            for _ in 0..n {
                loop_h.record_at(t, v);
            }
        }
        assert_eq!(bulk.merged_at(W + 4), loop_h.merged_at(W + 4));
        assert_eq!(bulk.merged_at(W + 4).count(), 6);
        // After a full rotation only the epoch-1 samples remain.
        assert_eq!(bulk.merged_at(3 * W + 1).count(), 2);
    }

    #[test]
    fn slot_reuse_after_long_idle_drops_stale_samples() {
        let mut h = WindowedHistogram::new(2, W);
        h.record_at(0, 7);
        // Ten epochs later the same slot index is reused; the stale
        // samples must not leak into the new epoch.
        h.record_at(10 * W, 9);
        let m = h.merged_at(10 * W);
        assert_eq!(m.count(), 1);
        assert_eq!(m.quantile(0.5), Some(9));
    }

    #[test]
    fn merge_on_read_is_deterministic() {
        let build = || {
            let mut h = WindowedHistogram::new(4, W);
            for i in 0..1000u64 {
                h.record_at(i * 3_777, i % 97);
            }
            h
        };
        let (a, b) = (build(), build());
        for t in [0, W - 1, W, 3 * W + 123, 7 * W] {
            assert_eq!(a.merged_at(t), b.merged_at(t), "divergence at t={t}");
        }
        // Reading must not mutate: repeated reads agree.
        assert_eq!(a.merged_at(2 * W), a.merged_at(2 * W));
    }

    #[test]
    fn windowed_gauge_tracks_last_min_max_and_ages_out() {
        let mut g = WindowedGauge::new(3, W);
        assert_eq!(g.merged_at(0), None);
        g.set_at(100, 5.0);
        g.set_at(200, 1.0);
        g.set_at(W + 100, 9.0);
        let w = g.merged_at(W + 200).unwrap();
        assert_eq!(w.last, 9.0);
        assert_eq!(w.min, 1.0);
        assert_eq!(w.max, 9.0);
        // Epoch 3: epoch 0's sets are out; only the 9.0 remains.
        let w = g.merged_at(3 * W + 1).unwrap();
        assert_eq!((w.last, w.min, w.max), (9.0, 9.0, 9.0));
        // Epoch 4+: nothing in the window.
        assert_eq!(g.merged_at(4 * W + 1), None);
    }
}
