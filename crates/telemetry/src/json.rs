//! Minimal JSON support: string escaping for the exporters and a small
//! recursive-descent parser for the trace/metrics checker and tests. No
//! external crates — the workspace builds offline from `vendor/` stubs only.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Append `s` to `out` as a JSON string literal (with quotes).
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Format an `f64` as a JSON number (non-finite values become `null`).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` on a whole f64 prints no decimal point; that is still valid
        // JSON, so pass it through unchanged.
        s
    } else {
        "null".to_string()
    }
}

/// A parsed JSON value. Numbers are `f64`: plenty for microsecond
/// timestamps and metric values in traces we emit ourselves.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.num(),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn num(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{s}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            // Surrogate pairs are not emitted by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance over one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            m.insert(k, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            self.skip_ws();
            v.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_escapes() {
        let mut s = String::new();
        escape_into(&mut s, "a\"b\\c\nd\te\u{1}f");
        let parsed = Json::parse(&s).unwrap();
        assert_eq!(parsed.as_str(), Some("a\"b\\c\nd\te\u{1}f"));
    }

    #[test]
    fn parses_nested() {
        let j = Json::parse(r#"{"a": [1, 2.5, {"b": null}], "c": true}"#).unwrap();
        assert_eq!(j.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(j.get("c"), Some(&Json::Bool(true)));
    }
}
