//! Exporters: Chrome-trace JSON (viewable in Perfetto / `chrome://tracing`),
//! flat metrics JSON, and a human-readable summary table.
//!
//! Chrome-trace emission uses duration events (`ph: "B"`/`"E"`). Spans are
//! recorded as closed intervals with truthful nesting depths, so emission
//! replays them against a per-thread stack: before opening a span, every
//! stacked span that is no shallower — or that already ended — is closed.
//! Timestamps are clamped to be non-decreasing per thread (µs rounding can
//! make a child's end exceed its parent's by a tick), which yields exactly
//! the two properties the checker verifies: balanced B/E and monotone `ts`.

use std::collections::BTreeMap;
use std::fmt;

use crate::json::{escape_into, number};
use crate::metrics::{Histogram, MetricsSnapshot};
use crate::recorder::{SpanEvent, TelemetrySnapshot};

#[allow(clippy::too_many_arguments)]
fn push_event(
    out: &mut String,
    first: &mut bool,
    ph: char,
    name: &str,
    ts: u64,
    pid: usize,
    tid: u64,
    args: Option<&[(String, String)]>,
    cpu_us: Option<u64>,
) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push_str("\n{\"name\":");
    escape_into(out, name);
    out.push_str(&format!(
        ",\"ph\":\"{ph}\",\"ts\":{ts},\"pid\":{pid},\"tid\":{tid}"
    ));
    if args.is_some() || cpu_us.is_some() {
        out.push_str(",\"args\":{");
        let mut afirst = true;
        if let Some(cpu) = cpu_us {
            out.push_str(&format!("\"cpu_us\":{cpu}"));
            afirst = false;
        }
        for (k, v) in args.unwrap_or(&[]) {
            if !afirst {
                out.push(',');
            }
            afirst = false;
            escape_into(out, k);
            out.push(':');
            escape_into(out, v);
        }
        out.push('}');
    }
    out.push('}');
}

/// Render snapshots (one per rank) as one Chrome-trace JSON document.
/// `pid` is the snapshot index, `tid` the recorder-local thread id.
pub fn chrome_trace(snaps: &[TelemetrySnapshot]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for (pid, snap) in snaps.iter().enumerate() {
        // Process metadata so Perfetto shows rank labels.
        push_event(
            &mut out,
            &mut first,
            'M',
            "process_name",
            0,
            pid,
            0,
            None,
            None,
        );
        // (the args of the metadata event carry the label)
        out.pop(); // '}'
        out.push_str(",\"args\":{\"name\":");
        escape_into(&mut out, &snap.label);
        out.push_str("}}");

        let mut by_tid: BTreeMap<u64, Vec<&SpanEvent>> = BTreeMap::new();
        for s in &snap.spans {
            by_tid.entry(s.tid).or_default().push(s);
        }
        for (tid, mut spans) in by_tid {
            spans.sort_by(|a, b| {
                (a.t0_us, a.depth, std::cmp::Reverse(a.dur_us)).cmp(&(
                    b.t0_us,
                    b.depth,
                    std::cmp::Reverse(b.dur_us),
                ))
            });
            let mut stack: Vec<(&SpanEvent, u64)> = Vec::new();
            let mut last_ts = 0u64;
            for s in spans {
                let s_end = s.end_us();
                while let Some(&(top, tend)) = stack.last() {
                    if top.depth >= s.depth || tend <= s.t0_us {
                        let ts = tend.min(s.t0_us).max(last_ts);
                        push_event(
                            &mut out, &mut first, 'E', &top.name, ts, pid, tid, None, None,
                        );
                        last_ts = ts;
                        stack.pop();
                    } else {
                        break;
                    }
                }
                let ts = s.t0_us.max(last_ts);
                push_event(
                    &mut out,
                    &mut first,
                    'B',
                    &s.name,
                    ts,
                    pid,
                    tid,
                    Some(&s.args),
                    Some(s.cpu_us),
                );
                last_ts = ts;
                stack.push((s, s_end));
            }
            while let Some((top, tend)) = stack.pop() {
                let ts = tend.max(last_ts);
                push_event(
                    &mut out, &mut first, 'E', &top.name, ts, pid, tid, None, None,
                );
                last_ts = ts;
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

fn hist_json(out: &mut String, h: &Histogram) {
    out.push_str(&format!(
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
        h.count(),
        h.sum(),
        h.min(),
        h.max(),
        number(h.mean()),
        h.quantile(0.50).unwrap_or(0),
        h.quantile(0.90).unwrap_or(0),
        h.quantile(0.99).unwrap_or(0),
    ));
}

fn metrics_obj(out: &mut String, label: Option<&str>, m: &MetricsSnapshot) {
    out.push('{');
    if let Some(label) = label {
        out.push_str("\"label\":");
        escape_into(out, label);
        out.push(',');
    }
    out.push_str("\"counters\":{");
    let mut first = true;
    for (k, v) in &m.counters {
        if !first {
            out.push(',');
        }
        first = false;
        escape_into(out, k);
        out.push_str(&format!(":{v}"));
    }
    out.push_str("},\"gauges\":{");
    let mut first = true;
    for (k, v) in &m.gauges {
        if !first {
            out.push(',');
        }
        first = false;
        escape_into(out, k);
        out.push(':');
        out.push_str(&number(*v));
    }
    out.push_str("},\"histograms\":{");
    let mut first = true;
    for (k, h) in &m.histograms {
        if !first {
            out.push(',');
        }
        first = false;
        escape_into(out, k);
        out.push(':');
        hist_json(out, h);
    }
    out.push('}');
    // Rotating-window sections appear only for recorders with windowing
    // configured, so documents from window-free recorders are unchanged.
    if m.window_seconds > 0.0 || !m.windows.is_empty() {
        out.push_str(&format!(
            ",\"window_seconds\":{},\"windows\":{{",
            number(m.window_seconds)
        ));
        let mut first = true;
        for (k, h) in &m.windows {
            if !first {
                out.push(',');
            }
            first = false;
            escape_into(out, k);
            out.push(':');
            hist_json(out, h);
        }
        out.push_str("},\"window_gauges\":{");
        let mut first = true;
        for (k, v) in &m.window_gauges {
            if !first {
                out.push(',');
            }
            first = false;
            escape_into(out, k);
            out.push(':');
            out.push_str(&number(*v));
        }
        out.push('}');
    }
    out.push('}');
}

/// Render one metrics snapshot as a standalone JSON object
/// (`{"counters": {...}, "gauges": {...}, "histograms": {...}}`) — the
/// building block benches embed inside their own report documents.
pub fn metrics_object(m: &MetricsSnapshot) -> String {
    let mut out = String::new();
    metrics_obj(&mut out, None, m);
    out
}

/// Merge per-rank metrics into one cluster-wide snapshot (counters and
/// histograms add; gauges sum — see [`MetricsSnapshot::merge_from`]).
pub fn merged_metrics(snaps: &[TelemetrySnapshot]) -> MetricsSnapshot {
    let mut merged = MetricsSnapshot::default();
    for s in snaps {
        merged.merge_from(&s.metrics);
    }
    merged
}

/// Render snapshots (one per rank) as the flat metrics JSON document:
/// `{"ranks": [{label, counters, gauges, histograms}...], "merged": {...}}`.
pub fn metrics_json(snaps: &[TelemetrySnapshot]) -> String {
    let mut out = String::from("{\"ranks\":[");
    for (i, s) in snaps.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        metrics_obj(&mut out, Some(&s.label), &s.metrics);
    }
    out.push_str("\n],\"merged\":");
    metrics_obj(&mut out, None, &merged_metrics(snaps));
    out.push_str("}\n");
    out
}

/// Human-readable summary table over a set of per-rank snapshots:
/// `println!("{}", Summary(&snaps))`.
pub struct Summary<'a>(pub &'a [TelemetrySnapshot]);

impl fmt::Display for Summary<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let merged = merged_metrics(self.0);
        writeln!(f, "== telemetry summary ({} rank(s)) ==", self.0.len())?;

        // Span roll-up: total wall/cpu and count per span name.
        let mut by_name: BTreeMap<&str, (u64, u64, u64)> = BTreeMap::new();
        for snap in self.0 {
            for s in &snap.spans {
                let e = by_name.entry(&s.name).or_insert((0, 0, 0));
                e.0 += s.dur_us;
                e.1 += s.cpu_us;
                e.2 += 1;
            }
        }
        if !by_name.is_empty() {
            writeln!(f, "spans (name: count, wall s, cpu s):")?;
            let mut rows: Vec<_> = by_name.into_iter().collect();
            rows.sort_by_key(|&(_, (wall, _, _))| std::cmp::Reverse(wall));
            for (name, (wall, cpu, n)) in rows {
                writeln!(
                    f,
                    "  {name:<28} {n:>7}  {:>9.3}  {:>9.3}",
                    wall as f64 * 1e-6,
                    cpu as f64 * 1e-6
                )?;
            }
        }
        if !merged.counters.is_empty() {
            writeln!(f, "counters:")?;
            for (k, v) in &merged.counters {
                writeln!(f, "  {k:<40} {v:>12}")?;
            }
        }
        if !merged.gauges.is_empty() {
            writeln!(f, "gauges (summed across ranks):")?;
            for (k, v) in &merged.gauges {
                writeln!(f, "  {k:<40} {v:>12.6}")?;
            }
        }
        if !merged.histograms.is_empty() {
            writeln!(f, "histograms (count / p50 / p90 / p99 / max):")?;
            for (k, h) in &merged.histograms {
                writeln!(
                    f,
                    "  {k:<32} {:>8} {:>8} {:>8} {:>8} {:>8}",
                    h.count(),
                    h.quantile(0.50).unwrap_or(0),
                    h.quantile(0.90).unwrap_or(0),
                    h.quantile(0.99).unwrap_or(0),
                    h.max()
                )?;
            }
        }
        Ok(())
    }
}
