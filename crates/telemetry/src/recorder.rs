//! The recorder: sharded per-thread buffers behind a thread-local (or
//! process-global) install, plus the RAII [`SpanGuard`].
//!
//! Design constraints, in order:
//!
//! 1. **Disabled must be ~free.** Every macro first loads one global atomic
//!    (`INSTALL_COUNT`); when no recorder is installed anywhere that is the
//!    entire cost, so hot paths (geometry predicates, per-LOS marching) can
//!    stay instrumented unconditionally.
//! 2. **Enabled must stay off the lock.** Each thread resolves its shard
//!    once and caches the `Arc` in TLS; a counter increment is then a TLS
//!    read plus one relaxed atomic add. Histograms and spans go through an
//!    uncontended per-shard mutex (only the snapshot reader ever competes).
//! 3. **Ranks are threads.** The cluster simulator runs each rank on its own
//!    OS thread, so `Recorder::install()` is thread-local and each rank gets
//!    an isolated registry; `install_global()` exists for single-process
//!    profiling where rayon workers should land in the same recorder.
//!
//! Metric names are interned process-wide into dense ids (one table per
//! metric kind) so shards can use plain slot arrays instead of hash maps.

use std::cell::RefCell;
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::clock;
use crate::metrics::{Histogram, MetricsSnapshot};
use crate::window::{WindowedGauge, WindowedHistogram};

/// Maximum distinct metric names per kind. Interning past the cap silently
/// drops the metric (returns an out-of-range id) rather than panicking.
pub const COUNTER_CAP: usize = 256;
pub const GAUGE_CAP: usize = 128;
pub const HIST_CAP: usize = 128;

static INSTALL_COUNT: AtomicUsize = AtomicUsize::new(0);
static NEXT_RECORDER_ID: AtomicU64 = AtomicU64::new(1);
/// Bumped whenever the global recorder changes so TLS shard caches revalidate.
static GLOBAL_VERSION: AtomicU64 = AtomicU64::new(0);

fn global_slot() -> &'static Mutex<Option<Recorder>> {
    static GLOBAL: OnceLock<Mutex<Option<Recorder>>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(None))
}

/// Is any recorder installed anywhere in the process? This is the macro
/// fast-path gate: a single relaxed atomic load.
#[inline]
pub fn is_enabled() -> bool {
    INSTALL_COUNT.load(Ordering::Relaxed) != 0
}

// ---------------------------------------------------------------------------
// Name interning
// ---------------------------------------------------------------------------

#[derive(Default)]
struct NameTable {
    ids: HashMap<String, usize>,
    names: Vec<String>,
    cap: usize,
}

impl NameTable {
    fn intern(&mut self, name: &str) -> usize {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len();
        if id >= self.cap {
            return usize::MAX;
        }
        self.names.push(name.to_string());
        self.ids.insert(name.to_string(), id);
        id
    }
}

struct Names {
    counters: NameTable,
    gauges: NameTable,
    hists: NameTable,
}

fn names() -> &'static Mutex<Names> {
    static NAMES: OnceLock<Mutex<Names>> = OnceLock::new();
    NAMES.get_or_init(|| {
        Mutex::new(Names {
            counters: NameTable {
                cap: COUNTER_CAP,
                ..Default::default()
            },
            gauges: NameTable {
                cap: GAUGE_CAP,
                ..Default::default()
            },
            hists: NameTable {
                cap: HIST_CAP,
                ..Default::default()
            },
        })
    })
}

/// Intern a counter name into a dense id. Call-sites cache the result in a
/// `OnceLock` (the macros do this), so the lock here is taken once per site.
pub fn register_counter(name: &str) -> usize {
    names().lock().unwrap().counters.intern(name)
}

pub fn register_gauge(name: &str) -> usize {
    names().lock().unwrap().gauges.intern(name)
}

pub fn register_histogram(name: &str) -> usize {
    names().lock().unwrap().hists.intern(name)
}

// ---------------------------------------------------------------------------
// Shards and the recorder
// ---------------------------------------------------------------------------

/// One span, as recorded: a closed interval on the process-wide timeline
/// plus the thread-CPU time it consumed and its nesting depth.
#[derive(Clone, Debug)]
pub struct SpanEvent {
    pub name: String,
    /// Recorder-local thread id (shard index) — the Chrome-trace `tid`.
    pub tid: u64,
    /// Nesting depth at entry (0 = outermost on its thread).
    pub depth: u32,
    /// Microseconds since the process telemetry epoch.
    pub t0_us: u64,
    pub dur_us: u64,
    pub cpu_us: u64,
    pub args: Vec<(String, String)>,
}

impl SpanEvent {
    pub fn end_us(&self) -> u64 {
        self.t0_us + self.dur_us
    }
}

struct Shard {
    tid: u64,
    /// Rotating-window shape `(buckets, width_us)` copied from the owning
    /// recorder; `(0, _)` disables windowing on this shard.
    window: (usize, u64),
    counters: Box<[AtomicU64]>,
    gauges: Mutex<Vec<Option<f64>>>,
    hists: Mutex<Vec<Option<Histogram>>>,
    /// Rotating-window companions of `hists`/`gauges`, same dense ids.
    whists: Mutex<Vec<Option<WindowedHistogram>>>,
    wgauges: Mutex<Vec<Option<WindowedGauge>>>,
    spans: Mutex<Vec<SpanEvent>>,
}

impl Shard {
    fn new(tid: u64, window: (usize, u64)) -> Self {
        Shard {
            tid,
            window,
            counters: (0..COUNTER_CAP).map(|_| AtomicU64::new(0)).collect(),
            gauges: Mutex::new(vec![None; GAUGE_CAP]),
            hists: Mutex::new((0..HIST_CAP).map(|_| None).collect()),
            whists: Mutex::new((0..HIST_CAP).map(|_| None).collect()),
            wgauges: Mutex::new((0..GAUGE_CAP).map(|_| None).collect()),
            spans: Mutex::new(Vec::new()),
        }
    }
}

struct RecorderInner {
    id: u64,
    label: String,
    /// Rotating-window shape `(buckets, width_us)` for windowed metrics;
    /// `(0, _)` records cumulative metrics only.
    window: (usize, u64),
    shards: Mutex<Vec<Arc<Shard>>>,
}

/// A telemetry sink: spans and metrics recorded by every thread it is
/// installed on. Cheap to clone (an `Arc`).
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<RecorderInner>,
}

/// Everything one recorder saw, gathered for export: the per-rank unit that
/// `run_distributed*` collects into its `RunReport`.
#[derive(Clone, Debug, Default)]
pub struct TelemetrySnapshot {
    /// Recorder label, e.g. `rank3`.
    pub label: String,
    /// All spans from all shards, sorted by `(t0_us, depth)`.
    pub spans: Vec<SpanEvent>,
    pub metrics: MetricsSnapshot,
}

impl TelemetrySnapshot {
    /// Total wall time covered by spans at the given depth, in seconds.
    pub fn span_wall_s(&self, depth: u32) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.depth == depth)
            .map(|s| s.dur_us as f64 * 1e-6)
            .sum()
    }

    /// Total thread-CPU time covered by spans at the given depth, in seconds.
    pub fn span_cpu_s(&self, depth: u32) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.depth == depth)
            .map(|s| s.cpu_us as f64 * 1e-6)
            .sum()
    }
}

impl Recorder {
    /// Default recorder: cumulative metrics plus a 10 × 1 s rotating
    /// window (so live quantiles work out of the box).
    pub fn new(label: &str) -> Recorder {
        Recorder::with_windows(label, 10, std::time::Duration::from_secs(1))
    }

    /// A recorder whose histograms and gauges also feed a rotating window
    /// of `buckets × width` (see [`crate::window`]). `buckets = 0`
    /// disables windowing entirely.
    pub fn with_windows(label: &str, buckets: usize, width: std::time::Duration) -> Recorder {
        Recorder {
            inner: Arc::new(RecorderInner {
                id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed),
                label: label.to_string(),
                window: (buckets, (width.as_micros() as u64).max(1)),
                shards: Mutex::new(Vec::new()),
            }),
        }
    }

    pub fn label(&self) -> &str {
        &self.inner.label
    }

    fn shard_for_current_thread(&self) -> Arc<Shard> {
        let mut shards = self.inner.shards.lock().unwrap();
        let shard = Arc::new(Shard::new(shards.len() as u64, self.inner.window));
        shards.push(shard.clone());
        shard
    }

    /// Install this recorder for the **calling thread** until the returned
    /// guard is dropped. Nested installs restore the previous recorder.
    #[must_use = "telemetry is recorded only while the guard is alive"]
    pub fn install(&self) -> InstallGuard {
        let prev = TLS.with(|cell| {
            let mut t = cell.borrow_mut();
            t.cache = None;
            t.local.replace(self.clone())
        });
        INSTALL_COUNT.fetch_add(1, Ordering::Relaxed);
        InstallGuard {
            prev,
            _not_send: PhantomData,
        }
    }

    /// Install this recorder as the **process-wide fallback** for threads
    /// without a thread-local install (e.g. rayon workers). Single-process
    /// profiling convenience; per-rank runs use `install()`.
    #[must_use = "telemetry is recorded only while the guard is alive"]
    pub fn install_global(&self) -> GlobalInstallGuard {
        let prev = global_slot().lock().unwrap().replace(self.clone());
        GLOBAL_VERSION.fetch_add(1, Ordering::Relaxed);
        INSTALL_COUNT.fetch_add(1, Ordering::Relaxed);
        GlobalInstallGuard { prev }
    }

    /// Gather every shard into one snapshot. Safe to call while threads are
    /// still recording (they will simply miss the snapshot), but the usual
    /// pattern is: run, drop the install guard, snapshot.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let (counter_names, gauge_names, hist_names) = {
            let n = names().lock().unwrap();
            (
                n.counters.names.clone(),
                n.gauges.names.clone(),
                n.hists.names.clone(),
            )
        };
        let mut metrics = MetricsSnapshot::default();
        let (wbuckets, wwidth_us) = self.inner.window;
        if wbuckets > 0 {
            metrics.window_seconds = (wbuckets as u64 * wwidth_us) as f64 * 1e-6;
        }
        // One read timestamp for every shard, so the merged window is a
        // consistent cut across threads.
        let now_us = clock::now_us();
        // Most recent set per windowed gauge across shards.
        let mut wgauge_latest: std::collections::BTreeMap<String, (u64, f64)> = Default::default();
        let mut spans = Vec::new();
        let shards = self.inner.shards.lock().unwrap();
        for shard in shards.iter() {
            for (id, slot) in shard.counters.iter().enumerate() {
                let v = slot.load(Ordering::Relaxed);
                if v != 0 {
                    if let Some(name) = counter_names.get(id) {
                        *metrics.counters.entry(name.clone()).or_insert(0) += v;
                    }
                }
            }
            for (id, slot) in shard.gauges.lock().unwrap().iter().enumerate() {
                if let Some(v) = slot {
                    if let Some(name) = gauge_names.get(id) {
                        // Last shard writer wins within one recorder; ranks
                        // install on exactly one thread so this is unambiguous.
                        metrics.gauges.insert(name.clone(), *v);
                    }
                }
            }
            for (id, slot) in shard.hists.lock().unwrap().iter().enumerate() {
                if let Some(h) = slot {
                    if let Some(name) = hist_names.get(id) {
                        metrics.histograms.entry(name.clone()).or_default().merge(h);
                    }
                }
            }
            for (id, slot) in shard.whists.lock().unwrap().iter().enumerate() {
                if let Some(wh) = slot {
                    if let Some(name) = hist_names.get(id) {
                        let merged = wh.merged_at(now_us);
                        if !merged.is_empty() {
                            metrics
                                .windows
                                .entry(name.clone())
                                .or_default()
                                .merge(&merged);
                        }
                    }
                }
            }
            for (id, slot) in shard.wgauges.lock().unwrap().iter().enumerate() {
                if let Some(wg) = slot {
                    if let Some(name) = gauge_names.get(id) {
                        if let Some(w) = wg.merged_at(now_us) {
                            let e = wgauge_latest.entry(name.clone()).or_insert((0, w.last));
                            if w.last_at_us >= e.0 {
                                *e = (w.last_at_us, w.last);
                            }
                        }
                    }
                }
            }
            spans.extend(shard.spans.lock().unwrap().iter().cloned());
        }
        for (name, (_, v)) in wgauge_latest {
            metrics.window_gauges.insert(name, v);
        }
        spans.sort_by_key(|s| (s.t0_us, s.depth));
        TelemetrySnapshot {
            label: self.inner.label.clone(),
            spans,
            metrics,
        }
    }
}

/// Guard for a thread-local install; restores the previous recorder on drop.
pub struct InstallGuard {
    prev: Option<Recorder>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        TLS.with(|cell| {
            let mut t = cell.borrow_mut();
            t.local = self.prev.take();
            t.cache = None;
        });
        INSTALL_COUNT.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Guard for a process-global install; restores the previous global on drop.
pub struct GlobalInstallGuard {
    prev: Option<Recorder>,
}

impl Drop for GlobalInstallGuard {
    fn drop(&mut self) {
        *global_slot().lock().unwrap() = self.prev.take();
        GLOBAL_VERSION.fetch_add(1, Ordering::Relaxed);
        INSTALL_COUNT.fetch_sub(1, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Thread-local state
// ---------------------------------------------------------------------------

struct ShardCache {
    recorder_id: u64,
    global_version: u64,
    /// `None` caches "this thread has no recorder" so uninstrumented
    /// threads do not retake the global lock on every event.
    shard: Option<Arc<Shard>>,
}

struct Tls {
    local: Option<Recorder>,
    cache: Option<ShardCache>,
    depth: u32,
}

thread_local! {
    static TLS: RefCell<Tls> = const {
        RefCell::new(Tls { local: None, cache: None, depth: 0 })
    };
}

fn with_shard<R>(f: impl FnOnce(&Shard) -> R) -> Option<R> {
    TLS.with(|cell| {
        let mut t = cell.borrow_mut();
        let t = &mut *t;
        let gv = GLOBAL_VERSION.load(Ordering::Relaxed);
        if let Some(c) = &t.cache {
            let valid = match &t.local {
                Some(r) => c.recorder_id == r.inner.id,
                None => c.global_version == gv,
            };
            if valid {
                return c.shard.as_deref().map(f);
            }
        }
        let rec = t
            .local
            .clone()
            .or_else(|| global_slot().lock().unwrap().clone());
        match rec {
            Some(r) => {
                let shard = r.shard_for_current_thread();
                let out = f(&shard);
                t.cache = Some(ShardCache {
                    recorder_id: r.inner.id,
                    global_version: gv,
                    shard: Some(shard),
                });
                Some(out)
            }
            None => {
                t.cache = Some(ShardCache {
                    recorder_id: 0,
                    global_version: gv,
                    shard: None,
                });
                None
            }
        }
    })
}

// ---------------------------------------------------------------------------
// Recording entry points (called by the macros)
// ---------------------------------------------------------------------------

#[inline]
pub fn record_counter(id: usize, n: u64) {
    if id >= COUNTER_CAP {
        return;
    }
    with_shard(|s| s.counters[id].fetch_add(n, Ordering::Relaxed));
}

#[inline]
pub fn record_gauge(id: usize, v: f64) {
    if id >= GAUGE_CAP {
        return;
    }
    with_shard(|s| {
        s.gauges.lock().unwrap()[id] = Some(v);
        let (buckets, width_us) = s.window;
        if buckets > 0 {
            s.wgauges.lock().unwrap()[id]
                .get_or_insert_with(|| WindowedGauge::new(buckets, width_us))
                .set(v);
        }
    });
}

#[inline]
pub fn record_histogram(id: usize, v: u64) {
    if id >= HIST_CAP {
        return;
    }
    with_shard(|s| {
        s.hists.lock().unwrap()[id]
            .get_or_insert_with(Histogram::new)
            .record(v);
        let (buckets, width_us) = s.window;
        if buckets > 0 {
            s.whists.lock().unwrap()[id]
                .get_or_insert_with(|| WindowedHistogram::new(buckets, width_us))
                .record(v);
        }
    });
}

/// Bulk form of [`record_histogram`]: `n` occurrences of the same value in
/// one registry visit. The packet marching kernel tallies lanes-per-step in
/// a local array during the render and dumps each bin through here once,
/// instead of calling `record_histogram` millions of times from the hot loop.
#[inline]
pub fn record_histogram_n(id: usize, v: u64, n: u64) {
    if id >= HIST_CAP || n == 0 {
        return;
    }
    with_shard(|s| {
        s.hists.lock().unwrap()[id]
            .get_or_insert_with(Histogram::new)
            .record_n(v, n);
        let (buckets, width_us) = s.window;
        if buckets > 0 {
            let now_us = clock::now_us();
            let wh = &mut s.whists.lock().unwrap()[id];
            let wh = wh.get_or_insert_with(|| WindowedHistogram::new(buckets, width_us));
            wh.record_n_at(now_us, v, n);
        }
    });
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// Wall and thread-CPU seconds measured by a finished span.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SpanTimes {
    pub wall_s: f64,
    pub cpu_s: f64,
}

/// RAII span: measures wall + thread-CPU time from construction to drop and
/// (when a recorder is installed on this thread) records a [`SpanEvent`].
///
/// The clocks are read unconditionally, so a guard also works as a plain
/// timer via [`SpanGuard::end`] / [`SpanGuard::cpu_elapsed`] with telemetry
/// disabled — this is what replaced the framework's private `BusyTimer`.
pub struct SpanGuard {
    name: &'static str,
    args: Vec<(String, String)>,
    wall0: Instant,
    cpu0_us: u64,
    t0_us: u64,
    depth: u32,
    recording: bool,
    _not_send: PhantomData<*const ()>,
}

impl SpanGuard {
    pub fn enter(name: &'static str, args: Vec<(String, String)>) -> SpanGuard {
        let recording = is_enabled() && with_shard(|_| ()).is_some();
        let (t0_us, depth) = if recording {
            let d = TLS.with(|cell| {
                let mut t = cell.borrow_mut();
                let d = t.depth;
                t.depth += 1;
                d
            });
            (clock::now_us(), d)
        } else {
            (0, 0)
        };
        SpanGuard {
            name,
            args,
            wall0: Instant::now(),
            cpu0_us: clock::thread_cpu_us(),
            t0_us,
            depth,
            recording,
            _not_send: PhantomData,
        }
    }

    /// Wall seconds elapsed so far.
    pub fn wall_elapsed(&self) -> f64 {
        self.wall0.elapsed().as_secs_f64()
    }

    /// Thread-CPU seconds elapsed so far.
    pub fn cpu_elapsed(&self) -> f64 {
        (clock::thread_cpu_us().saturating_sub(self.cpu0_us)) as f64 * 1e-6
    }

    /// Close the span, returning its measured times (and recording it).
    pub fn end(self) -> SpanTimes {
        SpanTimes {
            wall_s: self.wall_elapsed(),
            cpu_s: self.cpu_elapsed(),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.recording {
            return;
        }
        let dur_us = clock::now_us().saturating_sub(self.t0_us);
        let cpu_us = clock::thread_cpu_us().saturating_sub(self.cpu0_us);
        let event_args = std::mem::take(&mut self.args);
        let name = self.name;
        let (t0_us, depth) = (self.t0_us, self.depth);
        with_shard(move |s| {
            s.spans.lock().unwrap().push(SpanEvent {
                name: name.to_string(),
                tid: s.tid,
                depth,
                t0_us,
                dur_us,
                cpu_us,
                args: event_args,
            })
        });
        TLS.with(|cell| {
            let mut t = cell.borrow_mut();
            t.depth = t.depth.saturating_sub(1);
        });
    }
}
