//! # dtfe-telemetry
//!
//! Structured tracing and metrics for the DTFE pipeline: RAII spans with
//! wall + thread-CPU time, a counters/gauges/histograms registry, and
//! exporters to Chrome-trace JSON (Perfetto), flat metrics JSON, and a
//! human summary table. std-only; the single dependency is the vendored
//! `libc` stub for `CLOCK_THREAD_CPUTIME_ID`.
//!
//! ## Model
//!
//! A [`Recorder`] is a sink. Installing it — thread-locally with
//! [`Recorder::install`] (the per-rank pattern used by the cluster
//! simulator) or process-wide with [`Recorder::install_global`] — routes
//! the recording macros on the covered threads into sharded per-thread
//! buffers. With *no* recorder installed every macro short-circuits on one
//! relaxed atomic load, so instrumentation can stay in hot paths.
//!
//! ```
//! use dtfe_telemetry::{counter_add, hist_record, span, Recorder};
//!
//! let rec = Recorder::new("rank0");
//! {
//!     let _g = rec.install();
//!     let sp = span!("triangulate", n = 4096);
//!     counter_add!("delaunay.points_inserted", 4096);
//!     hist_record!("delaunay.points_per_round", 128);
//!     let times = sp.end(); // SpanTimes { wall_s, cpu_s }
//!     assert!(times.wall_s >= 0.0);
//! }
//! let snap = rec.snapshot();
//! assert_eq!(snap.metrics.counter("delaunay.points_inserted"), 4096);
//! println!("{}", dtfe_telemetry::export::chrome_trace(&[snap]));
//! ```
//!
//! Metric names follow `subsystem.verb_noun` (see DESIGN.md
//! "Observability" for the taxonomy).

pub mod check;
pub mod clock;
pub mod export;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod recorder;
pub mod stats;
pub mod window;

pub use export::{chrome_trace, merged_metrics, metrics_json, metrics_object, Summary};
pub use flight::{FlightRecorder, RequestTrace};
pub use metrics::{Histogram, MetricsSnapshot};
pub use recorder::{
    is_enabled, GlobalInstallGuard, InstallGuard, Recorder, SpanEvent, SpanGuard, SpanTimes,
    TelemetrySnapshot,
};
pub use stats::{normalized_std, LoadSummary};
pub use window::{GaugeWindow, WindowedGauge, WindowedHistogram};

/// Open a span: `span!("name")` or `span!("name", key = value, ...)`.
/// Returns a [`SpanGuard`] that records on drop; bind it (`let sp = ...`)
/// or the span closes immediately. Argument values use `Display` and are
/// only formatted when telemetry is enabled.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name, ::std::vec::Vec::new())
    };
    ($name:expr, $($key:ident = $val:expr),+ $(,)?) => {{
        let args = if $crate::is_enabled() {
            ::std::vec![$(
                (::std::string::String::from(stringify!($key)),
                 ::std::format!("{}", $val))
            ),+]
        } else {
            ::std::vec::Vec::new()
        };
        $crate::SpanGuard::enter($name, args)
    }};
}

/// Add `n` to the named counter. Free when telemetry is disabled; one TLS
/// lookup + relaxed atomic add when enabled (name interned once per site).
#[macro_export]
macro_rules! counter_add {
    ($name:expr, $n:expr) => {
        if $crate::is_enabled() {
            static __DTFE_TELEMETRY_ID: ::std::sync::OnceLock<usize> = ::std::sync::OnceLock::new();
            let id = *__DTFE_TELEMETRY_ID.get_or_init(|| $crate::recorder::register_counter($name));
            $crate::recorder::record_counter(id, $n as u64);
        }
    };
}

/// Set the named gauge to an `f64` value (last write per rank wins).
#[macro_export]
macro_rules! gauge_set {
    ($name:expr, $v:expr) => {
        if $crate::is_enabled() {
            static __DTFE_TELEMETRY_ID: ::std::sync::OnceLock<usize> = ::std::sync::OnceLock::new();
            let id = *__DTFE_TELEMETRY_ID.get_or_init(|| $crate::recorder::register_gauge($name));
            $crate::recorder::record_gauge(id, $v as f64);
        }
    };
}

/// Record one `u64` sample into the named log-linear histogram.
#[macro_export]
macro_rules! hist_record {
    ($name:expr, $v:expr) => {
        if $crate::is_enabled() {
            static __DTFE_TELEMETRY_ID: ::std::sync::OnceLock<usize> = ::std::sync::OnceLock::new();
            let id =
                *__DTFE_TELEMETRY_ID.get_or_init(|| $crate::recorder::register_histogram($name));
            $crate::recorder::record_histogram(id, $v as u64);
        }
    };
}

/// Record `n` occurrences of the same sample value into the named histogram
/// in one registry visit — for callers that tallied a dense local histogram
/// (e.g. lanes-per-step counts) and flush it after the hot loop.
#[macro_export]
macro_rules! hist_record_n {
    ($name:expr, $v:expr, $n:expr) => {
        if $crate::is_enabled() {
            static __DTFE_TELEMETRY_ID: ::std::sync::OnceLock<usize> = ::std::sync::OnceLock::new();
            let id =
                *__DTFE_TELEMETRY_ID.get_or_init(|| $crate::recorder::register_histogram($name));
            $crate::recorder::record_histogram_n(id, $v as u64, $n as u64);
        }
    };
}
