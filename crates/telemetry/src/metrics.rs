//! Metric value types: counters and gauges are plain numbers held by the
//! recorder shards; this module implements the log-linear-bucket histogram
//! and the merged [`MetricsSnapshot`] they are all gathered into.
//!
//! The histogram uses HDR-style log-linear buckets: values below 16 get one
//! exact bucket each, and every subsequent power of two is split into 16
//! linear sub-buckets, bounding the relative quantile error at 1/16 ≈ 6.25%
//! while keeping `record` branch-free enough for hot paths (a shift, a mask
//! and one `Vec` index). Quantile representatives are clamped into the
//! observed `[min, max]` range so single-sample histograms report exactly.

use std::collections::BTreeMap;

/// Linear sub-buckets per power of two (log2).
const SUB_BITS: u32 = 4;
const SUB: u64 = 1 << SUB_BITS; // 16

/// Bucket index for a recorded value. Monotone in `v`; exact for `v < 16`.
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros(); // >= SUB_BITS
        let shift = msb - SUB_BITS;
        let sub = (v >> shift) & (SUB - 1);
        (SUB as usize) * (shift as usize) + SUB as usize + sub as usize
    }
}

/// Inclusive `[lo, hi]` value range covered by bucket `idx`.
fn bucket_range(idx: usize) -> (u64, u64) {
    if idx < SUB as usize {
        (idx as u64, idx as u64)
    } else {
        let b = idx - SUB as usize;
        let shift = (b / SUB as usize) as u32;
        let sub = (b % SUB as usize) as u64;
        let lo = (SUB + sub) << shift;
        (lo, lo + (1u64 << shift) - 1)
    }
}

/// A log-linear histogram of `u64` samples (typically microseconds or
/// per-operation counts). Cheap to record into, mergeable across the
/// per-thread shards, and queryable for p50/p90/p99 quantiles.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: Vec<u64>,
}

impl Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        let idx = bucket_index(v);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Record `n` occurrences of the same sample value in one shot — what
    /// a caller that kept its own dense tally (the packet kernel's
    /// lanes-per-step array) uses to dump it into the registry without
    /// paying `n` individual `record` calls.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = bucket_index(v);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += n;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += n;
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) of the recorded samples, or `None`
    /// when the histogram is empty. The representative is the midpoint of
    /// the selected bucket, clamped into `[min, max]`, so a single-sample
    /// histogram answers every quantile exactly and the relative error is
    /// otherwise bounded by the bucket width (≤ 6.25%).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based rank of the sample we are after.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= rank {
                let (lo, hi) = bucket_range(idx);
                let mid = lo + (hi - lo) / 2;
                return Some(mid.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Fold another histogram (e.g. a different thread's shard) into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += src;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }
}

/// All metric values gathered from one recorder (or merged across several).
///
/// Merging semantics: counters and histograms are additive; gauges take the
/// last writer per rank and are *summed* across ranks when snapshots are
/// merged (per-rank phase seconds sum to cluster-wide busy seconds — the
/// per-rank values remain available in the per-rank snapshots).
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, Histogram>,
    /// Rotating-window views of the histograms: same names, but covering
    /// only the last [`MetricsSnapshot::window_seconds`] of samples.
    pub windows: BTreeMap<String, Histogram>,
    /// Rotating-window gauge values (most recent set inside the window).
    pub window_gauges: BTreeMap<String, f64>,
    /// Time span the `windows`/`window_gauges` entries cover, in seconds
    /// (`0` when the recorder has no windowing configured).
    pub window_seconds: f64,
}

impl MetricsSnapshot {
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Windowed histogram for `name`, if the recorder windows it.
    pub fn window(&self, name: &str) -> Option<&Histogram> {
        self.windows.get(name)
    }

    pub fn merge_from(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_insert(0.0) += v;
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
        for (k, h) in &other.windows {
            self.windows.entry(k.clone()).or_default().merge(h);
        }
        for (k, v) in &other.window_gauges {
            *self.window_gauges.entry(k.clone()).or_insert(0.0) += v;
        }
        self.window_seconds = self.window_seconds.max(other.window_seconds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_contiguous() {
        // Exhaustive on the low range, sampled above.
        let mut prev = bucket_index(0);
        assert_eq!(prev, 0);
        for v in 1..100_000u64 {
            let idx = bucket_index(v);
            assert!(idx == prev || idx == prev + 1, "gap at v={v}");
            prev = idx;
            let (lo, hi) = bucket_range(idx);
            assert!(lo <= v && v <= hi, "v={v} not in [{lo},{hi}]");
        }
    }

    #[test]
    fn bucket_boundaries_round_trip() {
        for v in [15u64, 16, 17, 31, 32, 33, 255, 256, 1 << 20, u64::MAX / 2] {
            let (lo, hi) = bucket_range(bucket_index(v));
            assert!(lo <= v && v <= hi);
        }
    }

    #[test]
    fn record_n_equals_repeated_record() {
        let mut bulk = Histogram::new();
        let mut loop_h = Histogram::new();
        for (v, n) in [(3u64, 5u64), (1000, 2), (0, 7), (42, 0), (1 << 30, 3)] {
            bulk.record_n(v, n);
            for _ in 0..n {
                loop_h.record(v);
            }
        }
        assert_eq!(bulk, loop_h);
        assert_eq!(bulk.count(), 17);
        assert_eq!(bulk.quantile(0.5), loop_h.quantile(0.5));
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut h = Histogram::new();
        let v = 123_456_789u64;
        h.record(v);
        // Single sample: clamping makes every quantile exact.
        assert_eq!(h.quantile(0.5), Some(v));
        h.record(v + 1);
        let p99 = h.quantile(0.99).unwrap();
        let err = (p99 as f64 - (v + 1) as f64).abs() / v as f64;
        assert!(err <= 1.0 / 16.0 + 1e-9, "err={err}");
    }
}
