//! Flight recorder: a bounded ring buffer of recent request traces.
//!
//! The serving tier records the span tree of *interesting* requests —
//! sampled trace ids, requests slower than the operator's threshold,
//! quarantine refusals, caught build panics — into this buffer. A wire
//! `Dump` request exports the whole ring as one Chrome-trace JSON
//! document (one trace per process row), so "why was request 9f3a… slow
//! five minutes ago" is answerable after the fact without having had
//! tracing enabled ahead of time.
//!
//! The ring is bounded: recording past capacity evicts the oldest trace
//! and bumps a `dropped` counter, so the recorder's memory is
//! `capacity × (spans per request)` regardless of uptime.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::export;
use crate::recorder::{SpanEvent, TelemetrySnapshot};

/// The span tree of one recorded request.
#[derive(Clone, Debug)]
pub struct RequestTrace {
    /// Hex trace id (empty for untraced requests recorded for slowness).
    pub trace_id: String,
    /// Why the request was recorded: `sampled`, `slow`, `quarantined`,
    /// `panic`, or `failed`.
    pub reason: String,
    /// Request start, microseconds since the process telemetry epoch.
    pub t0_us: u64,
    /// Stage spans (depth 0 is the request itself).
    pub spans: Vec<SpanEvent>,
}

/// A bounded ring of recent [`RequestTrace`]s. All methods are safe to
/// call concurrently from serving threads.
pub struct FlightRecorder {
    capacity: usize,
    ring: Mutex<VecDeque<RequestTrace>>,
    dropped: AtomicU64,
}

impl FlightRecorder {
    /// A recorder retaining at most `capacity` traces (at least 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// Retention capacity in traces.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Append one trace, evicting the oldest past capacity.
    pub fn record(&self, trace: RequestTrace) {
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(trace);
    }

    /// Traces currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.ring.lock().unwrap().is_empty()
    }

    /// Traces evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Copy of the retained traces, oldest first.
    pub fn snapshot(&self) -> Vec<RequestTrace> {
        self.ring.lock().unwrap().iter().cloned().collect()
    }

    /// Export the ring as one Chrome-trace JSON document: each request
    /// trace becomes its own process row (labelled `reason trace_id`), so
    /// Perfetto shows the recorded requests side by side on the shared
    /// process timeline. The output satisfies
    /// [`check_chrome_trace`](crate::check::check_chrome_trace).
    pub fn chrome_trace(&self) -> String {
        let snaps: Vec<TelemetrySnapshot> = self
            .snapshot()
            .into_iter()
            .map(|t| {
                let label = if t.trace_id.is_empty() {
                    t.reason.clone()
                } else {
                    format!("{} {}", t.reason, t.trace_id)
                };
                let mut spans = t.spans;
                spans.sort_by_key(|s| (s.t0_us, s.depth));
                TelemetrySnapshot {
                    label,
                    spans,
                    metrics: Default::default(),
                }
            })
            .collect();
        export::chrome_trace(&snaps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check_chrome_trace;

    fn span(name: &str, depth: u32, t0: u64, dur: u64) -> SpanEvent {
        SpanEvent {
            name: name.to_string(),
            tid: 0,
            depth,
            t0_us: t0,
            dur_us: dur,
            cpu_us: 0,
            args: Vec::new(),
        }
    }

    fn trace(id: &str, t0: u64) -> RequestTrace {
        RequestTrace {
            trace_id: id.to_string(),
            reason: "sampled".to_string(),
            t0_us: t0,
            spans: vec![
                span("request", 0, t0, 100),
                span("queue", 1, t0, 30),
                span("render", 1, t0 + 30, 60),
            ],
        }
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let fr = FlightRecorder::new(3);
        for i in 0..5 {
            fr.record(trace(&format!("{i:032x}"), i * 1000));
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.dropped(), 2);
        let ids: Vec<String> = fr.snapshot().into_iter().map(|t| t.trace_id).collect();
        // Oldest two evicted; insertion order preserved.
        assert_eq!(ids[0], format!("{:032x}", 2));
        assert_eq!(ids[2], format!("{:032x}", 4));
    }

    #[test]
    fn dump_is_valid_chrome_trace() {
        let fr = FlightRecorder::new(8);
        fr.record(trace("aa", 0));
        fr.record(trace("bb", 5_000));
        let doc = fr.chrome_trace();
        let stats = check_chrome_trace(&doc).expect("flight dump validates");
        assert_eq!(stats.processes, 2);
        assert_eq!(stats.spans, 6);
    }

    #[test]
    fn empty_ring_dumps_an_empty_valid_trace() {
        let fr = FlightRecorder::new(1);
        let stats = check_chrome_trace(&fr.chrome_trace()).unwrap();
        assert_eq!(stats.spans, 0);
    }
}
