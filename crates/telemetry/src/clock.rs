//! Process-wide monotonic epoch and per-thread CPU clocks.
//!
//! All span timestamps are microseconds since a lazily initialised
//! process-wide epoch so that events recorded by different ranks (threads)
//! of the cluster simulator share one timeline and can be merged into a
//! single Chrome trace. Thread-CPU time comes from
//! `clock_gettime(CLOCK_THREAD_CPUTIME_ID)`: the simulated ranks
//! oversubscribe physical cores, so wall clocks alone misattribute cost.

use std::sync::OnceLock;
use std::time::Instant;

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds elapsed since the process-wide telemetry epoch.
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// CPU time consumed by the calling thread, in microseconds.
pub fn thread_cpu_us() -> u64 {
    let mut ts = libc::timespec::default();
    let rc = unsafe { libc::clock_gettime(libc::CLOCK_THREAD_CPUTIME_ID, &mut ts) };
    if rc != 0 {
        return 0;
    }
    ts.tv_sec as u64 * 1_000_000 + ts.tv_nsec as u64 / 1_000
}

/// CPU time consumed by the calling thread, in seconds.
pub fn thread_cpu_s() -> f64 {
    thread_cpu_us() as f64 * 1e-6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_us_is_monotone() {
        let a = now_us();
        let b = now_us();
        assert!(b >= a);
    }

    #[test]
    fn thread_cpu_advances_under_load() {
        let before = thread_cpu_us();
        let mut acc = 0u64;
        for i in 0..4_000_000u64 {
            acc = acc.wrapping_add(std::hint::black_box(i));
        }
        std::hint::black_box(acc);
        assert!(thread_cpu_us() >= before);
    }
}
