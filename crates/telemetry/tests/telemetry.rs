//! Satellite test coverage for the telemetry crate: histogram quantile
//! edge cases, span nesting/reentrancy under 8 threads, Chrome-trace JSON
//! validity (balanced B/E, monotone timestamps), and per-thread shard
//! merging.

use dtfe_telemetry::check::{check_chrome_trace, check_metrics_json};
use dtfe_telemetry::{
    chrome_trace, counter_add, gauge_set, hist_record, metrics_json, span, Histogram, Recorder,
};

// ---------------------------------------------------------------------------
// Histogram quantile edges
// ---------------------------------------------------------------------------

#[test]
fn empty_histogram_has_no_quantiles() {
    let h = Histogram::new();
    assert_eq!(h.count(), 0);
    assert_eq!(h.quantile(0.5), None);
    assert_eq!(h.min(), 0);
    assert_eq!(h.max(), 0);
    assert_eq!(h.mean(), 0.0);
}

#[test]
fn single_sample_answers_every_quantile_exactly() {
    for v in [0u64, 1, 15, 16, 17, 1000, 123_456_789] {
        let mut h = Histogram::new();
        h.record(v);
        for q in [0.0, 0.01, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(v), "v={v} q={q}");
        }
    }
}

#[test]
fn low_range_is_exact() {
    // Values below 16 each get their own bucket: quantiles are exact.
    let mut h = Histogram::new();
    for v in 0..16u64 {
        h.record(v);
    }
    assert_eq!(h.quantile(0.0), Some(0));
    assert_eq!(h.quantile(1.0), Some(15));
    assert_eq!(h.quantile(0.5), Some(7)); // rank 8 (1-based) = value 7
}

#[test]
fn bucket_boundary_values_stay_within_relative_error() {
    let mut h = Histogram::new();
    // Powers of two are exact bucket lower bounds.
    for v in [16u64, 32, 64, 128, 256, 512, 1024] {
        h.record(v);
    }
    for q in [0.1, 0.5, 0.9, 1.0] {
        let est = h.quantile(q).unwrap() as f64;
        // The true quantile is one of the recorded powers of two; allow the
        // documented 6.25% bucket error.
        let nearest = [16.0f64, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0]
            .iter()
            .copied()
            .min_by(|a, b| {
                ((a - est).abs() / a)
                    .partial_cmp(&((b - est).abs() / b))
                    .unwrap()
            })
            .unwrap();
        assert!(
            (est - nearest).abs() / nearest <= 1.0 / 16.0 + 1e-9,
            "q={q} est={est}"
        );
    }
}

#[test]
fn quantiles_are_clamped_to_observed_range() {
    let mut h = Histogram::new();
    h.record(1000);
    h.record(1001);
    assert!(h.quantile(0.0).unwrap() >= 1000);
    assert!(h.quantile(1.0).unwrap() <= 1001);
}

#[test]
fn merge_of_shards_equals_single_histogram() {
    let mut parts: Vec<Histogram> = (0..4).map(|_| Histogram::new()).collect();
    let mut whole = Histogram::new();
    let mut v = 1u64;
    for i in 0..1000u64 {
        v = v
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let sample = v % 100_000;
        parts[(i % 4) as usize].record(sample);
        whole.record(sample);
    }
    let mut merged = Histogram::new();
    for p in &parts {
        merged.merge(p);
    }
    assert_eq!(merged, whole);
    assert_eq!(merged.count(), 1000);
    assert_eq!(merged.quantile(0.5), whole.quantile(0.5));
    // Merging an empty histogram is a no-op.
    merged.merge(&Histogram::new());
    assert_eq!(merged, whole);
}

// ---------------------------------------------------------------------------
// Recorder + spans
// ---------------------------------------------------------------------------

#[test]
fn disabled_macros_record_nothing() {
    // No recorder installed on this thread (tests run on their own threads).
    counter_add!("test.disabled_counter", 7);
    hist_record!("test.disabled_hist", 7);
    let sp = span!("test.disabled_span");
    let times = sp.end();
    assert!(times.wall_s >= 0.0 && times.cpu_s >= 0.0);
}

#[test]
fn span_nesting_and_reentrancy_under_8_threads() {
    let rec = Recorder::new("stress");
    let threads: Vec<_> = (0..8)
        .map(|t| {
            let rec = rec.clone();
            std::thread::spawn(move || {
                let _g = rec.install();
                for i in 0..50 {
                    let _outer = span!("outer", thread = t, iter = i);
                    counter_add!("test.iterations", 1);
                    {
                        let _mid = span!("mid");
                        hist_record!("test.iter_value", i as u64);
                        let _inner = span!("inner");
                        counter_add!("test.inner_visits", 1);
                    }
                    {
                        // Re-entering the same span name at the same depth.
                        let _mid = span!("mid");
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    let snap = rec.snapshot();
    assert_eq!(snap.metrics.counter("test.iterations"), 8 * 50);
    assert_eq!(snap.metrics.counter("test.inner_visits"), 8 * 50);
    let h = snap
        .metrics
        .histogram("test.iter_value")
        .expect("histogram exists");
    assert_eq!(h.count(), 8 * 50);
    assert_eq!(h.min(), 0);
    assert_eq!(h.max(), 49);

    // 8 threads x 50 iterations x (outer + 2x mid + inner) spans.
    assert_eq!(snap.spans.len(), 8 * 50 * 4);
    // Depths are truthful: outer=0, mid=1, inner=2.
    for s in &snap.spans {
        let expected = match s.name.as_str() {
            "outer" => 0,
            "mid" => 1,
            "inner" => 2,
            other => panic!("unexpected span {other}"),
        };
        assert_eq!(s.depth, expected, "span {}", s.name);
        // Children are contained in some same-thread parent window.
        if s.depth > 0 {
            let contained = snap.spans.iter().any(|p| {
                p.tid == s.tid
                    && p.depth == s.depth - 1
                    && p.t0_us <= s.t0_us
                    && s.end_us() <= p.end_us()
            });
            assert!(contained, "span {} at t0={} not contained", s.name, s.t0_us);
        }
    }
    // 8 distinct shards (one per thread).
    let tids: std::collections::BTreeSet<u64> = snap.spans.iter().map(|s| s.tid).collect();
    assert_eq!(tids.len(), 8);

    // The emitted trace must pass the checker: balanced B/E, monotone ts.
    let trace = chrome_trace(&[snap]);
    let stats = check_chrome_trace(&trace).expect("valid chrome trace");
    assert_eq!(stats.spans, 8 * 50 * 4);
    assert_eq!(stats.processes, 1);
}

#[test]
fn install_is_scoped_and_nestable() {
    let outer = Recorder::new("outer");
    let inner = Recorder::new("inner");
    {
        let _g1 = outer.install();
        counter_add!("test.scoped", 1);
        {
            let _g2 = inner.install();
            counter_add!("test.scoped", 10);
        }
        // Previous recorder restored after the nested guard drops.
        counter_add!("test.scoped", 100);
    }
    counter_add!("test.scoped", 1000); // no recorder: dropped
    assert_eq!(outer.snapshot().metrics.counter("test.scoped"), 101);
    assert_eq!(inner.snapshot().metrics.counter("test.scoped"), 10);
}

#[test]
fn gauges_take_last_write() {
    let rec = Recorder::new("g");
    {
        let _g = rec.install();
        gauge_set!("test.phase_seconds", 1.5);
        gauge_set!("test.phase_seconds", 2.5);
    }
    assert_eq!(
        rec.snapshot().metrics.gauge("test.phase_seconds"),
        Some(2.5)
    );
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

#[test]
fn chrome_trace_of_zero_duration_spans_is_balanced() {
    let rec = Recorder::new("fast");
    {
        let _g = rec.install();
        for _ in 0..100 {
            let _sp = span!("blink"); // sub-microsecond: dur_us rounds to 0
        }
    }
    let trace = chrome_trace(&[rec.snapshot()]);
    let stats = check_chrome_trace(&trace).expect("valid trace with zero-duration spans");
    assert_eq!(stats.spans, 100);
}

#[test]
fn metrics_json_roundtrips_through_checker() {
    let a = Recorder::new("rank0");
    let b = Recorder::new("rank1");
    {
        let _g = a.install();
        counter_add!("test.widgets_built", 3);
        gauge_set!("test.busy_seconds", 0.25);
        hist_record!("test.widget_us", 40);
    }
    {
        let _g = b.install();
        counter_add!("test.widgets_built", 5);
        gauge_set!("test.busy_seconds", 0.75);
        hist_record!("test.widget_us", 60);
    }
    let snaps = [a.snapshot(), b.snapshot()];
    let doc = metrics_json(&snaps);
    let stats = check_metrics_json(&doc).expect("valid metrics json");
    assert_eq!(stats.ranks, 2);

    let merged = dtfe_telemetry::merged_metrics(&snaps);
    assert_eq!(merged.counter("test.widgets_built"), 8);
    assert_eq!(merged.gauge("test.busy_seconds"), Some(1.0)); // summed
    assert_eq!(merged.histogram("test.widget_us").unwrap().count(), 2);
}

#[test]
fn checker_rejects_broken_traces() {
    // Unbalanced: B without E.
    let bad = r#"{"traceEvents":[{"name":"x","ph":"B","ts":1,"pid":0,"tid":0}]}"#;
    assert!(check_chrome_trace(bad).is_err());
    // Non-monotone timestamps.
    let bad = r#"{"traceEvents":[
        {"name":"x","ph":"B","ts":5,"pid":0,"tid":0},
        {"name":"x","ph":"E","ts":4,"pid":0,"tid":0}]}"#;
    assert!(check_chrome_trace(bad).is_err());
    // E without any open span.
    let bad = r#"{"traceEvents":[{"name":"x","ph":"E","ts":1,"pid":0,"tid":0}]}"#;
    assert!(check_chrome_trace(bad).is_err());
    // Valid empty trace.
    assert!(check_chrome_trace(r#"{"traceEvents":[]}"#).is_ok());
}
