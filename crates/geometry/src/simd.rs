//! Std-only SIMD lane types for the ray-packet marching kernel.
//!
//! The packet kernel classifies 4–8 coherent vertical lines of sight
//! against one tetrahedron at a time (DESIGN.md §4k). Its hot arithmetic —
//! the Plücker side product of every packet ray against each tetrahedron
//! edge — is data-parallel across rays, so the lane type here is a
//! structure-of-arrays `[f64; N]` wrapper whose element-wise loops compile
//! to vector instructions on stable Rust (LLVM auto-vectorizes fixed-trip
//! loops over `[f64; N]`; the baseline x86-64 target gives 2 lanes per op,
//! `-C target-feature=+avx2` gives 4).
//!
//! # Bit-identity
//!
//! Every operation is a plain IEEE-754 `f64` multiply or add per lane — no
//! FMA contraction (Rust never contracts `a * b + c`, and the AVX2
//! specialization below uses separate `_mm256_mul_pd`/`_mm256_add_pd`
//! intrinsics, never `_mm256_fmadd_pd`). A lane therefore computes exactly
//! the scalar kernel's operation sequence, so packet results are
//! bit-for-bit the scalar results regardless of lane width or instruction
//! set. The `avx2_matches_portable` test asserts this on the intrinsics
//! path.
//!
//! # The `simd-intrinsics` feature
//!
//! With `--features simd-intrinsics` on an `x86_64` host,
//! [`vertical_tet_sides`] dispatches to an explicit AVX2 version
//! (`#[target_feature(enable = "avx2")]`, guarded at runtime by
//! `is_x86_feature_detected!`) that processes 4 lanes per 256-bit op
//! without needing a custom `RUSTFLAGS` target. The portable fallback is
//! always compiled and always correct.

use crate::plucker::TET_EDGES;
use crate::vec::Vec3;

/// A packet of `N` `f64` lanes (structure-of-arrays). `N` is 4 or 8 in the
/// marching kernel; any `N ≥ 1` works for the portable ops.
#[derive(Clone, Copy, Debug, PartialEq)]
#[repr(align(64))]
pub struct F64xN<const N: usize>(pub [f64; N]);

impl<const N: usize> F64xN<N> {
    /// All lanes set to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        F64xN([v; N])
    }

    /// All lanes zero.
    pub const ZERO: F64xN<N> = F64xN([0.0; N]);

    /// Lane-wise `self * b + c` as a *separate* multiply then add — the
    /// shape LLVM vectorizes but is forbidden from fusing into an FMA, so
    /// each lane rounds exactly like the scalar `a * b + c` expression.
    #[inline]
    pub fn mul_add_exact(self, b: Self, c: Self) -> Self {
        let mut out = [0.0; N];
        for (l, o) in out.iter_mut().enumerate() {
            *o = self.0[l] * b.0[l] + c.0[l];
        }
        F64xN(out)
    }
}

/// Lane-wise `a * b` (exact IEEE multiply per lane).
impl<const N: usize> std::ops::Mul for F64xN<N> {
    type Output = Self;
    #[inline]
    fn mul(self, b: Self) -> Self {
        let mut out = [0.0; N];
        for (l, o) in out.iter_mut().enumerate() {
            *o = self.0[l] * b.0[l];
        }
        F64xN(out)
    }
}

/// Lane-wise `a + b` (exact IEEE add per lane).
impl<const N: usize> std::ops::Add for F64xN<N> {
    type Output = Self;
    #[inline]
    fn add(self, b: Self) -> Self {
        let mut out = [0.0; N];
        for (l, o) in out.iter_mut().enumerate() {
            *o = self.0[l] + b.0[l];
        }
        F64xN(out)
    }
}

/// Lane-wise `a - b`.
impl<const N: usize> std::ops::Sub for F64xN<N> {
    type Output = Self;
    #[inline]
    fn sub(self, b: Self) -> Self {
        let mut out = [0.0; N];
        for (l, o) in out.iter_mut().enumerate() {
            *o = self.0[l] - b.0[l];
        }
        F64xN(out)
    }
}

/// The Plücker moments of a packet of vertical lines of sight, stored
/// structure-of-arrays: lane `l` is the moment `v = l̂ × x` of ray `l`
/// exactly as [`crate::plucker::Plucker::from_ray`] computes it (for a
/// vertical ray through `(x, y)` that is `(-y, x, 0)`, with the zero formed
/// by the same `0·y − 0·x` subtraction).
#[derive(Clone, Copy, Debug)]
pub struct PacketMoments<const N: usize> {
    pub x: F64xN<N>,
    pub y: F64xN<N>,
    pub z: F64xN<N>,
}

impl<const N: usize> PacketMoments<N> {
    /// All lanes from one moment (a fresh packet before lanes are set).
    #[inline]
    pub fn splat(v: Vec3) -> Self {
        PacketMoments {
            x: F64xN::splat(v.x),
            y: F64xN::splat(v.y),
            z: F64xN::splat(v.z),
        }
    }

    /// Overwrite lane `l` with the moment `v`.
    #[inline]
    pub fn set_lane(&mut self, l: usize, v: Vec3) {
        self.x.0[l] = v.x;
        self.y.0[l] = v.y;
        self.z.0[l] = v.z;
    }
}

/// Side products of a packet against the six canonical tetrahedron edges:
/// `s[e].0[l]` is ray `l` against edge `e` of [`TET_EDGES`], bit-identical
/// to the scalar kernel's vertical side product for that lane.
pub type PacketSides<const N: usize> = [F64xN<N>; 6];

/// Compute the vertical-ray side product of every lane against the directed
/// edge `p0 → p1`: per lane exactly
/// `(lx·p0.y − ly·p0.x) + ((lx·vx + ly·vy) + lz·vz)` — the scalar
/// `side_vertical` expression, so each lane's bits match the scalar kernel.
#[inline]
pub fn vertical_edge_sides<const N: usize>(rv: &PacketMoments<N>, p0: Vec3, p1: Vec3) -> F64xN<N> {
    let lx = p1.x - p0.x;
    let ly = p1.y - p0.y;
    let lz = p1.z - p0.z;
    let c = lx * p0.y - ly * p0.x;
    let mut out = [0.0; N];
    for (l, o) in out.iter_mut().enumerate() {
        *o = c + ((lx * rv.x.0[l] + ly * rv.y.0[l]) + lz * rv.z.0[l]);
    }
    F64xN(out)
}

/// All six canonical edge side products of a packet against one
/// tetrahedron (vertex order already normalized, as the marching kernel's
/// `CachedTet` stores it). Dispatches to the AVX2 specialization when the
/// `simd-intrinsics` feature is enabled and the CPU supports it; the
/// portable path and the intrinsics path produce identical bits.
#[inline]
pub fn vertical_tet_sides<const N: usize>(
    rv: &PacketMoments<N>,
    verts: &[Vec3; 4],
    out: &mut PacketSides<N>,
) {
    vertical_tet_sides_masked(rv, verts, 0b11_1111, out);
}

/// [`vertical_tet_sides`] restricted to the edges named by `todo` (bit `e`
/// set = evaluate edge `e` of [`TET_EDGES`]); the other rows of `out` are
/// left untouched. The packet marching kernel clears the bits of edges
/// whose side products carry over from the face the packet just exited
/// through ([`crate::plucker::seed_edge_map`]), the same reuse the scalar
/// seeded kernel performs.
#[inline]
pub fn vertical_tet_sides_masked<const N: usize>(
    rv: &PacketMoments<N>,
    verts: &[Vec3; 4],
    todo: u8,
    out: &mut PacketSides<N>,
) {
    #[cfg(all(feature = "simd-intrinsics", target_arch = "x86_64"))]
    if N.is_multiple_of(4) && std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the AVX2 requirement was just checked at runtime.
        unsafe { avx2::vertical_tet_sides_avx2(rv, verts, todo, out) };
        return;
    }
    for (e, &(i, j)) in TET_EDGES.iter().enumerate() {
        if todo & (1 << e) != 0 {
            out[e] = vertical_edge_sides(rv, verts[i], verts[j]);
        }
    }
}

#[cfg(all(feature = "simd-intrinsics", target_arch = "x86_64"))]
mod avx2 {
    use super::{PacketMoments, PacketSides};
    use crate::plucker::TET_EDGES;
    use crate::vec::Vec3;
    use std::arch::x86_64::{
        _mm256_add_pd, _mm256_loadu_pd, _mm256_mul_pd, _mm256_set1_pd, _mm256_storeu_pd,
    };

    /// AVX2 [`super::vertical_tet_sides_masked`]: 4 lanes per 256-bit op,
    /// plain mul/add intrinsics only (no FMA), so every lane rounds exactly
    /// like the portable expression. Requires `N % 4 == 0`.
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub unsafe fn vertical_tet_sides_avx2<const N: usize>(
        rv: &PacketMoments<N>,
        verts: &[Vec3; 4],
        todo: u8,
        out: &mut PacketSides<N>,
    ) {
        debug_assert_eq!(N % 4, 0);
        for (e, &(i, j)) in TET_EDGES.iter().enumerate() {
            if todo & (1 << e) == 0 {
                continue;
            }
            let (p0, p1) = (verts[i], verts[j]);
            let lx = p1.x - p0.x;
            let ly = p1.y - p0.y;
            let lz = p1.z - p0.z;
            let c = _mm256_set1_pd(lx * p0.y - ly * p0.x);
            let lxv = _mm256_set1_pd(lx);
            let lyv = _mm256_set1_pd(ly);
            let lzv = _mm256_set1_pd(lz);
            let mut l = 0;
            while l < N {
                let vx = _mm256_loadu_pd(rv.x.0.as_ptr().add(l));
                let vy = _mm256_loadu_pd(rv.y.0.as_ptr().add(l));
                let vz = _mm256_loadu_pd(rv.z.0.as_ptr().add(l));
                // c + ((lx·vx + ly·vy) + lz·vz), associated exactly like
                // the scalar side_vertical expression.
                let t = _mm256_add_pd(_mm256_mul_pd(lxv, vx), _mm256_mul_pd(lyv, vy));
                let t = _mm256_add_pd(t, _mm256_mul_pd(lzv, vz));
                let s = _mm256_add_pd(c, t);
                _mm256_storeu_pd(out[e].0.as_mut_ptr().add(l), s);
                l += 4;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plucker::{Plucker, Ray};

    fn rand_unit(s: &mut u64) -> f64 {
        *s ^= *s >> 12;
        *s ^= *s << 25;
        *s ^= *s >> 27;
        (s.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The scalar oracle: the exact expression `side_vertical` evaluates.
    fn scalar_side(rv: Vec3, p0: Vec3, p1: Vec3) -> f64 {
        let lx = p1.x - p0.x;
        let ly = p1.y - p0.y;
        let lz = p1.z - p0.z;
        (lx * p0.y - ly * p0.x) + (lx * rv.x + ly * rv.y + lz * rv.z)
    }

    fn packet_case<const N: usize>(seed: u64) {
        let mut st = seed;
        for _ in 0..200 {
            let mut verts = [Vec3::ZERO; 4];
            for p in &mut verts {
                *p = Vec3::new(
                    rand_unit(&mut st) * 4.0 - 2.0,
                    rand_unit(&mut st) * 4.0 - 2.0,
                    rand_unit(&mut st) * 4.0 - 2.0,
                );
            }
            let mut rv = PacketMoments::<N>::splat(Vec3::ZERO);
            let mut moments = [Vec3::ZERO; N];
            for (l, m) in moments.iter_mut().enumerate() {
                let ray = Ray::vertical(rand_unit(&mut st) * 4.0 - 2.0, rand_unit(&mut st) * 4.0);
                *m = Plucker::from_ray(&ray).v;
                rv.set_lane(l, *m);
            }
            let mut sides = [F64xN::<N>::ZERO; 6];
            vertical_tet_sides(&rv, &verts, &mut sides);
            for (e, &(i, j)) in TET_EDGES.iter().enumerate() {
                for (l, &m) in moments.iter().enumerate() {
                    let want = scalar_side(m, verts[i], verts[j]);
                    assert_eq!(
                        sides[e].0[l].to_bits(),
                        want.to_bits(),
                        "edge {e} lane {l}: {} vs {want}",
                        sides[e].0[l]
                    );
                }
            }
        }
    }

    #[test]
    fn packet_sides_bit_identical_to_scalar() {
        packet_case::<1>(0xA1);
        packet_case::<4>(0xB2);
        packet_case::<8>(0xC3);
    }

    #[test]
    fn lane_ops_are_elementwise() {
        let a = F64xN::<4>([1.0, 2.0, 3.0, 4.0]);
        let b = F64xN::<4>([0.5, 0.25, -1.0, 2.0]);
        assert_eq!((a * b).0, [0.5, 0.5, -3.0, 8.0]);
        assert_eq!((a + b).0, [1.5, 2.25, 2.0, 6.0]);
        assert_eq!((a - b).0, [0.5, 1.75, 4.0, 2.0]);
        let c = F64xN::<4>::splat(1.0);
        assert_eq!(a.mul_add_exact(b, c).0, [1.5, 1.5, -2.0, 9.0]);
    }

    #[test]
    fn masked_eval_writes_only_named_rows() {
        let mut st = 0xDEADu64;
        let mut verts = [Vec3::ZERO; 4];
        for p in &mut verts {
            *p = Vec3::new(rand_unit(&mut st), rand_unit(&mut st), rand_unit(&mut st));
        }
        let mut rv = PacketMoments::<4>::splat(Vec3::ZERO);
        for l in 0..4 {
            let ray = Ray::vertical(rand_unit(&mut st), rand_unit(&mut st));
            rv.set_lane(l, Plucker::from_ray(&ray).v);
        }
        let mut full = [F64xN::<4>::ZERO; 6];
        vertical_tet_sides(&rv, &verts, &mut full);
        for todo in 0u8..64 {
            let sentinel = F64xN::<4>::splat(-7.25);
            let mut out = [sentinel; 6];
            vertical_tet_sides_masked(&rv, &verts, todo, &mut out);
            for e in 0..6 {
                if todo & (1 << e) != 0 {
                    assert_eq!(out[e], full[e], "todo {todo:#08b} edge {e}");
                } else {
                    assert_eq!(out[e], sentinel, "todo {todo:#08b} edge {e}");
                }
            }
        }
    }

    #[cfg(all(feature = "simd-intrinsics", target_arch = "x86_64"))]
    #[test]
    fn avx2_matches_portable() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return;
        }
        let mut st = 0xFACEu64;
        for _ in 0..500 {
            let mut verts = [Vec3::ZERO; 4];
            for p in &mut verts {
                *p = Vec3::new(rand_unit(&mut st), rand_unit(&mut st), rand_unit(&mut st));
            }
            let mut rv = PacketMoments::<8>::splat(Vec3::ZERO);
            for l in 0..8 {
                let ray = Ray::vertical(rand_unit(&mut st), rand_unit(&mut st));
                rv.set_lane(l, Plucker::from_ray(&ray).v);
            }
            let mut fast = [F64xN::<8>::ZERO; 6];
            // SAFETY: avx2 support checked above.
            unsafe { avx2::vertical_tet_sides_avx2(&rv, &verts, 0b11_1111, &mut fast) };
            let mut portable = [F64xN::<8>::ZERO; 6];
            for (e, &(i, j)) in TET_EDGES.iter().enumerate() {
                portable[e] = vertical_edge_sides(&rv, verts[i], verts[j]);
            }
            for e in 0..6 {
                for l in 0..8 {
                    assert_eq!(fast[e].0[l].to_bits(), portable[e].0[l].to_bits());
                }
            }
        }
    }
}
