//! Tetrahedron helpers: volumes, barycentric coordinates, circumcenters and
//! the constant gradient of a linear field over a tetrahedron (the
//! `∇̂f|_Del` of DTFE, paper Eq. 1).

use crate::predicates::orient3d_det;
use crate::vec::Vec3;

/// Six times the signed volume of tetrahedron `(a, b, c, d)`; positive for a
/// positively-oriented tetrahedron (see [`crate::predicates::orient3d`]).
#[inline]
pub fn signed_volume6(a: Vec3, b: Vec3, c: Vec3, d: Vec3) -> f64 {
    orient3d_det(a, b, c, d)
}

/// Unsigned volume of tetrahedron `(a, b, c, d)`.
#[inline]
pub fn volume(a: Vec3, b: Vec3, c: Vec3, d: Vec3) -> f64 {
    signed_volume6(a, b, c, d).abs() / 6.0
}

/// Centroid of the tetrahedron.
#[inline]
pub fn centroid(v: &[Vec3; 4]) -> Vec3 {
    (v[0] + v[1] + v[2] + v[3]) * 0.25
}

/// Barycentric coordinates of `p` with respect to tetrahedron `v`.
///
/// Returns `None` when the tetrahedron is (numerically) flat. All four
/// coordinates are in `[0, 1]` and sum to 1 iff `p` is inside.
pub fn barycentric(p: Vec3, v: &[Vec3; 4]) -> Option<[f64; 4]> {
    let total = signed_volume6(v[0], v[1], v[2], v[3]);
    if total == 0.0 || !total.is_finite() {
        return None;
    }
    let w0 = signed_volume6(p, v[1], v[2], v[3]) / total;
    let w1 = signed_volume6(v[0], p, v[2], v[3]) / total;
    let w2 = signed_volume6(v[0], v[1], p, v[3]) / total;
    let w3 = signed_volume6(v[0], v[1], v[2], p) / total;
    Some([w0, w1, w2, w3])
}

/// Does the tetrahedron contain `p` (boundary inclusive, with tolerance
/// `eps` on the barycentric coordinates)?
pub fn contains(p: Vec3, v: &[Vec3; 4], eps: f64) -> bool {
    match barycentric(p, v) {
        Some(w) => w.iter().all(|&wi| wi >= -eps),
        None => false,
    }
}

/// Circumcenter of the tetrahedron; `None` when degenerate.
///
/// Solves the linear system `2 (v_i - v_0) · x = |v_i|² - |v_0|²` by Cramer's
/// rule. Not robust for near-degenerate tetrahedra — intended for validation
/// and tests, not for predicate decisions (those go through
/// [`crate::predicates::insphere`]).
pub fn circumcenter(v: &[Vec3; 4]) -> Option<Vec3> {
    let r1 = v[1] - v[0];
    let r2 = v[2] - v[0];
    let r3 = v[3] - v[0];
    let b1 = 0.5 * (v[1].norm_sq() - v[0].norm_sq());
    let b2 = 0.5 * (v[2].norm_sq() - v[0].norm_sq());
    let b3 = 0.5 * (v[3].norm_sq() - v[0].norm_sq());
    solve3(r1, r2, r3, Vec3::new(b1, b2, b3))
}

/// Squared circumradius; `None` when degenerate.
pub fn circumradius_sq(v: &[Vec3; 4]) -> Option<f64> {
    circumcenter(v).map(|c| c.distance_sq(v[0]))
}

/// Solve the 3x3 system with rows `r1, r2, r3` and right-hand side `b` by
/// Cramer's rule. `None` for a singular matrix.
pub fn solve3(r1: Vec3, r2: Vec3, r3: Vec3, b: Vec3) -> Option<Vec3> {
    let det = r1.dot(r2.cross(r3));
    if det == 0.0 || !det.is_finite() {
        return None;
    }
    // Columns of the inverse are the cross products of the rows (adjugate):
    // x = (b.x (r2×r3) + b.y (r3×r1) + b.z (r1×r2)) / det.
    let x = (b.x * r2.cross(r3) + b.y * r3.cross(r1) + b.z * r1.cross(r2)) / det;
    Some(x)
}

/// Constant gradient of the linear field taking value `f[i]` at vertex
/// `v[i]` (DTFE's `∇̂f|_Del`, paper Eq. 1). `None` for a flat tetrahedron.
pub fn linear_gradient(v: &[Vec3; 4], f: &[f64; 4]) -> Option<Vec3> {
    solve3(
        v[1] - v[0],
        v[2] - v[0],
        v[3] - v[0],
        Vec3::new(f[1] - f[0], f[2] - f[0], f[3] - f[0]),
    )
}

/// Evaluate the linear interpolant defined by vertex values `f` at point `p`
/// (paper Eq. 1): `f̂(p) = f(v0) + ∇̂f · (p - v0)`.
pub fn interpolate_linear(v: &[Vec3; 4], f: &[f64; 4], p: Vec3) -> Option<f64> {
    linear_gradient(v, f).map(|g| f[0] + g.dot(p - v[0]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_tet() -> [Vec3; 4] {
        [
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
        ]
    }

    #[test]
    fn unit_tet_volume() {
        let v = unit_tet();
        assert!((volume(v[0], v[1], v[2], v[3]) - 1.0 / 6.0).abs() < 1e-15);
    }

    #[test]
    fn degenerate_volume_zero() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(1.0, 0.0, 0.0);
        let c = Vec3::new(2.0, 0.0, 0.0);
        let d = Vec3::new(3.0, 0.0, 0.0);
        assert_eq!(volume(a, b, c, d), 0.0);
    }

    #[test]
    fn barycentric_partition_of_unity() {
        let v = unit_tet();
        let p = Vec3::new(0.2, 0.3, 0.1);
        let w = barycentric(p, &v).unwrap();
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Reconstruct the point.
        let q = v[0] * w[0] + v[1] * w[1] + v[2] * w[2] + v[3] * w[3];
        assert!(q.distance(p) < 1e-12);
        assert!(contains(p, &v, 1e-12));
        assert!(!contains(Vec3::new(0.9, 0.9, 0.9), &v, 1e-12));
    }

    #[test]
    fn barycentric_at_vertices() {
        let v = unit_tet();
        for i in 0..4 {
            let w = barycentric(v[i], &v).unwrap();
            for (j, &wj) in w.iter().enumerate() {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((wj - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn circumcenter_equidistant() {
        let v = unit_tet();
        let c = circumcenter(&v).unwrap();
        let r0 = c.distance(v[0]);
        for vi in &v[1..] {
            assert!((c.distance(*vi) - r0).abs() < 1e-12);
        }
        assert_eq!(c, Vec3::new(0.5, 0.5, 0.5));
    }

    #[test]
    fn circumcenter_degenerate_none() {
        let v = [
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(2.0, 0.0, 0.0),
            Vec3::new(3.0, 0.0, 0.0),
        ];
        assert!(circumcenter(&v).is_none());
    }

    #[test]
    fn gradient_recovers_linear_field() {
        let v = [
            Vec3::new(0.1, 0.0, 0.3),
            Vec3::new(1.2, 0.1, 0.0),
            Vec3::new(0.0, 1.5, 0.2),
            Vec3::new(0.3, 0.2, 1.9),
        ];
        let g_true = Vec3::new(2.0, -3.0, 0.5);
        let field = |p: Vec3| 7.0 + g_true.dot(p);
        let f = [field(v[0]), field(v[1]), field(v[2]), field(v[3])];
        let g = linear_gradient(&v, &f).unwrap();
        assert!(g.distance(g_true) < 1e-10, "g = {g:?}");
        // Interpolation is exact for a linear field anywhere in space.
        let p = Vec3::new(0.4, 0.4, 0.4);
        assert!((interpolate_linear(&v, &f, p).unwrap() - field(p)).abs() < 1e-10);
    }

    #[test]
    fn solve3_identity() {
        let x = solve3(
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(4.0, 5.0, 6.0),
        )
        .unwrap();
        assert_eq!(x, Vec3::new(4.0, 5.0, 6.0));
        assert!(solve3(Vec3::ZERO, Vec3::ZERO, Vec3::ZERO, Vec3::ZERO).is_none());
    }
}
