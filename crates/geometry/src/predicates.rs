//! Robust geometric predicates.
//!
//! Each predicate is evaluated in two stages, following Shewchuk's classic
//! scheme:
//!
//! 1. **Filtered float pass** — evaluate the determinant in plain `f64` and
//!    compare it against a static forward error bound derived from the
//!    "permanent" (the same polynomial with every subtraction replaced by an
//!    addition of absolute values). If the magnitude clears the bound the
//!    sign is provably correct.
//! 2. **Exact fallback** — recompute the determinant with the
//!    [expansion arithmetic](crate::expansion), which is exact for any `f64`
//!    inputs, and take the sign of the resulting expansion.
//!
//! The exact path allocates; the filter keeps it off the hot path for all but
//! (nearly-)degenerate inputs. Degenerate inputs are common in this domain —
//! N-body particles snapped to grid positions, co-spherical lattice points —
//! which is why the Delaunay substrate cannot get away with plain floating
//! point.

use crate::expansion::{
    diff_expansion, expansion_diff, expansion_mul, expansion_sum, scale_expansion, sign,
};
use crate::vec::{Vec2, Vec3};

/// Sign of a determinant-based orientation test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Orientation {
    /// Determinant > 0 (e.g. positively oriented tetrahedron).
    Positive,
    /// Determinant < 0.
    Negative,
    /// Exactly degenerate (coplanar / cocircular / cospherical).
    Zero,
}

impl Orientation {
    #[inline]
    fn from_sign(s: i32) -> Self {
        match s.cmp(&0) {
            std::cmp::Ordering::Greater => Orientation::Positive,
            std::cmp::Ordering::Less => Orientation::Negative,
            std::cmp::Ordering::Equal => Orientation::Zero,
        }
    }

    #[inline]
    pub fn is_positive(self) -> bool {
        self == Orientation::Positive
    }

    #[inline]
    pub fn is_negative(self) -> bool {
        self == Orientation::Negative
    }

    #[inline]
    pub fn is_zero(self) -> bool {
        self == Orientation::Zero
    }

    /// Reverse the orientation (swap of two rows).
    #[inline]
    pub fn flipped(self) -> Self {
        match self {
            Orientation::Positive => Orientation::Negative,
            Orientation::Negative => Orientation::Positive,
            Orientation::Zero => Orientation::Zero,
        }
    }
}

const EPS: f64 = f64::EPSILON / 2.0; // 2^-53, Shewchuk's "epsilon"
const O2D_BOUND: f64 = (3.0 + 16.0 * EPS) * EPS;
const O3D_BOUND: f64 = (7.0 + 56.0 * EPS) * EPS;
const ICC_BOUND: f64 = (10.0 + 96.0 * EPS) * EPS;
const ISP_BOUND: f64 = (16.0 + 224.0 * EPS) * EPS;

/// Orientation of the 2D triangle `(a, b, c)`: `Positive` when the triangle
/// winds counterclockwise.
pub fn orient2d(a: Vec2, b: Vec2, c: Vec2) -> Orientation {
    let detleft = (a.x - c.x) * (b.y - c.y);
    let detright = (a.y - c.y) * (b.x - c.x);
    let det = detleft - detright;

    let detsum = detleft.abs() + detright.abs();
    if det.abs() > O2D_BOUND * detsum {
        return Orientation::from_sign(if det > 0.0 { 1 } else { -1 });
    }
    orient2d_exact(a, b, c)
}

fn orient2d_exact(a: Vec2, b: Vec2, c: Vec2) -> Orientation {
    let acx = diff_expansion(a.x, c.x);
    let bcy = diff_expansion(b.y, c.y);
    let acy = diff_expansion(a.y, c.y);
    let bcx = diff_expansion(b.x, c.x);
    let left = expansion_mul(&acx, &bcy);
    let right = expansion_mul(&acy, &bcx);
    Orientation::from_sign(sign(&expansion_diff(&left, &right)))
}

/// Raw floating-point 3D orientation determinant (no filter, no fallback).
/// Used by the walking search where an occasionally-wrong *hint* is harmless,
/// and by the predicate-filter ablation bench.
#[inline]
pub fn orient3d_det(a: Vec3, b: Vec3, c: Vec3, d: Vec3) -> f64 {
    let adx = a.x - d.x;
    let ady = a.y - d.y;
    let adz = a.z - d.z;
    let bdx = b.x - d.x;
    let bdy = b.y - d.y;
    let bdz = b.z - d.z;
    let cdx = c.x - d.x;
    let cdy = c.y - d.y;
    let cdz = c.z - d.z;
    adx * (bdy * cdz - bdz * cdy) + bdx * (cdy * adz - cdz * ady) + cdx * (ady * bdz - adz * bdy)
}

/// Orientation of the tetrahedron `(a, b, c, d)`.
///
/// `Positive` when `d` lies on the side of plane `(a, b, c)` such that
/// `(a, b, c)` appears counterclockwise from `d` — equivalently, the signed
/// volume `det[a-d, b-d, c-d] / 6` is positive.
pub fn orient3d(a: Vec3, b: Vec3, c: Vec3, d: Vec3) -> Orientation {
    let adx = a.x - d.x;
    let ady = a.y - d.y;
    let adz = a.z - d.z;
    let bdx = b.x - d.x;
    let bdy = b.y - d.y;
    let bdz = b.z - d.z;
    let cdx = c.x - d.x;
    let cdy = c.y - d.y;
    let cdz = c.z - d.z;

    let bdycdz = bdy * cdz;
    let bdzcdy = bdz * cdy;
    let cdyadz = cdy * adz;
    let cdzady = cdz * ady;
    let adybdz = ady * bdz;
    let adzbdy = adz * bdy;

    let det = adx * (bdycdz - bdzcdy) + bdx * (cdyadz - cdzady) + cdx * (adybdz - adzbdy);
    let permanent = adx.abs() * (bdycdz.abs() + bdzcdy.abs())
        + bdx.abs() * (cdyadz.abs() + cdzady.abs())
        + cdx.abs() * (adybdz.abs() + adzbdy.abs());

    if det.abs() > O3D_BOUND * permanent {
        dtfe_telemetry::counter_add!("geometry.orient3d_filtered", 1);
        return Orientation::from_sign(if det > 0.0 { 1 } else { -1 });
    }
    dtfe_telemetry::counter_add!("geometry.orient3d_exact", 1);
    orient3d_exact(a, b, c, d)
}

fn orient3d_exact(a: Vec3, b: Vec3, c: Vec3, d: Vec3) -> Orientation {
    Orientation::from_sign(sign(&orient3d_expansion(a, b, c, d)))
}

/// Exact 3x3 determinant `det[a-d, b-d, c-d]` as an expansion.
fn orient3d_expansion(a: Vec3, b: Vec3, c: Vec3, d: Vec3) -> Vec<f64> {
    let adx = diff_expansion(a.x, d.x);
    let ady = diff_expansion(a.y, d.y);
    let adz = diff_expansion(a.z, d.z);
    let bdx = diff_expansion(b.x, d.x);
    let bdy = diff_expansion(b.y, d.y);
    let bdz = diff_expansion(b.z, d.z);
    let cdx = diff_expansion(c.x, d.x);
    let cdy = diff_expansion(c.y, d.y);
    let cdz = diff_expansion(c.z, d.z);

    let m_a = expansion_diff(&expansion_mul(&bdy, &cdz), &expansion_mul(&bdz, &cdy));
    let m_b = expansion_diff(&expansion_mul(&cdy, &adz), &expansion_mul(&cdz, &ady));
    let m_c = expansion_diff(&expansion_mul(&ady, &bdz), &expansion_mul(&adz, &bdy));

    let t_a = expansion_mul(&adx, &m_a);
    let t_b = expansion_mul(&bdx, &m_b);
    let t_c = expansion_mul(&cdx, &m_c);
    expansion_sum(&expansion_sum(&t_a, &t_b), &t_c)
}

/// Is `e` inside the circumsphere of the positively-oriented tetrahedron
/// `(a, b, c, d)`?
///
/// Returns `Positive` when `e` is strictly inside (assuming
/// `orient3d(a, b, c, d)` is `Positive`; for a negatively-oriented
/// tetrahedron the meaning flips), `Negative` when strictly outside, `Zero`
/// when exactly cospherical.
pub fn insphere(a: Vec3, b: Vec3, c: Vec3, d: Vec3, e: Vec3) -> Orientation {
    let aex = a.x - e.x;
    let aey = a.y - e.y;
    let aez = a.z - e.z;
    let bex = b.x - e.x;
    let bey = b.y - e.y;
    let bez = b.z - e.z;
    let cex = c.x - e.x;
    let cey = c.y - e.y;
    let cez = c.z - e.z;
    let dex = d.x - e.x;
    let dey = d.y - e.y;
    let dez = d.z - e.z;

    // 2x2 minors in the x-y columns.
    let ab = aex * bey - bex * aey;
    let bc = bex * cey - cex * bey;
    let cd = cex * dey - dex * cey;
    let da = dex * aey - aex * dey;
    let ac = aex * cey - cex * aey;
    let bd = bex * dey - dex * bey;

    // 3x3 minors (coordinate part).
    let abc = aez * bc - bez * ac + cez * ab;
    let bcd = bez * cd - cez * bd + dez * bc;
    let cda = cez * da + dez * ac + aez * cd;
    let dab = dez * ab + aez * bd + bez * da;

    let alift = aex * aex + aey * aey + aez * aez;
    let blift = bex * bex + bey * bey + bez * bez;
    let clift = cex * cex + cey * cey + cez * cez;
    let dlift = dex * dex + dey * dey + dez * dez;

    let det = (dlift * abc - clift * dab) + (blift * cda - alift * bcd);

    // Permanent: same polynomial with |.| everywhere a cancellation can occur.
    let ab_p = (aex * bey).abs() + (bex * aey).abs();
    let bc_p = (bex * cey).abs() + (cex * bey).abs();
    let cd_p = (cex * dey).abs() + (dex * cey).abs();
    let da_p = (dex * aey).abs() + (aex * dey).abs();
    let ac_p = (aex * cey).abs() + (cex * aey).abs();
    let bd_p = (bex * dey).abs() + (dex * bey).abs();
    let abc_p = aez.abs() * bc_p + bez.abs() * ac_p + cez.abs() * ab_p;
    let bcd_p = bez.abs() * cd_p + cez.abs() * bd_p + dez.abs() * bc_p;
    let cda_p = cez.abs() * da_p + dez.abs() * ac_p + aez.abs() * cd_p;
    let dab_p = dez.abs() * ab_p + aez.abs() * bd_p + bez.abs() * da_p;
    let permanent = dlift * abc_p + clift * dab_p + blift * cda_p + alift * bcd_p;

    if det.abs() > ISP_BOUND * permanent {
        dtfe_telemetry::counter_add!("geometry.insphere_filtered", 1);
        return Orientation::from_sign(if det > 0.0 { 1 } else { -1 });
    }
    dtfe_telemetry::counter_add!("geometry.insphere_exact", 1);
    insphere_exact(a, b, c, d, e)
}

fn insphere_exact(a: Vec3, b: Vec3, c: Vec3, d: Vec3, e: Vec3) -> Orientation {
    // Exact difference expansions.
    let diffs = |p: Vec3| {
        (
            diff_expansion(p.x, e.x),
            diff_expansion(p.y, e.y),
            diff_expansion(p.z, e.z),
        )
    };
    let (ax, ay, az) = diffs(a);
    let (bx, by, bz) = diffs(b);
    let (cx, cy, cz) = diffs(c);
    let (dx, dy, dz) = diffs(d);

    let lift = |x: &[f64], y: &[f64], z: &[f64]| {
        let xx = expansion_mul(x, x);
        let yy = expansion_mul(y, y);
        let zz = expansion_mul(z, z);
        expansion_sum(&expansion_sum(&xx, &yy), &zz)
    };
    let alift = lift(&ax, &ay, &az);
    let blift = lift(&bx, &by, &bz);
    let clift = lift(&cx, &cy, &cz);
    let dlift = lift(&dx, &dy, &dz);

    // 3x3 determinant of three rows of difference expansions.
    let det3 = |x0: &[f64],
                y0: &[f64],
                z0: &[f64],
                x1: &[f64],
                y1: &[f64],
                z1: &[f64],
                x2: &[f64],
                y2: &[f64],
                z2: &[f64]| {
        let m0 = expansion_diff(&expansion_mul(y1, z2), &expansion_mul(z1, y2));
        let m1 = expansion_diff(&expansion_mul(y2, z0), &expansion_mul(z2, y0));
        let m2 = expansion_diff(&expansion_mul(y0, z1), &expansion_mul(z0, y1));
        let t0 = expansion_mul(x0, &m0);
        let t1 = expansion_mul(x1, &m1);
        let t2 = expansion_mul(x2, &m2);
        expansion_sum(&expansion_sum(&t0, &t1), &t2)
    };

    let det_bcd = det3(&bx, &by, &bz, &cx, &cy, &cz, &dx, &dy, &dz);
    let det_acd = det3(&ax, &ay, &az, &cx, &cy, &cz, &dx, &dy, &dz);
    let det_abd = det3(&ax, &ay, &az, &bx, &by, &bz, &dx, &dy, &dz);
    let det_abc = det3(&ax, &ay, &az, &bx, &by, &bz, &cx, &cy, &cz);

    // Cofactor expansion along the lift column:
    // det = -alift*det(bcd) + blift*det(acd) - clift*det(abd) + dlift*det(abc)
    let t_a = scale_expansion(&expansion_mul(&alift, &det_bcd), -1.0);
    let t_b = expansion_mul(&blift, &det_acd);
    let t_c = scale_expansion(&expansion_mul(&clift, &det_abd), -1.0);
    let t_d = expansion_mul(&dlift, &det_abc);
    let det = expansion_sum(&expansion_sum(&t_a, &t_b), &expansion_sum(&t_c, &t_d));
    Orientation::from_sign(sign(&det))
}

/// Is `d` inside the circumcircle of the counterclockwise triangle
/// `(a, b, c)`? (`Positive` = strictly inside, for a CCW triangle.)
pub fn incircle(a: Vec2, b: Vec2, c: Vec2, d: Vec2) -> Orientation {
    let adx = a.x - d.x;
    let ady = a.y - d.y;
    let bdx = b.x - d.x;
    let bdy = b.y - d.y;
    let cdx = c.x - d.x;
    let cdy = c.y - d.y;

    let bdxcdy = bdx * cdy;
    let cdxbdy = cdx * bdy;
    let alift = adx * adx + ady * ady;
    let cdxady = cdx * ady;
    let adxcdy = adx * cdy;
    let blift = bdx * bdx + bdy * bdy;
    let adxbdy = adx * bdy;
    let bdxady = bdx * ady;
    let clift = cdx * cdx + cdy * cdy;

    let det = alift * (bdxcdy - cdxbdy) + blift * (cdxady - adxcdy) + clift * (adxbdy - bdxady);
    let permanent = alift * (bdxcdy.abs() + cdxbdy.abs())
        + blift * (cdxady.abs() + adxcdy.abs())
        + clift * (adxbdy.abs() + bdxady.abs());

    if det.abs() > ICC_BOUND * permanent {
        return Orientation::from_sign(if det > 0.0 { 1 } else { -1 });
    }
    incircle_exact(a, b, c, d)
}

fn incircle_exact(a: Vec2, b: Vec2, c: Vec2, d: Vec2) -> Orientation {
    let adx = diff_expansion(a.x, d.x);
    let ady = diff_expansion(a.y, d.y);
    let bdx = diff_expansion(b.x, d.x);
    let bdy = diff_expansion(b.y, d.y);
    let cdx = diff_expansion(c.x, d.x);
    let cdy = diff_expansion(c.y, d.y);

    let lift2 = |x: &[f64], y: &[f64]| expansion_sum(&expansion_mul(x, x), &expansion_mul(y, y));
    let alift = lift2(&adx, &ady);
    let blift = lift2(&bdx, &bdy);
    let clift = lift2(&cdx, &cdy);

    let m_a = expansion_diff(&expansion_mul(&bdx, &cdy), &expansion_mul(&cdx, &bdy));
    let m_b = expansion_diff(&expansion_mul(&cdx, &ady), &expansion_mul(&adx, &cdy));
    let m_c = expansion_diff(&expansion_mul(&adx, &bdy), &expansion_mul(&bdx, &ady));

    let t_a = expansion_mul(&alift, &m_a);
    let t_b = expansion_mul(&blift, &m_b);
    let t_c = expansion_mul(&clift, &m_c);
    Orientation::from_sign(sign(&expansion_sum(&expansion_sum(&t_a, &t_b), &t_c)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orient2d_basic() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(1.0, 0.0);
        let c = Vec2::new(0.0, 1.0);
        assert_eq!(orient2d(a, b, c), Orientation::Positive);
        assert_eq!(orient2d(a, c, b), Orientation::Negative);
        assert_eq!(orient2d(a, b, Vec2::new(2.0, 0.0)), Orientation::Zero);
    }

    #[test]
    fn orient2d_nearly_collinear_exact() {
        // Classic adversarial case: points on a line with a tiny offset that
        // naive arithmetic misjudges.
        let a = Vec2::new(0.5, 0.5);
        let b = Vec2::new(12.0, 12.0);
        let c = Vec2::new(24.0, 24.0);
        assert_eq!(orient2d(a, b, c), Orientation::Zero);
        // One-ulp perturbations must be resolved exactly.
        let c_up = Vec2::new(24.0, 24.0_f64.next_up());
        assert_eq!(orient2d(a, b, c_up), Orientation::Positive);
        let c_dn = Vec2::new(24.0, 24.0_f64.next_down());
        assert_eq!(orient2d(a, b, c_dn), Orientation::Negative);
    }

    #[test]
    fn orient3d_basic() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(1.0, 0.0, 0.0);
        let c = Vec3::new(0.0, 1.0, 0.0);
        let d_up = Vec3::new(0.0, 0.0, 1.0);
        // det[a-d, b-d, c-d] with d above the CCW triangle abc:
        // rows (0,0,-1),(1,0,-1),(0,1,-1) -> det = -1... verify sign matches
        // signed-volume convention via the raw determinant.
        let det = orient3d_det(a, b, c, d_up);
        let o = orient3d(a, b, c, d_up);
        assert_eq!(o.is_positive(), det > 0.0);
        assert_eq!(
            orient3d(a, b, c, Vec3::new(0.3, 0.3, 0.0)),
            Orientation::Zero
        );
        assert_eq!(orient3d(a, b, c, d_up).flipped(), orient3d(a, c, b, d_up));
    }

    #[test]
    fn orient3d_coplanar_exact() {
        // Points on the plane x + y + z = 1 with coordinates that stress
        // rounding.
        let a = Vec3::new(1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0);
        let b = Vec3::new(0.1, 0.2, 0.7);
        let c = Vec3::new(0.25, 0.5, 0.25);
        // A fourth point constructed to be exactly coplanar is hard in
        // floating point, so instead take three collinear-ish combinations of
        // a..c and verify determinant sign stability under tiny perturbation.
        let mid = Vec3::new(
            (a.x + b.x + c.x) / 3.0,
            (a.y + b.y + c.y) / 3.0,
            (a.z + b.z + c.z) / 3.0,
        );
        let o1 = orient3d(a, b, c, mid);
        // Whatever the (tiny) rounding of `mid`, the exact predicate must give
        // the same answer when called twice and flip under row swap.
        assert_eq!(o1, orient3d(a, b, c, mid));
        assert_eq!(o1.flipped(), orient3d(b, a, c, mid));
    }

    #[test]
    fn orient3d_exact_lattice() {
        // Exactly coplanar lattice points (all integers).
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(2.0, 4.0, 6.0);
        let c = Vec3::new(1.0, 1.0, 1.0);
        let d = Vec3::new(3.0, 5.0, 7.0); // b + c
        assert_eq!(orient3d(a, b, c, d), Orientation::Zero);
    }

    fn circumsphere_sign(a: Vec3, b: Vec3, c: Vec3, d: Vec3, e: Vec3) -> f64 {
        // Direct circumcenter computation (not robust, for cross-checking on
        // well-conditioned inputs only).
        let m = [
            [b.x - a.x, b.y - a.y, b.z - a.z],
            [c.x - a.x, c.y - a.y, c.z - a.z],
            [d.x - a.x, d.y - a.y, d.z - a.z],
        ];
        let rhs = [
            0.5 * (b.norm_sq() - a.norm_sq()),
            0.5 * (c.norm_sq() - a.norm_sq()),
            0.5 * (d.norm_sq() - a.norm_sq()),
        ];
        let det = |m: &[[f64; 3]; 3]| {
            m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
                - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
                + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
        };
        let d0 = det(&m);
        let mut mx = m;
        mx[0][0] = rhs[0];
        mx[1][0] = rhs[1];
        mx[2][0] = rhs[2];
        let mut my = m;
        my[0][1] = rhs[0];
        my[1][1] = rhs[1];
        my[2][1] = rhs[2];
        let mut mz = m;
        mz[0][2] = rhs[0];
        mz[1][2] = rhs[1];
        mz[2][2] = rhs[2];
        let center = Vec3::new(det(&mx) / d0, det(&my) / d0, det(&mz) / d0);
        let r2 = center.distance_sq(a);
        r2 - center.distance_sq(e) // positive when e inside
    }

    #[test]
    fn insphere_matches_direct_circumsphere() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(1.0, 0.0, 0.0);
        let c = Vec3::new(0.0, 1.0, 0.0);
        let d = Vec3::new(0.0, 0.0, 1.0);
        assert!(orient3d(a, b, c, d).is_negative());
        // Use the positively oriented ordering.
        let (a, b) = (b, a);
        assert!(orient3d(a, b, c, d).is_positive());

        let inside = Vec3::new(0.25, 0.25, 0.25);
        let outside = Vec3::new(2.0, 2.0, 2.0);
        assert_eq!(
            insphere(a, b, c, d, inside).is_positive(),
            circumsphere_sign(a, b, c, d, inside) > 0.0
        );
        assert!(insphere(a, b, c, d, inside).is_positive());
        assert!(insphere(a, b, c, d, outside).is_negative());
    }

    #[test]
    fn insphere_cospherical_exact() {
        // Five points of a cube: the first four define a sphere through all
        // eight corners, so any other corner is exactly cospherical.
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(0.0, 0.0, 0.0);
        let c = Vec3::new(0.0, 1.0, 0.0);
        let d = Vec3::new(0.0, 0.0, 1.0);
        assert!(orient3d(a, b, c, d).is_positive());
        let e = Vec3::new(1.0, 1.0, 1.0);
        assert_eq!(insphere(a, b, c, d, e), Orientation::Zero);
        let e_in = Vec3::new(1.0 - 1e-14, 1.0 - 1e-14, 1.0 - 1e-14);
        assert_eq!(insphere(a, b, c, d, e_in), Orientation::Positive);
    }

    #[test]
    fn insphere_orientation_antisymmetry() {
        // Swapping two of the defining points flips the sign.
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(0.0, 0.0, 0.0);
        let c = Vec3::new(0.0, 1.0, 0.0);
        let d = Vec3::new(0.0, 0.0, 1.0);
        let e = Vec3::new(0.1, 0.2, 0.3);
        assert_eq!(insphere(a, b, c, d, e).flipped(), insphere(b, a, c, d, e));
    }

    #[test]
    fn incircle_basic() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(1.0, 0.0);
        let c = Vec2::new(0.0, 1.0);
        assert!(orient2d(a, b, c).is_positive());
        assert!(incircle(a, b, c, Vec2::new(0.5, 0.5)).is_positive());
        assert!(incircle(a, b, c, Vec2::new(5.0, 5.0)).is_negative());
        // (1,1) is on the circle through the right triangle's vertices.
        assert_eq!(incircle(a, b, c, Vec2::new(1.0, 1.0)), Orientation::Zero);
    }
}
