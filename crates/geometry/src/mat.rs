//! Minimal 3×3 matrices: rotations for arbitrary line-of-sight directions.
//!
//! The paper integrates along `z` "to make calculations simpler, however,
//! in principle any arbitrary direction can be chosen by a simple rotation
//! of the triangulation" (§IV-A-2). [`Mat3::rotation_to_z`] builds exactly
//! that rotation.

use crate::vec::Vec3;

/// A 3×3 matrix, row-major.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Mat3 {
    pub rows: [Vec3; 3],
}

impl Mat3 {
    pub const IDENTITY: Mat3 = Mat3 {
        rows: [
            Vec3 {
                x: 1.0,
                y: 0.0,
                z: 0.0,
            },
            Vec3 {
                x: 0.0,
                y: 1.0,
                z: 0.0,
            },
            Vec3 {
                x: 0.0,
                y: 0.0,
                z: 1.0,
            },
        ],
    };

    #[inline]
    pub fn from_rows(r0: Vec3, r1: Vec3, r2: Vec3) -> Mat3 {
        Mat3 { rows: [r0, r1, r2] }
    }

    /// Matrix–vector product.
    #[inline]
    pub fn apply(&self, v: Vec3) -> Vec3 {
        Vec3::new(
            self.rows[0].dot(v),
            self.rows[1].dot(v),
            self.rows[2].dot(v),
        )
    }

    /// Matrix–matrix product `self * o`.
    pub fn mul(&self, o: &Mat3) -> Mat3 {
        let col = |j: usize| Vec3::new(o.rows[0][j], o.rows[1][j], o.rows[2][j]);
        let (c0, c1, c2) = (col(0), col(1), col(2));
        Mat3::from_rows(
            Vec3::new(
                self.rows[0].dot(c0),
                self.rows[0].dot(c1),
                self.rows[0].dot(c2),
            ),
            Vec3::new(
                self.rows[1].dot(c0),
                self.rows[1].dot(c1),
                self.rows[1].dot(c2),
            ),
            Vec3::new(
                self.rows[2].dot(c0),
                self.rows[2].dot(c1),
                self.rows[2].dot(c2),
            ),
        )
    }

    /// Transpose (= inverse, for rotations).
    pub fn transpose(&self) -> Mat3 {
        Mat3::from_rows(
            Vec3::new(self.rows[0].x, self.rows[1].x, self.rows[2].x),
            Vec3::new(self.rows[0].y, self.rows[1].y, self.rows[2].y),
            Vec3::new(self.rows[0].z, self.rows[1].z, self.rows[2].z),
        )
    }

    pub fn determinant(&self) -> f64 {
        self.rows[0].dot(self.rows[1].cross(self.rows[2]))
    }

    /// Rotation about a unit axis by `angle` (Rodrigues).
    pub fn rotation_axis_angle(axis: Vec3, angle: f64) -> Mat3 {
        let a = axis.normalized().expect("zero rotation axis");
        let (s, c) = angle.sin_cos();
        let t = 1.0 - c;
        Mat3::from_rows(
            Vec3::new(
                t * a.x * a.x + c,
                t * a.x * a.y - s * a.z,
                t * a.x * a.z + s * a.y,
            ),
            Vec3::new(
                t * a.x * a.y + s * a.z,
                t * a.y * a.y + c,
                t * a.y * a.z - s * a.x,
            ),
            Vec3::new(
                t * a.x * a.z - s * a.y,
                t * a.y * a.z + s * a.x,
                t * a.z * a.z + c,
            ),
        )
    }

    /// The rotation taking direction `dir` to `+ẑ` — the "simple rotation of
    /// the triangulation" that reduces an arbitrary line of sight to the
    /// kernel's vertical convention.
    pub fn rotation_to_z(dir: Vec3) -> Mat3 {
        let d = dir.normalized().expect("zero direction");
        let z = Vec3::new(0.0, 0.0, 1.0);
        let c = d.dot(z);
        if c > 1.0 - 1e-14 {
            return Mat3::IDENTITY;
        }
        if c < -1.0 + 1e-14 {
            // Antiparallel: rotate π about x.
            return Mat3::rotation_axis_angle(Vec3::new(1.0, 0.0, 0.0), std::f64::consts::PI);
        }
        let axis = d.cross(z);
        Mat3::rotation_axis_angle(axis, c.acos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_noop() {
        let v = Vec3::new(1.0, -2.0, 3.5);
        assert_eq!(Mat3::IDENTITY.apply(v), v);
        assert_eq!(Mat3::IDENTITY.determinant(), 1.0);
    }

    #[test]
    fn rotation_preserves_lengths_and_orientation() {
        let r = Mat3::rotation_axis_angle(Vec3::new(1.0, 2.0, 3.0), 0.7);
        let v = Vec3::new(0.3, -1.1, 2.2);
        assert!((r.apply(v).norm() - v.norm()).abs() < 1e-12);
        assert!((r.determinant() - 1.0).abs() < 1e-12);
        // R Rᵀ = I.
        let rt = r.mul(&r.transpose());
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((rt.rows[i][j] - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn rotation_to_z_maps_direction() {
        for dir in [
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(0.0, 0.0, -1.0),
            Vec3::new(1.0, 1.0, 1.0),
            Vec3::new(-0.3, 0.9, -0.5),
        ] {
            let r = Mat3::rotation_to_z(dir);
            let mapped = r.apply(dir.normalized().unwrap());
            assert!(
                mapped.distance(Vec3::new(0.0, 0.0, 1.0)) < 1e-12,
                "dir {dir:?} -> {mapped:?}"
            );
            assert!(
                (r.determinant() - 1.0).abs() < 1e-12,
                "improper rotation for {dir:?}"
            );
        }
    }

    #[test]
    fn axis_angle_quarter_turn() {
        let r = Mat3::rotation_axis_angle(Vec3::new(0.0, 0.0, 1.0), std::f64::consts::FRAC_PI_2);
        let v = r.apply(Vec3::new(1.0, 0.0, 0.0));
        assert!(v.distance(Vec3::new(0.0, 1.0, 0.0)) < 1e-12);
    }

    #[test]
    fn transpose_inverts_rotation() {
        let r = Mat3::rotation_to_z(Vec3::new(0.4, -0.7, 0.2));
        let v = Vec3::new(5.0, 6.0, 7.0);
        assert!(r.transpose().apply(r.apply(v)).distance(v) < 1e-12);
    }
}
