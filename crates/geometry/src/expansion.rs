//! Floating-point expansion arithmetic (Shewchuk 1997).
//!
//! An *expansion* is a sum of `f64` components, ordered by increasing
//! magnitude, whose components are non-overlapping: the expansion represents
//! the exact real value `e[0] + e[1] + ... + e[n-1]` with no rounding error.
//! Every arithmetic routine here is exact; this is the machinery behind the
//! exact-fallback branch of the [`crate::predicates`].
//!
//! The primitives (`two_sum`, `two_product`, ...) follow Shewchuk's
//! "Adaptive Precision Floating-Point Arithmetic and Fast Robust Geometric
//! Predicates". We use `f64::mul_add` (FMA, or a correctly-rounded softfloat
//! fallback on targets without it) for `two_product`, which replaces the
//! classic Dekker splitting.
//!
//! Expansions produced here are *zero-eliminated*: no component is `0.0`
//! unless the whole expansion is the single component `0.0`. That makes the
//! sign of an expansion the sign of its last (largest-magnitude) component.

/// Exact sum: returns `(hi, lo)` with `hi + lo == a + b` exactly and
/// `hi == fl(a + b)`.
#[inline]
pub fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let hi = a + b;
    let bvirt = hi - a;
    let avirt = hi - bvirt;
    let lo = (a - avirt) + (b - bvirt);
    (hi, lo)
}

/// Exact sum requiring `exponent(a) >= exponent(b)` (Shewchuk's condition;
/// `|a| >= |b|` is sufficient but not necessary — `scale_expansion` calls
/// this with equal-exponent operands). Cheaper than [`two_sum`].
#[inline]
pub fn fast_two_sum(a: f64, b: f64) -> (f64, f64) {
    let hi = a + b;
    let lo = b - (hi - a);
    (hi, lo)
}

/// Exact difference: `hi + lo == a - b` exactly.
#[inline]
pub fn two_diff(a: f64, b: f64) -> (f64, f64) {
    let hi = a - b;
    let bvirt = a - hi;
    let avirt = hi + bvirt;
    let lo = (a - avirt) + (bvirt - b);
    (hi, lo)
}

/// Exact product via FMA: `hi + lo == a * b` exactly.
#[inline]
pub fn two_product(a: f64, b: f64) -> (f64, f64) {
    let hi = a * b;
    let lo = f64::mul_add(a, b, -hi);
    (hi, lo)
}

/// Exact square via FMA.
#[inline]
pub fn two_square(a: f64) -> (f64, f64) {
    two_product(a, a)
}

/// Add a single `f64` to an expansion. Output is zero-eliminated.
pub fn grow_expansion(e: &[f64], b: f64) -> Vec<f64> {
    let mut out = Vec::with_capacity(e.len() + 1);
    let mut q = b;
    for &enow in e {
        let (qnew, h) = two_sum(q, enow);
        if h != 0.0 {
            out.push(h);
        }
        q = qnew;
    }
    if q != 0.0 || out.is_empty() {
        out.push(q);
    }
    out
}

/// Exact sum of two expansions.
///
/// Implemented as repeated [`grow_expansion`], which by Shewchuk's
/// grow-expansion theorem keeps the output non-overlapping and sorted by
/// increasing magnitude — the invariant [`sign`] depends on. (The fancier
/// linear-time merge is easy to get subtly wrong in exactly that invariant;
/// these sums only run on the rare exact-fallback path, so the extra
/// `O(|e|·|f|)` cost is irrelevant.)
pub fn expansion_sum(e: &[f64], f: &[f64]) -> Vec<f64> {
    if e.is_empty() || (e.len() == 1 && e[0] == 0.0) {
        return if f.is_empty() { vec![0.0] } else { f.to_vec() };
    }
    let mut acc = e.to_vec();
    for &c in f {
        if c != 0.0 {
            acc = grow_expansion(&acc, c);
        }
    }
    acc
}

/// Exact product of an expansion by a single `f64` (scale with zero
/// elimination).
pub fn scale_expansion(e: &[f64], b: f64) -> Vec<f64> {
    if b == 0.0 {
        return vec![0.0];
    }
    let mut out = Vec::with_capacity(2 * e.len());
    let (mut q, h) = two_product(e[0], b);
    if h != 0.0 {
        out.push(h);
    }
    for &enow in &e[1..] {
        let (p_hi, p_lo) = two_product(enow, b);
        let (sum, h1) = two_sum(q, p_lo);
        if h1 != 0.0 {
            out.push(h1);
        }
        let (qnew, h2) = fast_two_sum(p_hi, sum);
        if h2 != 0.0 {
            out.push(h2);
        }
        q = qnew;
    }
    if q != 0.0 || out.is_empty() {
        out.push(q);
    }
    out
}

/// Exact product of two expansions (distribute + merge).
pub fn expansion_mul(e: &[f64], f: &[f64]) -> Vec<f64> {
    let mut acc = vec![0.0];
    for &fc in f {
        if fc == 0.0 {
            continue;
        }
        let part = scale_expansion(e, fc);
        acc = expansion_sum(&acc, &part);
    }
    acc
}

/// Negate an expansion.
pub fn expansion_neg(e: &[f64]) -> Vec<f64> {
    e.iter().map(|&c| -c).collect()
}

/// Exact difference of two expansions.
pub fn expansion_diff(e: &[f64], f: &[f64]) -> Vec<f64> {
    expansion_sum(e, &expansion_neg(f))
}

/// Approximate value (correct to within one ulp of the exact value for
/// non-overlapping expansions; exact for the common short cases).
#[inline]
pub fn estimate(e: &[f64]) -> f64 {
    e.iter().sum()
}

/// The exact sign of the value represented by a zero-eliminated expansion:
/// the sign of the largest-magnitude (last) component.
#[inline]
pub fn sign(e: &[f64]) -> i32 {
    match e.last() {
        Some(&c) if c > 0.0 => 1,
        Some(&c) if c < 0.0 => -1,
        _ => 0,
    }
}

/// Build the 2-component expansion of an exact product of two doubles.
#[inline]
pub fn product_expansion(a: f64, b: f64) -> Vec<f64> {
    let (hi, lo) = two_product(a, b);
    if lo != 0.0 {
        vec![lo, hi]
    } else {
        vec![hi]
    }
}

/// Build the 2-component expansion of an exact difference `a - b`.
#[inline]
pub fn diff_expansion(a: f64, b: f64) -> Vec<f64> {
    let (hi, lo) = two_diff(a, b);
    if lo != 0.0 {
        vec![lo, hi]
    } else {
        vec![hi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_nonoverlapping_sorted(e: &[f64]) {
        for w in e.windows(2) {
            assert!(
                w[0].abs() <= w[1].abs(),
                "expansion not sorted by magnitude: {e:?}"
            );
        }
    }

    #[test]
    fn two_sum_exact_on_integers() {
        let (hi, lo) = two_sum(1e16, 1.0);
        assert_eq!(hi + lo, 1e16 + 1.0); // f64 rounds, but...
        assert_eq!(hi, 1e16); // 1e16 + 1 rounds to 1e16 at this magnitude? Actually 1e16+1 is representable.
        let _ = lo;
        // A case where rounding genuinely loses the low part:
        let a = 1.0_f64;
        let b = 2f64.powi(-60);
        let (hi, lo) = two_sum(a, b);
        assert_eq!(hi, 1.0);
        assert_eq!(lo, b);
    }

    #[test]
    fn two_product_exact() {
        let a = 1.0 + 2f64.powi(-30);
        let b = 1.0 - 2f64.powi(-30);
        let (hi, lo) = two_product(a, b);
        // a*b = 1 - 2^-60 exactly; hi rounds to 1, lo = -2^-60.
        assert_eq!(hi, 1.0);
        assert_eq!(lo, -(2f64.powi(-60)));
    }

    #[test]
    fn two_diff_exact() {
        let a = 1e-20;
        let b = 1.0;
        let (hi, lo) = two_diff(a, b);
        assert_eq!(hi, -1.0);
        assert_eq!(lo, 1e-20);
    }

    #[test]
    fn grow_and_sum_integer_exactness() {
        // Build expansions of big+small integer pieces and verify exact totals
        // against i128.
        let parts: [f64; 5] = [
            9007199254740992.0,
            3.0,
            -7.0,
            1048576.0,
            -9007199254740991.0,
        ];
        let mut e = vec![0.0];
        let mut exact: i128 = 0;
        for &p in &parts {
            e = grow_expansion(&e, p);
            exact += p as i128;
            assert_nonoverlapping_sorted(&e);
        }
        let total: i128 = e.iter().map(|&c| c as i128).sum();
        assert_eq!(total, exact);
    }

    #[test]
    fn expansion_sum_merges_exactly() {
        let a = grow_expansion(&[2f64.powi(70)], 1.0);
        let b = grow_expansion(&[-(2f64.powi(70))], 3.0);
        let s = expansion_sum(&a, &b);
        assert_eq!(estimate(&s), 4.0);
        assert_eq!(sign(&s), 1);
    }

    #[test]
    fn scale_expansion_exact_integers() {
        let e = grow_expansion(&[2f64.powi(53)], 1.0); // 2^53 + 1, not representable in one f64
        let s = scale_expansion(&e, 3.0);
        let total: i128 = s.iter().map(|&c| c as i128).sum();
        assert_eq!(total, 3 * ((1_i128 << 53) + 1));
    }

    #[test]
    fn expansion_mul_matches_i128() {
        let a = grow_expansion(&[2f64.powi(40)], 12345.0); // 2^40 + 12345
        let b = grow_expansion(&[2f64.powi(30)], -987.0); // 2^30 - 987
        let p = expansion_mul(&a, &b);
        let exact = ((1_i128 << 40) + 12345) * ((1_i128 << 30) - 987);
        let total: i128 = p.iter().map(|&c| c as i128).sum();
        assert_eq!(total, exact);
        assert_eq!(sign(&p), 1);
    }

    #[test]
    fn diff_and_neg() {
        let a = vec![3.0];
        let b = vec![5.0];
        let d = expansion_diff(&a, &b);
        assert_eq!(estimate(&d), -2.0);
        assert_eq!(sign(&d), -1);
        assert_eq!(sign(&expansion_neg(&d)), 1);
    }

    #[test]
    fn sign_of_zero() {
        assert_eq!(sign(&[0.0]), 0);
        let z = expansion_diff(&[7.5], &[7.5]);
        assert_eq!(sign(&z), 0);
    }

    #[test]
    fn cancellation_keeps_exact_residual() {
        // (1 + 2^-52) - 1 must come out exactly 2^-52 through expansions.
        let one_plus = vec![2f64.powi(-52), 1.0];
        let r = expansion_diff(&one_plus, &[1.0]);
        assert_eq!(estimate(&r), 2f64.powi(-52));
    }
}
