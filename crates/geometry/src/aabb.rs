//! Axis-aligned bounding boxes.
//!
//! Used for the uniform volume decomposition, ghost-zone construction
//! (paper §IV-B: ghosts extend `l_F / 2` beyond each sub-volume boundary) and
//! for the cubic particle-count queries of the workload model (paper §IV-C-1).

use crate::vec::{Vec2, Vec3};

/// An axis-aligned box in 3D, `lo` inclusive / `hi` exclusive for point
/// membership (half-open, so a uniform decomposition tiles space exactly).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Aabb3 {
    pub lo: Vec3,
    pub hi: Vec3,
}

/// An axis-aligned rectangle in 2D (half-open like [`Aabb3`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Aabb2 {
    pub lo: Vec2,
    pub hi: Vec2,
}

impl Aabb3 {
    #[inline]
    pub fn new(lo: Vec3, hi: Vec3) -> Self {
        Aabb3 { lo, hi }
    }

    /// A cube of side `side` centred on `c`.
    #[inline]
    pub fn cube(c: Vec3, side: f64) -> Self {
        let h = side * 0.5;
        Aabb3 {
            lo: c - Vec3::splat(h),
            hi: c + Vec3::splat(h),
        }
    }

    /// Smallest box containing every point; `None` for an empty iterator.
    pub fn from_points<I: IntoIterator<Item = Vec3>>(points: I) -> Option<Self> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut lo = first;
        let mut hi = first;
        for p in it {
            lo = lo.min(p);
            hi = hi.max(p);
        }
        Some(Aabb3 { lo, hi })
    }

    #[inline]
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.lo.x
            && p.x < self.hi.x
            && p.y >= self.lo.y
            && p.y < self.hi.y
            && p.z >= self.lo.z
            && p.z < self.hi.z
    }

    /// Inclusive-on-both-ends membership, used for ghost-zone capture where a
    /// particle exactly on the outer boundary must still be replicated.
    #[inline]
    pub fn contains_closed(&self, p: Vec3) -> bool {
        p.x >= self.lo.x
            && p.x <= self.hi.x
            && p.y >= self.lo.y
            && p.y <= self.hi.y
            && p.z >= self.lo.z
            && p.z <= self.hi.z
    }

    #[inline]
    pub fn center(&self) -> Vec3 {
        (self.lo + self.hi) * 0.5
    }

    #[inline]
    pub fn extent(&self) -> Vec3 {
        self.hi - self.lo
    }

    #[inline]
    pub fn volume(&self) -> f64 {
        let e = self.extent();
        (e.x * e.y * e.z).max(0.0)
    }

    /// Grow by `margin` on every side (the ghost-zone operation).
    #[inline]
    pub fn inflated(&self, margin: f64) -> Aabb3 {
        Aabb3 {
            lo: self.lo - Vec3::splat(margin),
            hi: self.hi + Vec3::splat(margin),
        }
    }

    #[inline]
    pub fn intersects(&self, o: &Aabb3) -> bool {
        self.lo.x < o.hi.x
            && o.lo.x < self.hi.x
            && self.lo.y < o.hi.y
            && o.lo.y < self.hi.y
            && self.lo.z < o.hi.z
            && o.lo.z < self.hi.z
    }

    /// Intersection box, `None` when disjoint.
    pub fn intersection(&self, o: &Aabb3) -> Option<Aabb3> {
        let lo = self.lo.max(o.lo);
        let hi = self.hi.min(o.hi);
        if lo.x < hi.x && lo.y < hi.y && lo.z < hi.z {
            Some(Aabb3 { lo, hi })
        } else {
            None
        }
    }

    /// The 2D footprint in the x-y plane (line-of-sight projection).
    #[inline]
    pub fn footprint(&self) -> Aabb2 {
        Aabb2 {
            lo: self.lo.xy(),
            hi: self.hi.xy(),
        }
    }
}

impl Aabb2 {
    #[inline]
    pub fn new(lo: Vec2, hi: Vec2) -> Self {
        Aabb2 { lo, hi }
    }

    /// A square of side `side` centred on `c`.
    #[inline]
    pub fn square(c: Vec2, side: f64) -> Self {
        let h = side * 0.5;
        Aabb2 {
            lo: c - Vec2::new(h, h),
            hi: c + Vec2::new(h, h),
        }
    }

    #[inline]
    pub fn contains(&self, p: Vec2) -> bool {
        p.x >= self.lo.x && p.x < self.hi.x && p.y >= self.lo.y && p.y < self.hi.y
    }

    #[inline]
    pub fn center(&self) -> Vec2 {
        (self.lo + self.hi) * 0.5
    }

    #[inline]
    pub fn extent(&self) -> Vec2 {
        self.hi - self.lo
    }

    #[inline]
    pub fn area(&self) -> f64 {
        let e = self.extent();
        (e.x * e.y).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_open_membership() {
        let b = Aabb3::new(Vec3::ZERO, Vec3::splat(1.0));
        assert!(b.contains(Vec3::ZERO));
        assert!(!b.contains(Vec3::splat(1.0)));
        assert!(b.contains_closed(Vec3::splat(1.0)));
    }

    #[test]
    fn cube_centering() {
        let b = Aabb3::cube(Vec3::new(1.0, 2.0, 3.0), 2.0);
        assert_eq!(b.lo, Vec3::new(0.0, 1.0, 2.0));
        assert_eq!(b.hi, Vec3::new(2.0, 3.0, 4.0));
        assert_eq!(b.center(), Vec3::new(1.0, 2.0, 3.0));
        assert!((b.volume() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn from_points_bounds_all() {
        let pts = [
            Vec3::new(0.0, 5.0, -1.0),
            Vec3::new(2.0, -3.0, 4.0),
            Vec3::new(1.0, 1.0, 1.0),
        ];
        let b = Aabb3::from_points(pts).unwrap();
        assert_eq!(b.lo, Vec3::new(0.0, -3.0, -1.0));
        assert_eq!(b.hi, Vec3::new(2.0, 5.0, 4.0));
        assert!(Aabb3::from_points(std::iter::empty()).is_none());
    }

    #[test]
    fn inflate_is_ghost_margin() {
        let b = Aabb3::new(Vec3::ZERO, Vec3::splat(4.0)).inflated(0.5);
        assert_eq!(b.lo, Vec3::splat(-0.5));
        assert_eq!(b.hi, Vec3::splat(4.5));
    }

    #[test]
    fn intersection_cases() {
        let a = Aabb3::new(Vec3::ZERO, Vec3::splat(2.0));
        let b = Aabb3::new(Vec3::splat(1.0), Vec3::splat(3.0));
        let c = Aabb3::new(Vec3::splat(5.0), Vec3::splat(6.0));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, Aabb3::new(Vec3::splat(1.0), Vec3::splat(2.0)));
        assert!(a.intersection(&c).is_none());
        // Touching boxes do not intersect under the half-open convention.
        let d = Aabb3::new(Vec3::new(2.0, 0.0, 0.0), Vec3::new(4.0, 2.0, 2.0));
        assert!(!a.intersects(&d));
    }

    #[test]
    fn footprint_projects() {
        let b = Aabb3::new(Vec3::new(0.0, 1.0, 2.0), Vec3::new(3.0, 4.0, 5.0));
        let f = b.footprint();
        assert_eq!(f.lo, Vec2::new(0.0, 1.0));
        assert_eq!(f.hi, Vec2::new(3.0, 4.0));
        assert!((f.area() - 9.0).abs() < 1e-12);
    }
}
