//! Small fixed-size vector types.
//!
//! These are deliberately minimal: `f64` components, `Copy`, and only the
//! operations the rest of the workspace needs. Keeping them local (rather than
//! pulling in a linear-algebra crate) keeps the hot loops transparent to the
//! optimizer and the dependency tree small.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A 3D vector / point with `f64` components.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

/// A 2D vector / point with `f64` components.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    pub x: f64,
    pub y: f64,
}

impl Vec3 {
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// All components set to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * o.z - self.z * o.y,
            y: self.z * o.x - self.x * o.z,
            z: self.x * o.y - self.y * o.x,
        }
    }

    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Unit vector in the same direction; `None` if the norm underflows.
    #[inline]
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n > 0.0 && n.is_finite() {
            Some(self / n)
        } else {
            None
        }
    }

    #[inline]
    pub fn distance(self, o: Vec3) -> f64 {
        (self - o).norm()
    }

    #[inline]
    pub fn distance_sq(self, o: Vec3) -> f64 {
        (self - o).norm_sq()
    }

    /// Drop the `z` component (projection along the line of sight; paper
    /// integrates along `z` by convention, §IV-A-2).
    #[inline]
    pub fn xy(self) -> Vec2 {
        Vec2 {
            x: self.x,
            y: self.y,
        }
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }

    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Largest absolute component.
    #[inline]
    pub fn max_abs(self) -> f64 {
        self.x.abs().max(self.y.abs()).max(self.z.abs())
    }
}

impl Vec2 {
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    #[inline]
    pub fn dot(self, o: Vec2) -> f64 {
        self.x * o.x + self.y * o.y
    }

    /// The z-component of the 3D cross product (signed parallelogram area).
    #[inline]
    pub fn perp_dot(self, o: Vec2) -> f64 {
        self.x * o.y - self.y * o.x
    }

    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    #[inline]
    pub fn distance(self, o: Vec2) -> f64 {
        (self - o).norm()
    }

    #[inline]
    pub fn distance_sq(self, o: Vec2) -> f64 {
        (self - o).norm_sq()
    }

    /// Lift back to 3D at height `z`.
    #[inline]
    pub fn with_z(self, z: f64) -> Vec3 {
        Vec3 {
            x: self.x,
            y: self.y,
            z,
        }
    }

    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

macro_rules! impl_binop3 {
    ($trait:ident, $fn:ident, $op:tt) => {
        impl $trait for Vec3 {
            type Output = Vec3;
            #[inline]
            fn $fn(self, o: Vec3) -> Vec3 {
                Vec3::new(self.x $op o.x, self.y $op o.y, self.z $op o.z)
            }
        }
    };
}

macro_rules! impl_binop2 {
    ($trait:ident, $fn:ident, $op:tt) => {
        impl $trait for Vec2 {
            type Output = Vec2;
            #[inline]
            fn $fn(self, o: Vec2) -> Vec2 {
                Vec2::new(self.x $op o.x, self.y $op o.y)
            }
        }
    };
}

impl_binop3!(Add, add, +);
impl_binop3!(Sub, sub, -);
impl_binop2!(Add, add, +);
impl_binop2!(Sub, sub, -);

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, s: f64) -> Vec2 {
        Vec2::new(self.x * s, self.y * s)
    }
}

impl Mul<Vec2> for f64 {
    type Output = Vec2;
    #[inline]
    fn mul(self, v: Vec2) -> Vec2 {
        v * self
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, s: f64) -> Vec2 {
        Vec2::new(self.x / s, self.y / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Vec3) {
        *self = *self - o;
    }
}

impl AddAssign for Vec2 {
    #[inline]
    fn add_assign(&mut self, o: Vec2) {
        *self = *self + o;
    }
}

impl SubAssign for Vec2 {
    #[inline]
    fn sub_assign(&mut self, o: Vec2) {
        *self = *self - o;
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl IndexMut<usize> for Vec3 {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl Index<usize> for Vec2 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            _ => panic!("Vec2 index out of range: {i}"),
        }
    }
}

impl fmt::Debug for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

impl fmt::Debug for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<[f64; 3]> for Vec3 {
    #[inline]
    fn from(a: [f64; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl From<Vec3> for [f64; 3] {
    #[inline]
    fn from(v: Vec3) -> Self {
        [v.x, v.y, v.z]
    }
}

impl From<[f64; 2]> for Vec2 {
    #[inline]
    fn from(a: [f64; 2]) -> Self {
        Vec2::new(a[0], a[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_is_orthogonal() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-4.0, 5.0, 0.5);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-12);
        assert!(c.dot(b).abs() < 1e-12);
    }

    #[test]
    fn cross_right_handed() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(x.cross(y), Vec3::new(0.0, 0.0, 1.0));
    }

    #[test]
    fn normalized_unit_length() {
        let v = Vec3::new(3.0, 4.0, 12.0);
        let n = v.normalized().unwrap();
        assert!((n.norm() - 1.0).abs() < 1e-15);
        assert!(Vec3::ZERO.normalized().is_none());
    }

    #[test]
    fn perp_dot_sign_follows_orientation() {
        let a = Vec2::new(1.0, 0.0);
        let b = Vec2::new(0.0, 1.0);
        assert!(a.perp_dot(b) > 0.0);
        assert!(b.perp_dot(a) < 0.0);
    }

    #[test]
    fn arithmetic_roundtrip() {
        let a = Vec3::new(1.5, -2.0, 0.25);
        let b = Vec3::new(0.5, 1.0, -0.75);
        assert_eq!(a + b - b, a);
        assert_eq!((a * 2.0) / 2.0, a);
        assert_eq!(-(-a), a);
    }

    #[test]
    fn indexing_matches_fields() {
        let v = Vec3::new(7.0, 8.0, 9.0);
        assert_eq!(v[0], v.x);
        assert_eq!(v[1], v.y);
        assert_eq!(v[2], v.z);
    }

    #[test]
    fn xy_projection_drops_z() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(v.xy(), Vec2::new(1.0, 2.0));
        assert_eq!(v.xy().with_z(3.0), v);
    }

    #[test]
    fn min_max_componentwise() {
        let a = Vec3::new(1.0, 5.0, -2.0);
        let b = Vec3::new(2.0, 3.0, -1.0);
        assert_eq!(a.min(b), Vec3::new(1.0, 3.0, -2.0));
        assert_eq!(a.max(b), Vec3::new(2.0, 5.0, -1.0));
    }
}
