//! Plücker-coordinate rays and the Platis–Theoharis ray–tetrahedron
//! intersection test (paper §III-C-2, Eq. 7–10).
//!
//! A 3D ray `r` through point `x` with direction `l` has Plücker coordinates
//! `π_r = {l : l × x}` (Eq. 7). The *permuted inner product* of two rays
//! (Eq. 8) decides their relative orientation:
//!
//! ```text
//! π_r ⊙ π_s = u_r · v_s + u_s · v_r
//! ```
//!
//! Testing a ray against the three (consistently oriented) edges of a
//! triangular face yields both the crossing decision and, for free, the
//! barycentric coordinates of the intersection point (Eq. 9–10). Shared-edge
//! products can be reused between the faces of a tetrahedron; the
//! [`ray_tetra`] routine below does exactly that, mirroring the paper's
//! `RayTetra` subroutine (Fig. 3, line 7) including its degeneracy status.

use crate::predicates::orient3d_det;
use crate::vec::Vec3;

/// A line in 3D given by a point and a direction (not necessarily unit).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Ray {
    pub origin: Vec3,
    pub dir: Vec3,
}

impl Ray {
    #[inline]
    pub fn new(origin: Vec3, dir: Vec3) -> Self {
        Ray { origin, dir }
    }

    /// The vertical line of sight through the 2D point `(x, y)`, integrating
    /// along `+z` — the paper's convention (§IV-A-2).
    #[inline]
    pub fn vertical(x: f64, y: f64) -> Self {
        Ray {
            origin: Vec3::new(x, y, 0.0),
            dir: Vec3::new(0.0, 0.0, 1.0),
        }
    }

    /// Point at parameter `t`.
    #[inline]
    pub fn at(&self, t: f64) -> Vec3 {
        self.origin + self.dir * t
    }

    /// Ray parameter of the (assumed on-ray) point `p`.
    #[inline]
    pub fn param_of(&self, p: Vec3) -> f64 {
        (p - self.origin).dot(self.dir) / self.dir.norm_sq()
    }
}

/// Plücker coordinates `{u : v} = {l : l × x}` of a line (Eq. 7).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Plucker {
    /// Direction part `u = l`.
    pub u: Vec3,
    /// Moment part `v = l × x`.
    pub v: Vec3,
}

impl Plucker {
    #[inline]
    pub fn from_ray(r: &Ray) -> Self {
        Plucker {
            u: r.dir,
            v: r.dir.cross(r.origin),
        }
    }

    /// Plücker coordinates of the directed edge `p0 → p1`.
    #[inline]
    pub fn from_edge(p0: Vec3, p1: Vec3) -> Self {
        let l = p1 - p0;
        Plucker {
            u: l,
            v: l.cross(p0),
        }
    }

    /// Permuted inner product `π_self ⊙ π_other` (Eq. 8). The sign gives the
    /// relative orientation of the two lines; zero means they meet (or are
    /// parallel/coplanar).
    #[inline]
    pub fn side(&self, other: &Plucker) -> f64 {
        self.u.dot(other.v) + other.u.dot(self.v)
    }
}

/// Result of testing a line against one oriented triangular face.
///
/// The face `(a, b, c)` is oriented so its normal `(b-a) × (c-a)` points to
/// the *outside*; crossings are classified relative to that normal.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaceCrossing {
    /// The line does not pass through the face interior.
    Miss,
    /// The line crosses against the normal (into the tetrahedron): all three
    /// permuted inner products are strictly positive. Carries the (normalized)
    /// barycentric weights of the intersection point w.r.t. `(a, b, c)`.
    Enter([f64; 3]),
    /// The line crosses along the normal (out of the tetrahedron): all three
    /// products strictly negative. Carries barycentric weights.
    Exit([f64; 3]),
    /// A degeneracy (Eq. 8 footnote): the line meets a vertex or an edge of
    /// the face, or is coplanar with it. The marching kernel responds by
    /// perturbing the line (paper Fig. 2).
    Degenerate,
}

/// Classify the crossing of line `r` (as Plücker coordinates) with the
/// oriented face `(a, b, c)` given the three precomputed edge products
/// `s_ab = π_r ⊙ π_{a→b}` etc.
///
/// Barycentric weights follow Eq. 9: the weight of a vertex is the product of
/// its *opposite* edge, so `w = [s_bc, s_ca, s_ab] / Σ`.
#[inline]
pub fn classify_face(s_ab: f64, s_bc: f64, s_ca: f64) -> FaceCrossing {
    let pos = (s_ab > 0.0) as u8 + (s_bc > 0.0) as u8 + (s_ca > 0.0) as u8;
    let neg = (s_ab < 0.0) as u8 + (s_bc < 0.0) as u8 + (s_ca < 0.0) as u8;
    if pos > 0 && neg > 0 {
        return FaceCrossing::Miss;
    }
    if pos == 3 || neg == 3 {
        let sum = s_ab + s_bc + s_ca;
        let w = [s_bc / sum, s_ca / sum, s_ab / sum];
        return if pos == 3 {
            FaceCrossing::Enter(w)
        } else {
            FaceCrossing::Exit(w)
        };
    }
    // At least one product is exactly zero and the rest do not disagree:
    // the line grazes a vertex/edge or lies in the face plane.
    FaceCrossing::Degenerate
}

/// Test the crossing of a line with a single oriented face.
pub fn ray_face(r: &Plucker, a: Vec3, b: Vec3, c: Vec3) -> FaceCrossing {
    let s_ab = r.side(&Plucker::from_edge(a, b));
    let s_bc = r.side(&Plucker::from_edge(b, c));
    let s_ca = r.side(&Plucker::from_edge(c, a));
    classify_face(s_ab, s_bc, s_ca)
}

/// Cartesian intersection point from barycentric weights (Eq. 10).
#[inline]
pub fn face_point(a: Vec3, b: Vec3, c: Vec3, w: [f64; 3]) -> Vec3 {
    Vec3::new(
        w[0] * a.x + w[1] * b.x + w[2] * c.x,
        w[0] * a.y + w[1] * b.y + w[2] * c.y,
        w[0] * a.z + w[1] * b.z + w[2] * c.z,
    )
}

/// Faces of a positively-oriented tetrahedron `(v0, v1, v2, v3)` such that
/// face `i` is opposite vertex `i` and its normal points outward.
pub const TET_FACES: [[usize; 3]; 4] = [[1, 3, 2], [0, 2, 3], [0, 3, 1], [0, 1, 2]];

/// Outcome of intersecting an (infinite) line with a tetrahedron.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RayTetraHit {
    /// Face index (opposite-vertex convention) the line enters through, with
    /// the intersection point; `None` if the line misses the tetrahedron.
    pub enter: Option<(usize, Vec3)>,
    /// Face index the line exits through, with the intersection point.
    pub exit: Option<(usize, Vec3)>,
    /// `true` when any face test hit a degeneracy; the caller should perturb
    /// the line and retry (paper Fig. 2–3).
    pub degenerate: bool,
}

impl RayTetraHit {
    pub const MISS: RayTetraHit = RayTetraHit {
        enter: None,
        exit: None,
        degenerate: false,
    };

    /// The line passes through the interior (both crossings found).
    #[inline]
    pub fn is_through(&self) -> bool {
        self.enter.is_some() && self.exit.is_some()
    }
}

/// Normalize a tetrahedron's vertex order to positive orientation, exactly
/// as [`ray_tetra`] does internally: swap vertices 2 and 3 when the
/// floating-point `orient3d_det` is negative. Returns `true` if a swap
/// happened. Callers that cache pre-normalized tetrahedra (the marching
/// kernel's per-slot cache) use this so the hot loop skips the determinant.
#[inline]
pub fn normalize_tet(v: &mut [Vec3; 4]) -> bool {
    if orient3d_det(v[0], v[1], v[2], v[3]) < 0.0 {
        v.swap(2, 3);
        true
    } else {
        false
    }
}

/// Intersect a line with the tetrahedron `verts`. The vertex order may be
/// either orientation; it is normalized internally.
///
/// Edge products shared between faces are computed once (six edges, not
/// twelve), as the paper notes ("shared edge calculations can be reused").
pub fn ray_tetra(r: &Plucker, verts: &[Vec3; 4]) -> RayTetraHit {
    let mut v = *verts;
    normalize_tet(&mut v);
    // The six directed edges i -> j for i < j.
    let edge = |i: usize, j: usize| Plucker::from_edge(v[i], v[j]);
    let s01 = r.side(&edge(0, 1));
    let s02 = r.side(&edge(0, 2));
    let s03 = r.side(&edge(0, 3));
    let s12 = r.side(&edge(1, 2));
    let s13 = r.side(&edge(1, 3));
    let s23 = r.side(&edge(2, 3));

    // Products for each outward face's directed edges, reusing edge products
    // with a sign flip when the face traverses the edge backwards.
    // Face 0 = (1,3,2): edges 1->3, 3->2, 2->1  => s13, -s23, -s12
    // Face 1 = (0,2,3): edges 0->2, 2->3, 3->0  => s02, s23, -s03
    // Face 2 = (0,3,1): edges 0->3, 3->1, 1->0  => s03, -s13, -s01
    // Face 3 = (0,1,2): edges 0->1, 1->2, 2->0  => s01, s12, -s02
    let face_products: [[f64; 3]; 4] = [
        [s13, -s23, -s12],
        [s02, s23, -s03],
        [s03, -s13, -s01],
        [s01, s12, -s02],
    ];

    let mut hit = RayTetraHit::MISS;
    for (fi, p) in face_products.iter().enumerate() {
        match classify_face(p[0], p[1], p[2]) {
            FaceCrossing::Miss => {}
            FaceCrossing::Degenerate => {
                hit.degenerate = true;
            }
            FaceCrossing::Enter(w) => {
                let [i, j, k] = TET_FACES[fi];
                hit.enter = Some((fi, face_point(v[i], v[j], v[k], w)));
            }
            FaceCrossing::Exit(w) => {
                let [i, j, k] = TET_FACES[fi];
                hit.exit = Some((fi, face_point(v[i], v[j], v[k], w)));
            }
        }
    }
    // A line through the interior must cross exactly two faces; anything else
    // with a zero product is already flagged degenerate above.
    hit
}

/// The six canonical directed edges `i → j` (`i < j`) of a tetrahedron, in
/// the order `[01, 02, 03, 12, 13, 23]` — the order [`ray_tetra`] computes
/// its `s01..s23` products in.
pub const TET_EDGES: [(usize, usize); 6] = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];

/// Each face of [`TET_FACES`] as three (index into [`TET_EDGES`], reversed?)
/// pairs; a reversed edge enters the face's directed-edge product negated.
/// This is the same sign table `ray_tetra` writes out literally. Public so
/// the packet marching kernel can classify several lanes' side products
/// against the same faces [`hit_from_sides`] inspects.
pub const FACE_EDGES: [[(usize, bool); 3]; 4] = [
    [(4, false), (5, true), (3, true)],  // (1,3,2): s13, -s23, -s12
    [(1, false), (5, false), (2, true)], // (0,2,3): s02, s23, -s03
    [(2, false), (4, true), (0, true)],  // (0,3,1): s03, -s13, -s01
    [(0, false), (3, false), (1, true)], // (0,1,2): s01, s12, -s02
];

/// The three canonical edge side-products of the face a marching ray just
/// exited through, keyed by the *directed* global-vertex-id pair each product
/// was computed for.
///
/// The next tetrahedron along the ray shares this face, so any of its
/// canonical edges matching one of these directed pairs reuses the value —
/// bitwise exactly, because [`Plucker::from_edge`] depends only on the two
/// endpoint positions and the ray is fixed. (A *reversed* edge cannot be
/// reused: `l × p0` and `-l × p1` round differently, so only
/// direction-matched pairs preserve bit-identity.)
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaceSeed {
    /// Directed global-vertex-id pairs, in the exit face's [`FACE_EDGES`]
    /// order.
    pub edges: [(u32, u32); 3],
    /// The canonical (unsigned, `i < j` direction) side-products.
    pub s: [f64; 3],
}

impl FaceSeed {
    /// A seed that matches no edge (the id pairs use the reserved
    /// `u32::MAX`, which never names a finite vertex).
    pub const EMPTY: FaceSeed = FaceSeed {
        edges: [(u32::MAX, u32::MAX); 3],
        s: [0.0; 3],
    };
}

/// The seed-reuse mapping of [`ray_tetra_seeded`] as pure topology: which
/// canonical edges of the *next* tetrahedron direction-match a canonical
/// edge of the face just exited, given only the two tetrahedra's global
/// vertex ids and the shared face's local indices on each side. Returns a
/// six-bit mask of the edges that still need evaluation (bit `e` set =
/// evaluate edge `e` of [`TET_EDGES`]) plus up to three
/// `(next_edge, prev_edge)` copy pairs for the matched ones.
///
/// The mapping depends only on vertex *ids*, not on any ray, so a packet
/// kernel marching several rays through the same pair of tetrahedra
/// computes it once and applies the copies to every lane; each copied value
/// is bitwise the one [`ray_tetra_seeded`] would reuse for that lane (see
/// [`FaceSeed`]).
pub fn seed_edge_map(
    prev_ids: &[u32; 4],
    exit_face: usize,
    next_ids: &[u32; 4],
    entry_face: usize,
) -> (u8, [(u8, u8); 3], usize) {
    let key = |i: u32, j: u32| ((i as u64) << 32) | j as u64;
    let fe_prev = FACE_EDGES[exit_face];
    let mut seed_keys = [0u64; 3];
    for (m, &(e, _)) in fe_prev.iter().enumerate() {
        let (i, j) = TET_EDGES[e];
        seed_keys[m] = key(prev_ids[i], prev_ids[j]);
    }
    let mut todo: u8 = 0b11_1111;
    let mut map = [(0u8, 0u8); 3];
    let mut n = 0usize;
    // Only the entry face's edges can name a shared geometric edge — the
    // same confinement `ray_tetra_seeded` applies.
    for &(e, _) in &FACE_EDGES[entry_face] {
        let (i, j) = TET_EDGES[e];
        let k = key(next_ids[i], next_ids[j]);
        for (m, &sk) in seed_keys.iter().enumerate() {
            if k == sk {
                todo &= !(1u8 << e);
                map[n] = (e as u8, fe_prev[m].0 as u8);
                n += 1;
                break;
            }
        }
    }
    (todo, map, n)
}

/// [`Plucker::side`] against the directed edge `p0 → p1`, specialized for a
/// ray whose direction part is exactly `(0, 0, 1)` — every marching line of
/// sight ([`Ray::vertical`]). The generic permuted product is
/// `u_r · v_e + u_e · v_r`; with `u_r = (0,0,1)` the first dot collapses to
/// the edge moment's z-component, which `Vec3::cross` forms as
/// `l.x*p0.y - l.y*p0.x` — the exact two products and subtraction evaluated
/// here. The second dot is evaluated literally. The only way this can differ
/// from the generic path is in the *sign* of an exactly-zero product (the
/// generic path folds statically-zero `0 * e` terms into the sum), and
/// [`classify_face`] cannot observe a zero's sign: a zero product routes to
/// `Miss` or `Degenerate`, never into barycentric weights, and exit-face
/// seeds only ever carry strictly-signed products.
#[inline]
fn side_vertical(rv: Vec3, p0: Vec3, p1: Vec3) -> f64 {
    let lx = p1.x - p0.x;
    let ly = p1.y - p0.y;
    let lz = p1.z - p0.z;
    (lx * p0.y - ly * p0.x) + (lx * rv.x + ly * rv.y + lz * rv.z)
}

/// Classify a line against a tetrahedron from its six canonical edge
/// side-products (in [`TET_EDGES`] order, vertex order already
/// normalized), returning the hit and the local exit face. This is the
/// classification half of [`ray_tetra_seeded`]; the packet kernel in
/// `dtfe-core` computes the products for several lanes at once
/// (`crate::simd::vertical_tet_sides`) and routes each lane through this
/// exact code path, which is what keeps packet results bit-identical to
/// the scalar march.
#[inline]
pub fn hit_from_sides(s: &[f64; 6], verts: &[Vec3; 4]) -> (RayTetraHit, Option<usize>) {
    let mut hit = RayTetraHit::MISS;
    let mut exit_face = None;
    for (fi, fe) in FACE_EDGES.iter().enumerate() {
        let p = |k: usize| {
            let (e, rev) = fe[k];
            if rev {
                -s[e]
            } else {
                s[e]
            }
        };
        match classify_face(p(0), p(1), p(2)) {
            FaceCrossing::Miss => {}
            FaceCrossing::Degenerate => {
                hit.degenerate = true;
            }
            FaceCrossing::Enter(w) => {
                let [i, j, k] = TET_FACES[fi];
                hit.enter = Some((fi, face_point(verts[i], verts[j], verts[k], w)));
            }
            FaceCrossing::Exit(w) => {
                let [i, j, k] = TET_FACES[fi];
                hit.exit = Some((fi, face_point(verts[i], verts[j], verts[k], w)));
                exit_face = Some(fi);
            }
        }
    }
    (hit, exit_face)
}

/// [`ray_tetra`] for the marching kernel's coherent traversal: takes a
/// tetrahedron whose vertex order is already normalized (see
/// [`normalize_tet`]) together with vertex labels in the same order, and
/// optionally the [`FaceSeed`] of the face the ray entered through.
///
/// Direction-matched edge products are copied from the seed instead of being
/// recomputed; `evals` counts the products actually evaluated (the
/// `core.plucker_edge_evals` telemetry counter). `entry_face` optionally
/// names the local face the line entered through (the slot whose neighbor is
/// the previous tetrahedron), confining the seed match to that face's three
/// edges — the only ones that can match. All four faces are still
/// classified — the plain kernel's degeneracy flag inspects every face, so
/// skipping the entry face would change perturbation decisions and break
/// bit-identity. The returned hit is bit-for-bit what [`ray_tetra`] returns
/// on the same tetrahedron; the returned seed carries the exit face's
/// products for the next step (it is [`FaceSeed::EMPTY`] when the line does
/// not exit).
pub fn ray_tetra_seeded(
    r: &Plucker,
    verts: &[Vec3; 4],
    ids: &[u32; 4],
    entry: Option<&FaceSeed>,
    entry_face: Option<usize>,
    evals: &mut u64,
) -> (RayTetraHit, FaceSeed) {
    // Pack each directed id pair into one u64 so a seed match is one
    // integer compare, no tuple/branch overhead.
    let key = |i: u32, j: u32| ((i as u64) << 32) | j as u64;
    let vertical = r.u.x == 0.0 && r.u.y == 0.0 && r.u.z == 1.0;
    let mut s = [0.0f64; 6];
    let mut todo = [true; 6];
    if let Some(seed) = entry {
        let seed_keys = [
            key(seed.edges[0].0, seed.edges[0].1),
            key(seed.edges[1].0, seed.edges[1].1),
            key(seed.edges[2].0, seed.edges[2].1),
        ];
        // Only the edges of the face the line entered through can name the
        // same geometric (hence directed-id) edge as the seed, so when the
        // caller knows that face, matching is confined to its three edges;
        // every other edge goes straight to evaluation. With no face hint
        // all six edges are tried — the outcome is identical either way,
        // since a non-shared edge's id pair can never equal a seed pair.
        let candidates = entry_face.map_or([0usize, 1, 2, 3, 4, 5], |f| {
            let fe = FACE_EDGES[f];
            [
                fe[0].0,
                fe[1].0,
                fe[2].0,
                usize::MAX,
                usize::MAX,
                usize::MAX,
            ]
        });
        for &e in candidates.iter().take_while(|&&e| e != usize::MAX) {
            let (i, j) = TET_EDGES[e];
            let k = key(ids[i], ids[j]);
            for (&sk, &sv) in seed_keys.iter().zip(seed.s.iter()) {
                if k == sk {
                    s[e] = sv;
                    todo[e] = false;
                    break;
                }
            }
        }
    }
    for (e, &(i, j)) in TET_EDGES.iter().enumerate() {
        if todo[e] {
            *evals += 1;
            s[e] = if vertical {
                side_vertical(r.v, verts[i], verts[j])
            } else {
                r.side(&Plucker::from_edge(verts[i], verts[j]))
            };
        }
    }

    let (hit, exit_face) = hit_from_sides(&s, verts);

    let mut seed_out = FaceSeed::EMPTY;
    if let Some(fi) = exit_face {
        for (k, &(e, _)) in FACE_EDGES[fi].iter().enumerate() {
            let (i, j) = TET_EDGES[e];
            seed_out.edges[k] = (ids[i], ids[j]);
            seed_out.s[k] = s[e];
        }
    }
    (hit, seed_out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    const B: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    const C: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };

    #[test]
    fn side_zero_for_meeting_lines() {
        let r1 = Plucker::from_ray(&Ray::new(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0)));
        let r2 = Plucker::from_ray(&Ray::new(Vec3::ZERO, Vec3::new(0.0, 1.0, 0.0)));
        assert_eq!(r1.side(&r2), 0.0);
    }

    #[test]
    fn face_crossing_classification() {
        // Upward ray through the interior of triangle ABC (normal +z):
        // crossing along the normal = Exit.
        let up = Plucker::from_ray(&Ray::vertical(0.2, 0.2));
        match ray_face(&up, A, B, C) {
            FaceCrossing::Exit(w) => {
                assert!((w[0] - 0.6).abs() < 1e-12);
                assert!((w[1] - 0.2).abs() < 1e-12);
                assert!((w[2] - 0.2).abs() < 1e-12);
            }
            other => panic!("expected Exit, got {other:?}"),
        }
        // Reversed face orientation flips Exit to Enter.
        match ray_face(&up, A, C, B) {
            FaceCrossing::Enter(_) => {}
            other => panic!("expected Enter, got {other:?}"),
        }
        // A ray outside the triangle footprint misses.
        let out = Plucker::from_ray(&Ray::vertical(2.0, 2.0));
        assert_eq!(ray_face(&out, A, B, C), FaceCrossing::Miss);
    }

    #[test]
    fn face_degenerate_through_vertex_and_edge() {
        let through_vertex = Plucker::from_ray(&Ray::vertical(0.0, 0.0));
        assert_eq!(ray_face(&through_vertex, A, B, C), FaceCrossing::Degenerate);
        let through_edge = Plucker::from_ray(&Ray::vertical(0.5, 0.0));
        assert_eq!(ray_face(&through_edge, A, B, C), FaceCrossing::Degenerate);
    }

    #[test]
    fn face_point_from_weights() {
        let p = face_point(A, B, C, [0.25, 0.5, 0.25]);
        assert_eq!(p, Vec3::new(0.5, 0.25, 0.0));
    }

    #[test]
    fn ray_tetra_through() {
        let verts = [A, B, C, Vec3::new(0.0, 0.0, 1.0)];
        let ray = Ray::new(Vec3::new(0.2, 0.2, -5.0), Vec3::new(0.0, 0.0, 1.0));
        let hit = ray_tetra(&Plucker::from_ray(&ray), &verts);
        assert!(hit.is_through(), "hit = {hit:?}");
        assert!(!hit.degenerate);
        let (enter_face, p_in) = hit.enter.unwrap();
        let (_, p_out) = hit.exit.unwrap();
        // Enters through the bottom z=0 face, leaves through the slanted one.
        assert!(p_in.z.abs() < 1e-12, "enter at {p_in:?}");
        assert!((p_out.z - 0.6).abs() < 1e-12, "exit at {p_out:?}"); // x+y+z=1 plane
        assert!(p_out.z > p_in.z);
        // Entry point keeps the ray's x, y.
        assert!((p_in.x - 0.2).abs() < 1e-12 && (p_in.y - 0.2).abs() < 1e-12);
        let _ = enter_face;
    }

    #[test]
    fn ray_tetra_vertex_order_invariant() {
        let verts_pos = [B, A, C, Vec3::new(0.0, 0.0, 1.0)];
        let verts_neg = [A, B, C, Vec3::new(0.0, 0.0, 1.0)];
        let ray = Plucker::from_ray(&Ray::vertical(0.1, 0.3));
        let h1 = ray_tetra(&ray, &verts_pos);
        let h2 = ray_tetra(&ray, &verts_neg);
        assert_eq!(h1.enter.unwrap().1, h2.enter.unwrap().1);
        assert_eq!(h1.exit.unwrap().1, h2.exit.unwrap().1);
    }

    #[test]
    fn ray_tetra_miss() {
        let verts = [A, B, C, Vec3::new(0.0, 0.0, 1.0)];
        let ray = Plucker::from_ray(&Ray::vertical(0.9, 0.9));
        let hit = ray_tetra(&ray, &verts);
        assert!(hit.enter.is_none() && hit.exit.is_none());
    }

    #[test]
    fn ray_tetra_degenerate_through_edge() {
        let verts = [A, B, C, Vec3::new(0.0, 0.0, 1.0)];
        // Vertical line through the edge from (0,0,0) to (0,0,1): x=y=0.
        let hit = ray_tetra(&Plucker::from_ray(&Ray::vertical(0.0, 0.0)), &verts);
        assert!(hit.degenerate);
    }

    #[test]
    fn ray_tetra_degenerate_edge_intersection() {
        // The vertical line x = y = 0.25 meets the edge from the origin to the
        // apex (0.3, 0.3, 1.0) — both lie in the plane x = y.
        let verts = [A, B, C, Vec3::new(0.3, 0.3, 1.0)];
        let ray = Ray::new(Vec3::new(0.25, 0.25, -1.0), Vec3::new(0.0, 0.0, 2.0));
        let hit = ray_tetra(&Plucker::from_ray(&ray), &verts);
        assert!(hit.degenerate);
    }

    #[test]
    fn ray_param_orders_crossings() {
        let verts = [A, B, C, Vec3::new(0.3, 0.3, 1.0)];
        let ray = Ray::new(Vec3::new(0.25, 0.2, -1.0), Vec3::new(0.0, 0.0, 2.0));
        let hit = ray_tetra(&Plucker::from_ray(&ray), &verts);
        let (_, p_in) = hit.enter.unwrap();
        let (_, p_out) = hit.exit.unwrap();
        assert!(ray.param_of(p_in) < ray.param_of(p_out));
    }

    fn rand_unit(s: &mut u64) -> f64 {
        *s ^= *s >> 12;
        *s ^= *s << 25;
        *s ^= *s >> 27;
        (s.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
    }

    #[test]
    fn seeded_matches_plain_on_random_tetra() {
        // Unseeded: bit-identical to ray_tetra on normalized vertices, six
        // evaluations. Seeded with the previous tetrahedron's exit face:
        // still bit-identical, strictly fewer evaluations when a direction
        // matches.
        let mut st = 0xC0FFEEu64;
        for _ in 0..500 {
            let mut v = [Vec3::ZERO; 4];
            for p in &mut v {
                *p = Vec3::new(rand_unit(&mut st), rand_unit(&mut st), rand_unit(&mut st));
            }
            let r = Plucker::from_ray(&Ray::vertical(rand_unit(&mut st), rand_unit(&mut st)));
            let plain = ray_tetra(&r, &v);
            let mut vn = v;
            let mut ids = [7u32, 11, 13, 17];
            if normalize_tet(&mut vn) {
                ids.swap(2, 3);
            }
            let mut evals = 0u64;
            let (seeded, seed_out) = ray_tetra_seeded(&r, &vn, &ids, None, None, &mut evals);
            assert_eq!(plain, seeded);
            assert_eq!(evals, 6);
            if let Some((fi, _)) = seeded.exit {
                // Feed the exit seed back into the *same* tetrahedron: the
                // three exit-face edges must be reused (all directions
                // match), leaving exactly 3 fresh evaluations.
                let mut evals2 = 0u64;
                let (again, _) =
                    ray_tetra_seeded(&r, &vn, &ids, Some(&seed_out), None, &mut evals2);
                assert_eq!(again, seeded);
                assert_eq!(evals2, 3, "exit face {fi} edges not reused");
            } else {
                assert_eq!(seed_out, FaceSeed::EMPTY);
            }
        }
    }

    #[test]
    fn seeded_reuse_across_shared_face() {
        // Two tetrahedra sharing face (A, B, C): marching from the lower one
        // into the upper one through the shared face must give the upper
        // tetrahedron's plain ray_tetra hit bitwise, with fewer evaluations
        // whenever a canonical direction matches.
        let apex_lo = Vec3::new(0.3, 0.2, -1.0);
        let apex_hi = Vec3::new(0.25, 0.3, 1.0);
        let lower = [A, B, C, apex_lo];
        let upper = [B, A, C, apex_hi]; // different local order on purpose
        let r = Plucker::from_ray(&Ray::vertical(0.2, 0.25));

        let mut lo = lower;
        let mut lo_ids = [0u32, 1, 2, 3];
        if normalize_tet(&mut lo) {
            lo_ids.swap(2, 3);
        }
        let mut evals = 0u64;
        let (lo_hit, seed) = ray_tetra_seeded(&r, &lo, &lo_ids, None, None, &mut evals);
        assert!(lo_hit.is_through());

        let mut up = upper;
        let mut up_ids = [1u32, 0, 2, 4];
        if normalize_tet(&mut up) {
            up_ids.swap(2, 3);
        }
        let mut seeded_evals = 0u64;
        let (up_hit, _) = ray_tetra_seeded(&r, &up, &up_ids, Some(&seed), None, &mut seeded_evals);
        assert_eq!(up_hit, ray_tetra(&r, &upper));
        assert!(up_hit.is_through());
        assert!(seeded_evals < 6, "no shared-face reuse happened");
    }

    #[test]
    fn seed_edge_map_mirrors_seeded_reuse() {
        // The topology-only mapping must clear exactly the edges
        // ray_tetra_seeded skips when given the same seed and entry face,
        // and each copy pair must name the identical directed id pair on
        // both sides of the shared face.
        let apex_lo = Vec3::new(0.3, 0.2, -1.0);
        let apex_hi = Vec3::new(0.25, 0.3, 1.0);
        let mut lo = [A, B, C, apex_lo];
        let mut lo_ids = [0u32, 1, 2, 3];
        if normalize_tet(&mut lo) {
            lo_ids.swap(2, 3);
        }
        let r = Plucker::from_ray(&Ray::vertical(0.2, 0.25));
        let mut evals = 0u64;
        let (lo_hit, seed) = ray_tetra_seeded(&r, &lo, &lo_ids, None, None, &mut evals);
        let (exit_face, _) = lo_hit.exit.unwrap();

        let mut up = [B, A, C, apex_hi];
        let mut up_ids = [1u32, 0, 2, 4];
        if normalize_tet(&mut up) {
            up_ids.swap(2, 3);
        }
        // The entry face is opposite the one vertex not on the shared face.
        let entry_face = up_ids.iter().position(|&id| id == 4).unwrap();

        let mut seeded_evals = 0u64;
        let (up_hit, _) = ray_tetra_seeded(
            &r,
            &up,
            &up_ids,
            Some(&seed),
            Some(entry_face),
            &mut seeded_evals,
        );
        assert!(up_hit.is_through());

        let (todo, map, n) = seed_edge_map(&lo_ids, exit_face, &up_ids, entry_face);
        assert_eq!(seeded_evals, u64::from(todo.count_ones()));
        assert_eq!(n, 6 - todo.count_ones() as usize);
        assert!(n >= 1, "no direction-matched edge across the shared face");
        for &(dst, src) in &map[..n] {
            let (di, dj) = TET_EDGES[dst as usize];
            let (si, sj) = TET_EDGES[src as usize];
            assert_eq!((up_ids[di], up_ids[dj]), (lo_ids[si], lo_ids[sj]));
            assert_eq!(todo & (1 << dst), 0, "mapped edge {dst} still marked todo");
        }
    }

    #[test]
    fn face_edges_table_matches_ray_tetra_products() {
        // The FACE_EDGES sign table must reproduce ray_tetra's literal
        // per-face products for every face.
        let v = [A, B, C, Vec3::new(0.1, 0.2, 1.0)];
        let r = Plucker::from_ray(&Ray::vertical(0.21, 0.17));
        let s: Vec<f64> = TET_EDGES
            .iter()
            .map(|&(i, j)| r.side(&Plucker::from_edge(v[i], v[j])))
            .collect();
        let (s01, s02, s03, s12, s13, s23) = (s[0], s[1], s[2], s[3], s[4], s[5]);
        let expect: [[f64; 3]; 4] = [
            [s13, -s23, -s12],
            [s02, s23, -s03],
            [s03, -s13, -s01],
            [s01, s12, -s02],
        ];
        for (fi, fe) in FACE_EDGES.iter().enumerate() {
            for k in 0..3 {
                let (e, rev) = fe[k];
                let got = if rev { -s[e] } else { s[e] };
                assert_eq!(got.to_bits(), expect[fi][k].to_bits(), "face {fi} slot {k}");
            }
        }
    }

    #[test]
    fn oblique_ray_tetra() {
        let verts = [A, B, C, Vec3::new(0.2, 0.2, 1.0)];
        let ray = Ray::new(Vec3::new(-1.0, 0.15, 0.1), Vec3::new(1.0, 0.05, 0.05));
        let hit = ray_tetra(&Plucker::from_ray(&ray), &verts);
        if hit.is_through() {
            let (_, p_in) = hit.enter.unwrap();
            let (_, p_out) = hit.exit.unwrap();
            // Both points must lie (approximately) on the ray.
            for p in [p_in, p_out] {
                let t = ray.param_of(p);
                assert!(ray.at(t).distance(p) < 1e-9, "point {p:?} not on ray");
            }
        }
    }
}
