//! Plücker-coordinate rays and the Platis–Theoharis ray–tetrahedron
//! intersection test (paper §III-C-2, Eq. 7–10).
//!
//! A 3D ray `r` through point `x` with direction `l` has Plücker coordinates
//! `π_r = {l : l × x}` (Eq. 7). The *permuted inner product* of two rays
//! (Eq. 8) decides their relative orientation:
//!
//! ```text
//! π_r ⊙ π_s = u_r · v_s + u_s · v_r
//! ```
//!
//! Testing a ray against the three (consistently oriented) edges of a
//! triangular face yields both the crossing decision and, for free, the
//! barycentric coordinates of the intersection point (Eq. 9–10). Shared-edge
//! products can be reused between the faces of a tetrahedron; the
//! [`ray_tetra`] routine below does exactly that, mirroring the paper's
//! `RayTetra` subroutine (Fig. 3, line 7) including its degeneracy status.

use crate::predicates::orient3d_det;
use crate::vec::Vec3;

/// A line in 3D given by a point and a direction (not necessarily unit).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Ray {
    pub origin: Vec3,
    pub dir: Vec3,
}

impl Ray {
    #[inline]
    pub fn new(origin: Vec3, dir: Vec3) -> Self {
        Ray { origin, dir }
    }

    /// The vertical line of sight through the 2D point `(x, y)`, integrating
    /// along `+z` — the paper's convention (§IV-A-2).
    #[inline]
    pub fn vertical(x: f64, y: f64) -> Self {
        Ray {
            origin: Vec3::new(x, y, 0.0),
            dir: Vec3::new(0.0, 0.0, 1.0),
        }
    }

    /// Point at parameter `t`.
    #[inline]
    pub fn at(&self, t: f64) -> Vec3 {
        self.origin + self.dir * t
    }

    /// Ray parameter of the (assumed on-ray) point `p`.
    #[inline]
    pub fn param_of(&self, p: Vec3) -> f64 {
        (p - self.origin).dot(self.dir) / self.dir.norm_sq()
    }
}

/// Plücker coordinates `{u : v} = {l : l × x}` of a line (Eq. 7).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Plucker {
    /// Direction part `u = l`.
    pub u: Vec3,
    /// Moment part `v = l × x`.
    pub v: Vec3,
}

impl Plucker {
    #[inline]
    pub fn from_ray(r: &Ray) -> Self {
        Plucker {
            u: r.dir,
            v: r.dir.cross(r.origin),
        }
    }

    /// Plücker coordinates of the directed edge `p0 → p1`.
    #[inline]
    pub fn from_edge(p0: Vec3, p1: Vec3) -> Self {
        let l = p1 - p0;
        Plucker {
            u: l,
            v: l.cross(p0),
        }
    }

    /// Permuted inner product `π_self ⊙ π_other` (Eq. 8). The sign gives the
    /// relative orientation of the two lines; zero means they meet (or are
    /// parallel/coplanar).
    #[inline]
    pub fn side(&self, other: &Plucker) -> f64 {
        self.u.dot(other.v) + other.u.dot(self.v)
    }
}

/// Result of testing a line against one oriented triangular face.
///
/// The face `(a, b, c)` is oriented so its normal `(b-a) × (c-a)` points to
/// the *outside*; crossings are classified relative to that normal.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaceCrossing {
    /// The line does not pass through the face interior.
    Miss,
    /// The line crosses against the normal (into the tetrahedron): all three
    /// permuted inner products are strictly positive. Carries the (normalized)
    /// barycentric weights of the intersection point w.r.t. `(a, b, c)`.
    Enter([f64; 3]),
    /// The line crosses along the normal (out of the tetrahedron): all three
    /// products strictly negative. Carries barycentric weights.
    Exit([f64; 3]),
    /// A degeneracy (Eq. 8 footnote): the line meets a vertex or an edge of
    /// the face, or is coplanar with it. The marching kernel responds by
    /// perturbing the line (paper Fig. 2).
    Degenerate,
}

/// Classify the crossing of line `r` (as Plücker coordinates) with the
/// oriented face `(a, b, c)` given the three precomputed edge products
/// `s_ab = π_r ⊙ π_{a→b}` etc.
///
/// Barycentric weights follow Eq. 9: the weight of a vertex is the product of
/// its *opposite* edge, so `w = [s_bc, s_ca, s_ab] / Σ`.
#[inline]
pub fn classify_face(s_ab: f64, s_bc: f64, s_ca: f64) -> FaceCrossing {
    let pos = (s_ab > 0.0) as u8 + (s_bc > 0.0) as u8 + (s_ca > 0.0) as u8;
    let neg = (s_ab < 0.0) as u8 + (s_bc < 0.0) as u8 + (s_ca < 0.0) as u8;
    if pos > 0 && neg > 0 {
        return FaceCrossing::Miss;
    }
    if pos == 3 || neg == 3 {
        let sum = s_ab + s_bc + s_ca;
        let w = [s_bc / sum, s_ca / sum, s_ab / sum];
        return if pos == 3 {
            FaceCrossing::Enter(w)
        } else {
            FaceCrossing::Exit(w)
        };
    }
    // At least one product is exactly zero and the rest do not disagree:
    // the line grazes a vertex/edge or lies in the face plane.
    FaceCrossing::Degenerate
}

/// Test the crossing of a line with a single oriented face.
pub fn ray_face(r: &Plucker, a: Vec3, b: Vec3, c: Vec3) -> FaceCrossing {
    let s_ab = r.side(&Plucker::from_edge(a, b));
    let s_bc = r.side(&Plucker::from_edge(b, c));
    let s_ca = r.side(&Plucker::from_edge(c, a));
    classify_face(s_ab, s_bc, s_ca)
}

/// Cartesian intersection point from barycentric weights (Eq. 10).
#[inline]
pub fn face_point(a: Vec3, b: Vec3, c: Vec3, w: [f64; 3]) -> Vec3 {
    Vec3::new(
        w[0] * a.x + w[1] * b.x + w[2] * c.x,
        w[0] * a.y + w[1] * b.y + w[2] * c.y,
        w[0] * a.z + w[1] * b.z + w[2] * c.z,
    )
}

/// Faces of a positively-oriented tetrahedron `(v0, v1, v2, v3)` such that
/// face `i` is opposite vertex `i` and its normal points outward.
pub const TET_FACES: [[usize; 3]; 4] = [[1, 3, 2], [0, 2, 3], [0, 3, 1], [0, 1, 2]];

/// Outcome of intersecting an (infinite) line with a tetrahedron.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RayTetraHit {
    /// Face index (opposite-vertex convention) the line enters through, with
    /// the intersection point; `None` if the line misses the tetrahedron.
    pub enter: Option<(usize, Vec3)>,
    /// Face index the line exits through, with the intersection point.
    pub exit: Option<(usize, Vec3)>,
    /// `true` when any face test hit a degeneracy; the caller should perturb
    /// the line and retry (paper Fig. 2–3).
    pub degenerate: bool,
}

impl RayTetraHit {
    pub const MISS: RayTetraHit = RayTetraHit {
        enter: None,
        exit: None,
        degenerate: false,
    };

    /// The line passes through the interior (both crossings found).
    #[inline]
    pub fn is_through(&self) -> bool {
        self.enter.is_some() && self.exit.is_some()
    }
}

/// Intersect a line with the tetrahedron `verts`. The vertex order may be
/// either orientation; it is normalized internally.
///
/// Edge products shared between faces are computed once (six edges, not
/// twelve), as the paper notes ("shared edge calculations can be reused").
pub fn ray_tetra(r: &Plucker, verts: &[Vec3; 4]) -> RayTetraHit {
    let mut v = *verts;
    if orient3d_det(v[0], v[1], v[2], v[3]) < 0.0 {
        v.swap(2, 3);
    }
    // The six directed edges i -> j for i < j.
    let edge = |i: usize, j: usize| Plucker::from_edge(v[i], v[j]);
    let s01 = r.side(&edge(0, 1));
    let s02 = r.side(&edge(0, 2));
    let s03 = r.side(&edge(0, 3));
    let s12 = r.side(&edge(1, 2));
    let s13 = r.side(&edge(1, 3));
    let s23 = r.side(&edge(2, 3));

    // Products for each outward face's directed edges, reusing edge products
    // with a sign flip when the face traverses the edge backwards.
    // Face 0 = (1,3,2): edges 1->3, 3->2, 2->1  => s13, -s23, -s12
    // Face 1 = (0,2,3): edges 0->2, 2->3, 3->0  => s02, s23, -s03
    // Face 2 = (0,3,1): edges 0->3, 3->1, 1->0  => s03, -s13, -s01
    // Face 3 = (0,1,2): edges 0->1, 1->2, 2->0  => s01, s12, -s02
    let face_products: [[f64; 3]; 4] = [
        [s13, -s23, -s12],
        [s02, s23, -s03],
        [s03, -s13, -s01],
        [s01, s12, -s02],
    ];

    let mut hit = RayTetraHit::MISS;
    for (fi, p) in face_products.iter().enumerate() {
        match classify_face(p[0], p[1], p[2]) {
            FaceCrossing::Miss => {}
            FaceCrossing::Degenerate => {
                hit.degenerate = true;
            }
            FaceCrossing::Enter(w) => {
                let [i, j, k] = TET_FACES[fi];
                hit.enter = Some((fi, face_point(v[i], v[j], v[k], w)));
            }
            FaceCrossing::Exit(w) => {
                let [i, j, k] = TET_FACES[fi];
                hit.exit = Some((fi, face_point(v[i], v[j], v[k], w)));
            }
        }
    }
    // A line through the interior must cross exactly two faces; anything else
    // with a zero product is already flagged degenerate above.
    hit
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    const B: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    const C: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };

    #[test]
    fn side_zero_for_meeting_lines() {
        let r1 = Plucker::from_ray(&Ray::new(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0)));
        let r2 = Plucker::from_ray(&Ray::new(Vec3::ZERO, Vec3::new(0.0, 1.0, 0.0)));
        assert_eq!(r1.side(&r2), 0.0);
    }

    #[test]
    fn face_crossing_classification() {
        // Upward ray through the interior of triangle ABC (normal +z):
        // crossing along the normal = Exit.
        let up = Plucker::from_ray(&Ray::vertical(0.2, 0.2));
        match ray_face(&up, A, B, C) {
            FaceCrossing::Exit(w) => {
                assert!((w[0] - 0.6).abs() < 1e-12);
                assert!((w[1] - 0.2).abs() < 1e-12);
                assert!((w[2] - 0.2).abs() < 1e-12);
            }
            other => panic!("expected Exit, got {other:?}"),
        }
        // Reversed face orientation flips Exit to Enter.
        match ray_face(&up, A, C, B) {
            FaceCrossing::Enter(_) => {}
            other => panic!("expected Enter, got {other:?}"),
        }
        // A ray outside the triangle footprint misses.
        let out = Plucker::from_ray(&Ray::vertical(2.0, 2.0));
        assert_eq!(ray_face(&out, A, B, C), FaceCrossing::Miss);
    }

    #[test]
    fn face_degenerate_through_vertex_and_edge() {
        let through_vertex = Plucker::from_ray(&Ray::vertical(0.0, 0.0));
        assert_eq!(ray_face(&through_vertex, A, B, C), FaceCrossing::Degenerate);
        let through_edge = Plucker::from_ray(&Ray::vertical(0.5, 0.0));
        assert_eq!(ray_face(&through_edge, A, B, C), FaceCrossing::Degenerate);
    }

    #[test]
    fn face_point_from_weights() {
        let p = face_point(A, B, C, [0.25, 0.5, 0.25]);
        assert_eq!(p, Vec3::new(0.5, 0.25, 0.0));
    }

    #[test]
    fn ray_tetra_through() {
        let verts = [A, B, C, Vec3::new(0.0, 0.0, 1.0)];
        let ray = Ray::new(Vec3::new(0.2, 0.2, -5.0), Vec3::new(0.0, 0.0, 1.0));
        let hit = ray_tetra(&Plucker::from_ray(&ray), &verts);
        assert!(hit.is_through(), "hit = {hit:?}");
        assert!(!hit.degenerate);
        let (enter_face, p_in) = hit.enter.unwrap();
        let (_, p_out) = hit.exit.unwrap();
        // Enters through the bottom z=0 face, leaves through the slanted one.
        assert!(p_in.z.abs() < 1e-12, "enter at {p_in:?}");
        assert!((p_out.z - 0.6).abs() < 1e-12, "exit at {p_out:?}"); // x+y+z=1 plane
        assert!(p_out.z > p_in.z);
        // Entry point keeps the ray's x, y.
        assert!((p_in.x - 0.2).abs() < 1e-12 && (p_in.y - 0.2).abs() < 1e-12);
        let _ = enter_face;
    }

    #[test]
    fn ray_tetra_vertex_order_invariant() {
        let verts_pos = [B, A, C, Vec3::new(0.0, 0.0, 1.0)];
        let verts_neg = [A, B, C, Vec3::new(0.0, 0.0, 1.0)];
        let ray = Plucker::from_ray(&Ray::vertical(0.1, 0.3));
        let h1 = ray_tetra(&ray, &verts_pos);
        let h2 = ray_tetra(&ray, &verts_neg);
        assert_eq!(h1.enter.unwrap().1, h2.enter.unwrap().1);
        assert_eq!(h1.exit.unwrap().1, h2.exit.unwrap().1);
    }

    #[test]
    fn ray_tetra_miss() {
        let verts = [A, B, C, Vec3::new(0.0, 0.0, 1.0)];
        let ray = Plucker::from_ray(&Ray::vertical(0.9, 0.9));
        let hit = ray_tetra(&ray, &verts);
        assert!(hit.enter.is_none() && hit.exit.is_none());
    }

    #[test]
    fn ray_tetra_degenerate_through_edge() {
        let verts = [A, B, C, Vec3::new(0.0, 0.0, 1.0)];
        // Vertical line through the edge from (0,0,0) to (0,0,1): x=y=0.
        let hit = ray_tetra(&Plucker::from_ray(&Ray::vertical(0.0, 0.0)), &verts);
        assert!(hit.degenerate);
    }

    #[test]
    fn ray_tetra_degenerate_edge_intersection() {
        // The vertical line x = y = 0.25 meets the edge from the origin to the
        // apex (0.3, 0.3, 1.0) — both lie in the plane x = y.
        let verts = [A, B, C, Vec3::new(0.3, 0.3, 1.0)];
        let ray = Ray::new(Vec3::new(0.25, 0.25, -1.0), Vec3::new(0.0, 0.0, 2.0));
        let hit = ray_tetra(&Plucker::from_ray(&ray), &verts);
        assert!(hit.degenerate);
    }

    #[test]
    fn ray_param_orders_crossings() {
        let verts = [A, B, C, Vec3::new(0.3, 0.3, 1.0)];
        let ray = Ray::new(Vec3::new(0.25, 0.2, -1.0), Vec3::new(0.0, 0.0, 2.0));
        let hit = ray_tetra(&Plucker::from_ray(&ray), &verts);
        let (_, p_in) = hit.enter.unwrap();
        let (_, p_out) = hit.exit.unwrap();
        assert!(ray.param_of(p_in) < ray.param_of(p_out));
    }

    #[test]
    fn oblique_ray_tetra() {
        let verts = [A, B, C, Vec3::new(0.2, 0.2, 1.0)];
        let ray = Ray::new(Vec3::new(-1.0, 0.15, 0.1), Vec3::new(1.0, 0.05, 0.05));
        let hit = ray_tetra(&Plucker::from_ray(&ray), &verts);
        if hit.is_through() {
            let (_, p_in) = hit.enter.unwrap();
            let (_, p_out) = hit.exit.unwrap();
            // Both points must lie (approximately) on the ray.
            for p in [p_in, p_out] {
                let t = ray.param_of(p);
                assert!(ray.at(t).distance(p) < 1e-9, "point {p:?} not on ray");
            }
        }
    }
}
