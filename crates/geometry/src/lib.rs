//! Geometric foundations for the DTFE surface density reconstruction.
//!
//! This crate provides the numerical substrate the paper takes from CGAL and
//! Qhull:
//!
//! * [`Vec3`] / [`Vec2`] — small fixed-size vector types used throughout the
//!   workspace.
//! * [`expansion`] — Shewchuk-style floating-point expansion arithmetic, the
//!   machinery behind the exact fallback paths of the predicates.
//! * [`predicates`] — robust [`predicates::orient3d`] and
//!   [`predicates::insphere`] (plus their 2D analogues) with static
//!   error filters and an exact expansion-arithmetic fallback. These are what
//!   make the Delaunay construction in `dtfe-delaunay` sound.
//! * [`plucker`] — Plücker-coordinate ray representation and the
//!   Platis–Theoharis ray–tetrahedron intersection test (paper §III-C-2,
//!   Eq. 7–10), including the degeneracy reporting the marching kernel's
//!   `Perturb` routine relies on (paper Fig. 2–3).
//! * [`tetra`] — tetrahedron volume, barycentric coordinates and related
//!   helpers used by the DTFE interpolation itself.
//! * [`aabb`] — axis-aligned boxes used for domain decomposition and ghost
//!   zones.
//! * [`simd`] — structure-of-arrays `f64` lane types and the packet
//!   vertical-side kernel behind the ray-packet marching path (DESIGN.md
//!   §4k). Bit-identical per lane to the scalar Plücker products; the
//!   `simd-intrinsics` cargo feature adds an AVX2 specialization.

pub mod aabb;
pub mod expansion;
pub mod mat;
pub mod plucker;
pub mod predicates;
pub mod simd;
pub mod tetra;
pub mod vec;

pub use aabb::{Aabb2, Aabb3};
pub use mat::Mat3;
pub use plucker::{FaceCrossing, Plucker, Ray};
pub use predicates::{incircle, insphere, orient2d, orient3d, Orientation};
pub use vec::{Vec2, Vec3};
