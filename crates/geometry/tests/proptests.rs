//! Property-based tests for the geometric substrate.

use dtfe_geometry::expansion::{
    estimate, expansion_diff, expansion_mul, expansion_sum, grow_expansion, sign, two_product,
    two_sum,
};
use dtfe_geometry::plucker::{ray_tetra, Plucker, Ray};
use dtfe_geometry::predicates::{insphere, orient2d, orient3d, Orientation};
use dtfe_geometry::tetra::{barycentric, volume};
use dtfe_geometry::{Vec2, Vec3};
use proptest::prelude::*;

/// Doubles whose products/sums stay comfortably inside the exponent range.
fn small_f64() -> impl Strategy<Value = f64> {
    (-1.0e6..1.0e6f64).prop_filter("finite", |v| v.is_finite())
}

/// Integer-valued doubles so exact values can be cross-checked with i128.
fn int_f64() -> impl Strategy<Value = f64> {
    (-1_000_000i64..1_000_000i64).prop_map(|v| v as f64)
}

fn vec3(range: std::ops::Range<f64>) -> impl Strategy<Value = Vec3> {
    (range.clone(), range.clone(), range).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

proptest! {
    #[test]
    fn two_sum_is_exact_for_integers(a in int_f64(), b in int_f64()) {
        let (hi, lo) = two_sum(a, b);
        prop_assert_eq!(hi as i128 + lo as i128, a as i128 + b as i128);
    }

    #[test]
    fn two_product_is_exact_for_integers(a in int_f64(), b in int_f64()) {
        let (hi, lo) = two_product(a, b);
        prop_assert_eq!(hi as i128 + lo as i128, a as i128 * b as i128);
    }

    #[test]
    fn expansion_sum_exact_over_integers(parts in prop::collection::vec(int_f64(), 1..12)) {
        let mut e = vec![0.0];
        let mut exact: i128 = 0;
        for &p in &parts {
            e = grow_expansion(&e, p);
            exact += p as i128;
        }
        let total: i128 = e.iter().map(|&c| c as i128).sum();
        prop_assert_eq!(total, exact);
        prop_assert_eq!(sign(&e), exact.signum() as i32);
    }

    #[test]
    fn expansion_mul_exact_over_integers(a in int_f64(), b in int_f64(), c in int_f64(), d in int_f64()) {
        // (a + b) * (c + d) with values chosen so each side is an expansion.
        let lhs = grow_expansion(&[a], b);
        let rhs = grow_expansion(&[c], d);
        let p = expansion_mul(&lhs, &rhs);
        let exact = (a as i128 + b as i128) * (c as i128 + d as i128);
        let total: i128 = p.iter().map(|&c| c as i128).sum();
        prop_assert_eq!(total, exact);
    }

    #[test]
    fn expansion_estimate_close(a in small_f64(), b in small_f64(), c in small_f64()) {
        let e = expansion_sum(&grow_expansion(&[a], b), &[c]);
        let naive = a + b + c;
        prop_assert!((estimate(&e) - naive).abs() <= 1e-9 * (1.0 + naive.abs()));
    }

    #[test]
    fn diff_of_equal_is_zero(parts in prop::collection::vec(small_f64(), 1..6)) {
        let mut e = vec![0.0];
        for &p in &parts {
            e = grow_expansion(&e, p);
        }
        let d = expansion_diff(&e, &e);
        prop_assert_eq!(sign(&d), 0);
    }

    #[test]
    fn orient2d_antisymmetry(
        a in (small_f64(), small_f64()),
        b in (small_f64(), small_f64()),
        c in (small_f64(), small_f64()),
    ) {
        let (a, b, c) = (Vec2::new(a.0, a.1), Vec2::new(b.0, b.1), Vec2::new(c.0, c.1));
        prop_assert_eq!(orient2d(a, b, c), orient2d(b, a, c).flipped());
        prop_assert_eq!(orient2d(a, b, c), orient2d(b, c, a)); // cyclic
    }

    #[test]
    fn orient3d_permutation_rules(
        a in vec3(-100.0..100.0),
        b in vec3(-100.0..100.0),
        c in vec3(-100.0..100.0),
        d in vec3(-100.0..100.0),
    ) {
        let o = orient3d(a, b, c, d);
        prop_assert_eq!(o, orient3d(b, a, c, d).flipped());
        prop_assert_eq!(o, orient3d(a, c, b, d).flipped());
        // Even permutation (3-cycle) preserves orientation.
        prop_assert_eq!(o, orient3d(b, c, a, d));
    }

    #[test]
    fn orient3d_detects_exact_coplanarity(
        a in vec3(-1000.0..1000.0),
        b in vec3(-1000.0..1000.0),
        c in vec3(-1000.0..1000.0),
        s in 0.0f64..1.0,
        t in 0.0f64..1.0,
    ) {
        // d on the plane spanned by (a, b, c) *exactly* is hard to construct in
        // floating point, so instead test that collinear degeneracy (d = b) is
        // exact and that tiny perturbations give consistent opposite answers.
        prop_assert_eq!(orient3d(a, b, c, b), Orientation::Zero);
        let _ = (s, t);
    }

    #[test]
    fn insphere_swap_antisymmetry(
        a in vec3(-10.0..10.0),
        b in vec3(-10.0..10.0),
        c in vec3(-10.0..10.0),
        d in vec3(-10.0..10.0),
        e in vec3(-10.0..10.0),
    ) {
        prop_assert_eq!(insphere(a, b, c, d, e), insphere(b, a, c, d, e).flipped());
    }

    #[test]
    fn insphere_vertex_on_sphere_is_zero(
        a in vec3(-10.0..10.0),
        b in vec3(-10.0..10.0),
        c in vec3(-10.0..10.0),
        d in vec3(-10.0..10.0),
    ) {
        // Each defining vertex is exactly on the circumsphere.
        prop_assert_eq!(insphere(a, b, c, d, a), Orientation::Zero);
        prop_assert_eq!(insphere(a, b, c, d, d), Orientation::Zero);
    }

    #[test]
    fn barycentric_reconstructs_point(
        verts in prop::collection::vec(vec3(-5.0..5.0), 4),
        w in (0.01f64..1.0, 0.01f64..1.0, 0.01f64..1.0, 0.01f64..1.0),
    ) {
        let v = [verts[0], verts[1], verts[2], verts[3]];
        prop_assume!(volume(v[0], v[1], v[2], v[3]) > 1e-3);
        let sum = w.0 + w.1 + w.2 + w.3;
        let w = [w.0 / sum, w.1 / sum, w.2 / sum, w.3 / sum];
        let p = v[0] * w[0] + v[1] * w[1] + v[2] * w[2] + v[3] * w[3];
        let wb = barycentric(p, &v).unwrap();
        for i in 0..4 {
            prop_assert!((wb[i] - w[i]).abs() < 1e-6, "w = {:?} vs {:?}", wb, w);
        }
    }

    #[test]
    fn ray_tetra_crossings_lie_on_ray(
        verts in prop::collection::vec(vec3(-5.0..5.0), 4),
        ox in -5.0f64..5.0,
        oy in -5.0f64..5.0,
    ) {
        let v = [verts[0], verts[1], verts[2], verts[3]];
        prop_assume!(volume(v[0], v[1], v[2], v[3]) > 1e-3);
        let ray = Ray::vertical(ox, oy);
        let hit = ray_tetra(&Plucker::from_ray(&ray), &v);
        if hit.is_through() && !hit.degenerate {
            let (_, p_in) = hit.enter.unwrap();
            let (_, p_out) = hit.exit.unwrap();
            // Crossing points preserve the ray's x, y (vertical line).
            prop_assert!((p_in.x - ox).abs() < 1e-7 && (p_in.y - oy).abs() < 1e-7);
            prop_assert!((p_out.x - ox).abs() < 1e-7 && (p_out.y - oy).abs() < 1e-7);
            prop_assert!(p_out.z >= p_in.z, "exit below enter: {p_in:?} {p_out:?}");
            // Midpoint of the crossing interval is inside the tetrahedron.
            let mid = (p_in + p_out) * 0.5;
            let w = barycentric(mid, &v).unwrap();
            for wi in w {
                prop_assert!(wi >= -1e-6);
            }
        }
    }

    #[test]
    fn ray_tetra_matches_barycentric_membership(
        verts in prop::collection::vec(vec3(-5.0..5.0), 4),
        w in (0.05f64..1.0, 0.05f64..1.0, 0.05f64..1.0, 0.05f64..1.0),
    ) {
        // Construct a point strictly inside the tetrahedron; the vertical line
        // through it must be reported as passing through (or degenerate).
        let v = [verts[0], verts[1], verts[2], verts[3]];
        prop_assume!(volume(v[0], v[1], v[2], v[3]) > 1e-2);
        let sum = w.0 + w.1 + w.2 + w.3;
        let w = [w.0 / sum, w.1 / sum, w.2 / sum, w.3 / sum];
        let p = v[0] * w[0] + v[1] * w[1] + v[2] * w[2] + v[3] * w[3];
        let wb = barycentric(p, &v).unwrap();
        prop_assume!(wb.iter().all(|&wi| wi > 1e-4)); // guards rounding at the boundary
        let hit = ray_tetra(&Plucker::from_ray(&Ray::vertical(p.x, p.y)), &v);
        prop_assert!(hit.is_through() || hit.degenerate);
    }
}
