//! Cluster end-to-end conformance: a 3-shard cluster must be
//! *observationally identical* to a single-node server.
//!
//! Three escalating contracts:
//!
//! 1. **Bit-identity**: every field served by the cluster — cold, warm,
//!    hot-replicated, via the ring-aware client *or* a naive client whose
//!    requests get proxied server-side — matches a single-node reference
//!    render bit for bit.
//! 2. **Failover**: killing one shard rehashes its arcs to the survivors;
//!    every subsequent request still returns the bit-identical field, and
//!    the survivors' ring epoch bumps once gossip notices the silence.
//! 3. **Chaos** (the serving tier's standing contract, now clustered):
//!    under the full seeded fault storm *with a shard killed mid-storm*,
//!    every response is either the byte-identical field or a typed error —
//!    never corrupt bytes, never a hang.

use dtfe_cluster::{ClusterClient, ClusterConfig, ClusterNode};
use dtfe_geometry::{Aabb3, Vec3};
use dtfe_nbody::snapshot::write_snapshot;
use dtfe_service::{
    ChaosProxy, Client, ClientConfig, RenderRequest, RequestHandler, Service, ServiceConfig,
    SocketFaultPlan, SocketFaultRule, TcpServer,
};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

fn tmpdir(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("dtfe_cluster_{}_{name}", std::process::id()));
    std::fs::create_dir_all(&p).unwrap();
    p
}

fn cloud(n: usize, side: f64, seed: u64) -> Vec<Vec3> {
    let mut s = seed;
    let mut r = move || {
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        (s.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| Vec3::new(r() * side, r() * side, r() * side))
        .collect()
}

fn assert_bits_equal(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: cell {i}: {x} vs {y}");
    }
}

const SIDE: f64 = 8.0;
const TILES: usize = 4;

/// The shared shard/reference service config. Every shard loads the same
/// snapshot with the same single-threaded builder, which is what makes
/// failover renders bit-identical.
fn service_config() -> ServiceConfig {
    let mut cfg = ServiceConfig::new(4.0, 16);
    cfg.tiles = TILES;
    // Short socket timeouts so severed connections cannot pin handler
    // threads for the test's lifetime (and shard kills converge fast).
    cfg.read_timeout = Some(Duration::from_millis(500));
    cfg.write_timeout = Some(Duration::from_millis(500));
    cfg
}

fn cluster_config(shard: u32) -> ClusterConfig {
    ClusterConfig {
        shard,
        vnodes: 128,
        replication: 2,
        heat_threshold: 3, // low, so the warm loop crosses into replication
        hot_cap: 64,
        heartbeat_interval: Duration::from_millis(50),
        heartbeat_timeout: Duration::from_millis(400),
    }
}

/// One booted shard and the handles needed to kill it mid-test.
struct Shard {
    node: Arc<ClusterNode>,
    stop: Arc<AtomicBool>,
    serve: Option<JoinHandle<()>>,
    gossip: Option<JoinHandle<()>>,
}

impl Shard {
    /// Kill the shard: stop accepting, drain, drop the listener. After
    /// this returns, connects to its address are refused and its gossip
    /// goes silent — survivors must rehash its arcs.
    fn kill(&mut self) {
        self.node.stop_gossip();
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.serve.take() {
            h.join().unwrap();
        }
        if let Some(h) = self.gossip.take() {
            h.join().unwrap();
        }
    }
}

/// Boot an n-shard cluster over one snapshot directory: bind ephemeral
/// listeners first, then install the full membership and start gossip.
fn boot(dir: &Path, n: usize) -> (Vec<Shard>, Vec<SocketAddr>) {
    let mut addrs = Vec::new();
    let mut pending = Vec::new();
    for i in 0..n {
        let service = Arc::new(Service::start(dir, service_config()).unwrap());
        let node = ClusterNode::new(service, cluster_config(i as u32));
        let handler: Arc<dyn RequestHandler> = node.clone();
        let server = TcpServer::bind_with(handler, ("127.0.0.1", 0)).unwrap();
        addrs.push(server.local_addr().unwrap());
        pending.push((node, server));
    }
    let shards = pending
        .into_iter()
        .map(|(node, server)| {
            node.configure_peers(addrs.clone());
            let gossip = node.start_gossip();
            let stop = server.stop_handle();
            let serve = std::thread::spawn(move || server.serve());
            Shard {
                node,
                stop,
                serve: Some(serve),
                gossip: Some(gossip),
            }
        })
        .collect();
    (shards, addrs)
}

fn shutdown(mut shards: Vec<Shard>) {
    for s in &mut shards {
        s.kill();
    }
}

fn client_config(seed: u64) -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_millis(500),
        read_timeout: Some(Duration::from_millis(2_000)),
        write_timeout: Some(Duration::from_millis(2_000)),
        max_retries: 3,
        backoff_base: Duration::from_millis(2),
        backoff_max: Duration::from_millis(50),
        hedge_after: None,
        seed,
        sample_traces: false,
    }
}

/// Field centres spread across all tiles of the 8³ box (field_len 4 keeps
/// each cube inside the ghost-padded tile).
fn centers() -> Vec<Vec3> {
    let mut v = Vec::new();
    for &x in &[2.5, 5.5] {
        for &y in &[2.5, 5.5] {
            for &z in &[2.5, 5.5] {
                v.push(Vec3::new(x, y, z));
            }
        }
    }
    v
}

fn ring_client(addrs: &[SocketAddr], seed: u64) -> ClusterClient {
    let bounds = Aabb3::new(Vec3::ZERO, Vec3::splat(SIDE));
    let mut client = ClusterClient::new(addrs, 128, 2, client_config(seed)).unwrap();
    client.set_heat_threshold(3);
    client.register_snapshot("c", bounds, TILES);
    client
}

/// Contract 1: cold, warm, and naive-client renders are all bit-identical
/// to a single-node reference, and the warm loop spreads hot tiles across
/// more than one shard.
#[test]
fn three_shards_bit_identical_to_single_node() {
    let dir = tmpdir("bitident");
    let bounds = Aabb3::new(Vec3::ZERO, Vec3::splat(SIDE));
    write_snapshot(&dir.join("c.snap"), &[cloud(2000, SIDE, 42)], bounds).unwrap();

    // Single-node reference: the same config, rendered in-process.
    let reference = Service::start(&dir, service_config()).unwrap();
    let cs = centers();
    let refs: Vec<_> = cs
        .iter()
        .map(|&c| reference.render(&RenderRequest::new("c", c)).unwrap())
        .collect();

    let (shards, addrs) = boot(&dir, 3);
    let mut client = ring_client(&addrs, 7);

    // Cold pass: every tile built from scratch, spread over the ring.
    let mut served_by = [0usize; 3];
    for (i, &c) in cs.iter().enumerate() {
        let (resp, shard) = client.render(&RenderRequest::new("c", c)).unwrap();
        assert_bits_equal(&resp.data, &refs[i].data, &format!("cold centre {i}"));
        served_by[shard] += 1;
    }
    assert!(
        served_by.iter().filter(|&&n| n > 0).count() >= 2,
        "ring routing collapsed onto one shard: {served_by:?}"
    );

    // Warm passes: repeats cross the heat threshold, so later rounds serve
    // from replicas; bytes must not change.
    for round in 0..4 {
        for (i, &c) in cs.iter().enumerate() {
            let (resp, _) = client.render(&RenderRequest::new("c", c)).unwrap();
            assert_bits_equal(
                &resp.data,
                &refs[i].data,
                &format!("warm round {round} centre {i}"),
            );
        }
    }

    // Naive client pointed at one shard: non-owned tiles are proxied (or
    // failover-rendered) server-side, still bit-identical.
    let mut naive = Client::connect(addrs[0]).unwrap();
    for (i, &c) in cs.iter().enumerate() {
        let resp = naive.render(&RenderRequest::new("c", c)).unwrap();
        assert_bits_equal(&resp.data, &refs[i].data, &format!("naive centre {i}"));
    }

    shutdown(shards);
}

/// Contract 2: kill one shard after warmup. Every later render still
/// returns the bit-identical field (rehash + failover), and the
/// survivors' ring epoch bumps once gossip notices the silence.
#[test]
fn shard_death_fails_over_and_rebalances() {
    let dir = tmpdir("failover");
    let bounds = Aabb3::new(Vec3::ZERO, Vec3::splat(SIDE));
    write_snapshot(&dir.join("c.snap"), &[cloud(2000, SIDE, 43)], bounds).unwrap();

    let reference = Service::start(&dir, service_config()).unwrap();
    let cs = centers();
    let refs: Vec<_> = cs
        .iter()
        .map(|&c| reference.render(&RenderRequest::new("c", c)).unwrap())
        .collect();

    let (mut shards, addrs) = boot(&dir, 3);
    let mut client = ring_client(&addrs, 8);

    // Warm every tile and find a shard that actually served traffic, so
    // the kill is guaranteed to take someone's arcs away.
    let mut served_by = [0usize; 3];
    for (i, &c) in cs.iter().enumerate() {
        let (resp, shard) = client.render(&RenderRequest::new("c", c)).unwrap();
        assert_bits_equal(&resp.data, &refs[i].data, &format!("pre-kill centre {i}"));
        served_by[shard] += 1;
    }
    let victim = served_by
        .iter()
        .enumerate()
        .max_by_key(|(_, &n)| n)
        .map(|(i, _)| i)
        .unwrap();
    let survivors: Vec<usize> = (0..3).filter(|&i| i != victim).collect();
    let epochs_before: Vec<u64> = survivors.iter().map(|&i| shards[i].node.epoch()).collect();

    shards[victim].kill();

    // Every request must still come back bit-identical: the client marks
    // the dead shard, the ring rehashes its arcs, and worst case a
    // survivor failover-renders the tile locally.
    for (i, &c) in cs.iter().enumerate() {
        let (resp, shard) = client.render(&RenderRequest::new("c", c)).unwrap();
        assert_bits_equal(&resp.data, &refs[i].data, &format!("post-kill centre {i}"));
        assert_ne!(shard, victim, "dead shard cannot have served centre {i}");
    }

    // Gossip notices the silence within the heartbeat timeout: each
    // survivor bumps its epoch and records a rebalance.
    let deadline = Instant::now() + Duration::from_secs(3);
    loop {
        let bumped = survivors
            .iter()
            .zip(&epochs_before)
            .all(|(&i, &e0)| shards[i].node.epoch() > e0);
        if bumped {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "survivors never bumped their ring epoch after the kill"
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    // And the rebalanced cluster keeps serving the dead shard's tiles.
    let mut fresh = ring_client(&addrs, 9);
    for (i, &c) in cs.iter().enumerate() {
        let (resp, shard) = fresh.render(&RenderRequest::new("c", c)).unwrap();
        assert_bits_equal(&resp.data, &refs[i].data, &format!("rebalanced centre {i}"));
        assert_ne!(shard, victim);
    }

    shutdown(shards);
}

/// The serving tier's stormy rule (all seven fault kinds), identical to
/// the single-node chaos suite's.
fn stormy_rule() -> SocketFaultRule {
    SocketFaultRule::all()
        .drop(0.06)
        .delay(0.06, Duration::from_millis(5))
        .truncate(0.06)
        .split(0.06)
        .stall(0.06, Duration::from_millis(30))
        .reset(0.06)
        .bitflip(0.06)
}

/// Contract 3 (chaos): the full seeded storm on shard 0's socket path,
/// with shard 1 killed mid-storm. Every outcome is bit-identical-or-typed
/// error; after the storm the dead shard's tiles are served bit-identical
/// by the survivors.
#[test]
fn chaos_storm_with_shard_kill() {
    let dir = tmpdir("chaos");
    let bounds = Aabb3::new(Vec3::ZERO, Vec3::splat(SIDE));
    write_snapshot(&dir.join("c.snap"), &[cloud(1200, SIDE, 44)], bounds).unwrap();

    let reference = Service::start(&dir, service_config()).unwrap();
    let cs = centers();
    let refs: Vec<_> = cs
        .iter()
        .map(|&c| reference.render(&RenderRequest::new("c", c)).unwrap())
        .collect();

    let (mut shards, addrs) = boot(&dir, 3);

    let mut oks = 0usize;
    let mut typed_errors = 0usize;
    let mut killed = false;
    for seed in [11u64, 22, 33, 44, 55] {
        // Chaos on the path to shard 0 only: the ring-aware client's view
        // of shard 0 goes through the fault injector, shards 1 and 2 are
        // reached directly.
        let plan = SocketFaultPlan::seeded(seed).rule(stormy_rule());
        let mut proxy = ChaosProxy::start(plan, addrs[0]).unwrap();
        let storm_addrs = [proxy.addr(), addrs[1], addrs[2]];
        let mut client = ring_client(&storm_addrs, seed);
        for i in 0..8 {
            let which = i % cs.len();
            match client.render(&RenderRequest::new("c", cs[which])) {
                Ok((resp, _)) => {
                    // The one acceptable success: exact bytes.
                    assert_bits_equal(
                        &resp.data,
                        &refs[which].data,
                        &format!("seed {seed} req {i}"),
                    );
                    oks += 1;
                }
                // Any typed error is an honest outcome under chaos; what
                // is forbidden is corrupt bytes (caught above) or a hang
                // (caught by the socket timeouts).
                Err(_) => typed_errors += 1,
            }
        }
        proxy.stop();

        if seed == 33 && !killed {
            shards[1].kill();
            killed = true;
        }
    }
    assert!(killed);
    assert!(
        oks >= 10,
        "storm starved the client: {oks} oks, {typed_errors} typed errors"
    );

    // Storm over, chaos proxy gone, shard 1 still dead: every tile —
    // including shard 1's former arcs — must now serve bit-identical from
    // the survivors, with plain bounded retries.
    let calm_addrs = [addrs[0], addrs[1], addrs[2]];
    let mut calm = ring_client(&calm_addrs, 99);
    for round in 0..2 {
        for (i, &c) in cs.iter().enumerate() {
            let (resp, shard) = calm.render(&RenderRequest::new("c", c)).unwrap();
            assert_bits_equal(
                &resp.data,
                &refs[i].data,
                &format!("post-storm round {round} centre {i}"),
            );
            assert_ne!(shard, 1, "dead shard served centre {i}");
        }
    }

    shutdown(shards);
}
