//! Ring-math property tests: the three guarantees routing correctness
//! rests on.
//!
//! 1. **Join/leave stability**: growing the cluster from N to N+1 shards
//!    moves roughly K/(N+1) of the keys, and every moved key moves *to*
//!    the joining shard — never between survivors. (Multi-probe lookup
//!    preserves plain consistent hashing's movement bound: new points only
//!    shrink probe distances, so a winner can change only to a new point.)
//! 2. **Cross-process determinism**: ring placement is a pure function of
//!    `(nshards, vnodes)` and the key string — pinned against golden
//!    values, so no `RandomState`/pointer-identity sneaks in.
//! 3. **Uniformity**: at 128 vnodes, every shard's share of a large
//!    deterministic key population is within 10% of the mean for all
//!    cluster sizes 2..=8.

use dtfe_cluster::{key_of, HashRing};
use dtfe_service::TileKey;
use proptest::prelude::*;

/// A deterministic population of tile-key ring positions shaped like real
/// traffic: a few snapshots, tens of tiles, the default estimator.
fn key_population(n: usize) -> Vec<u64> {
    (0..n)
        .map(|i| {
            let key = TileKey::new(
                format!("snap{}", i % 5),
                i % 64,
                dtfe_core::EstimatorKind::Dtfe,
            );
            // Decorrelate beyond the 5×64 distinct tile keys: fold the
            // index in so each i is a distinct ring position, the way
            // distinct snapshots would hash.
            key_of(&key) ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        })
        .collect()
}

#[test]
fn placement_is_deterministic_across_processes() {
    // Golden values: computed once, must never drift — a drift means two
    // builds of the cluster would route the same key differently.
    let key = TileKey::new("demo", 3, dtfe_core::EstimatorKind::Dtfe);
    assert_eq!(key_of(&key), 0xe459_3e22_0b37_1542, "key hash drifted");
    let ring = HashRing::new(3, 128);
    let live = [true; 3];
    let owners: Vec<usize> = (0..16u64)
        .map(|k| {
            ring.primary(k.wrapping_mul(0x0123_4567_89ab_cdef), &live)
                .unwrap()
        })
        .collect();
    assert_eq!(
        owners,
        vec![0, 2, 2, 0, 2, 0, 1, 0, 1, 2, 1, 2, 1, 1, 2, 2],
        "ring placement drifted"
    );
}

#[test]
fn same_inputs_build_identical_rings() {
    let a = HashRing::new(5, 128);
    let b = HashRing::new(5, 128);
    let live = [true; 5];
    for k in key_population(2000) {
        assert_eq!(a.primary(k, &live), b.primary(k, &live));
        assert_eq!(a.replicas(k, 3, &live), b.replicas(k, 3, &live));
    }
}

#[test]
fn uniform_within_ten_percent_at_128_vnodes() {
    let keys = key_population(65_536);
    for n in 2..=8usize {
        let ring = HashRing::new(n, 128);
        let live = vec![true; n];
        let mut counts = vec![0u64; n];
        for &k in &keys {
            counts[ring.primary(k, &live).unwrap()] += 1;
        }
        let mean = keys.len() as f64 / n as f64;
        for (shard, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - mean).abs() / mean;
            assert!(
                dev <= 0.10,
                "shard {shard}/{n} holds {c} keys, {:.1}% off the mean {mean:.0}",
                dev * 100.0
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Adding shard N to an N-shard ring moves ~K/(N+1) keys, all of them
    /// to the new shard.
    #[test]
    fn join_moves_about_one_over_n(n in 2usize..8, seed in 0u64..1_000_000) {
        let before = HashRing::new(n, 128);
        let after = HashRing::new(n + 1, 128);
        let live_b = vec![true; n];
        let live_a = vec![true; n + 1];
        let keys: Vec<u64> = (0..4096u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ seed)
            .collect();
        let mut moved = 0usize;
        for &k in &keys {
            let ob = before.primary(k, &live_b).unwrap();
            let oa = after.primary(k, &live_a).unwrap();
            if ob != oa {
                moved += 1;
                prop_assert_eq!(
                    oa, n,
                    "a moved key must land on the joining shard, not shuffle between survivors"
                );
            }
        }
        let expected = keys.len() as f64 / (n + 1) as f64;
        let frac = moved as f64;
        // Loose statistical envelope: between a third and double the
        // consistent-hashing expectation K/(N+1).
        prop_assert!(
            frac > expected / 3.0 && frac < expected * 2.0,
            "{moved} of {} keys moved joining shard {n} (expected ≈ {expected:.0})",
            keys.len()
        );
    }

    /// Marking a shard dead reassigns exactly its keys; every other key
    /// keeps its owner (leave = the mirror of join).
    #[test]
    fn leave_moves_only_the_dead_shards_keys(n in 3usize..8, dead in 0usize..8, seed in 0u64..1_000_000) {
        let dead = dead % n;
        let ring = HashRing::new(n, 128);
        let all = vec![true; n];
        let mut live = all.clone();
        live[dead] = false;
        for i in 0..2048u64 {
            let k = i.wrapping_mul(0x0123_4567_89ab_cdef) ^ seed;
            let before = ring.primary(k, &all).unwrap();
            let after = ring.primary(k, &live).unwrap();
            if before == dead {
                prop_assert_ne!(after, dead, "dead shard still owns a key");
            } else {
                prop_assert_eq!(after, before, "a survivor's key moved on an unrelated death");
            }
        }
    }

    /// Replica sets under any live mask are distinct, live, and no larger
    /// than the live population.
    #[test]
    fn replicas_are_live_and_distinct(
        n in 2usize..8,
        r in 1usize..4,
        mask in 0u8..255,
        seed in 0u64..1_000_000,
    ) {
        let ring = HashRing::new(n, 128);
        let live: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
        let nlive = live.iter().filter(|&&l| l).count();
        for i in 0..256u64 {
            let k = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ seed;
            let reps = ring.replicas(k, r, &live);
            prop_assert_eq!(reps.len(), r.min(nlive));
            let mut sorted = reps.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), reps.len(), "duplicate replica");
            for &s in &reps {
                prop_assert!(live[s], "dead shard {} in replica set", s);
            }
        }
    }
}
