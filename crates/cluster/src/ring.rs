//! Consistent-hash ring over tile keys.
//!
//! Each shard owns `vnodes` points on a 64-bit ring; a tile key hashes to a
//! point and is owned by the first live shard at or clockwise of it. All
//! hashing is deterministic and process-independent — no `RandomState`, no
//! pointer bits — so every node (and every client) derives the identical ring
//! from the same `(nshards, vnodes)` pair, and placement survives restarts.

use dtfe_service::TileKey;

/// SplitMix64 finalizer: a full-avalanche bijection on `u64`.
///
/// Used both to place vnode points (so consecutive `(shard, vnode)` pairs
/// scatter) and to post-mix the FNV-1a key hash (FNV alone has weak high-bit
/// diffusion for short ASCII strings, which would skew arc ownership).
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a 64-bit over raw bytes. Stable across processes and platforms.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Ring position of a tile key: FNV-1a over its canonical
/// `"{snapshot}/{tile}/{estimator}"` rendering, then a SplitMix64 finalize.
pub fn key_of(key: &TileKey) -> u64 {
    splitmix64(fnv1a64(key.to_string().as_bytes()))
}

/// How many ring positions each key probes. Ownership goes to the probe that
/// lands closest (clockwise) to a vnode point — multi-probe consistent
/// hashing. With plain single-probe lookup, per-shard load deviation at 128
/// vnodes is ~1/√128 ≈ 9% σ, so worst-case imbalance routinely exceeds 10%;
/// four probes measured ≤ 6.1% worst-case over 2..=8 shards on 64 Ki keys.
/// Movement stays consistent: adding a shard only shrinks probe distances via
/// its own new points, so keys only ever move *to* the joining shard.
const NPROBES: u64 = 4;

/// A consistent-hash ring over `nshards` shards with `vnodes` virtual nodes
/// per shard. Construction is pure: same inputs, same ring, every process.
#[derive(Clone, Debug)]
pub struct HashRing {
    nshards: usize,
    /// `(point, shard)` sorted by point; ties broken by shard id so the sort
    /// order itself is deterministic (collisions are astronomically unlikely
    /// but must not depend on sort stability).
    points: Vec<(u64, u32)>,
}

impl HashRing {
    pub fn new(nshards: usize, vnodes: usize) -> HashRing {
        let mut points = Vec::with_capacity(nshards * vnodes);
        for shard in 0..nshards as u64 {
            for vnode in 0..vnodes as u64 {
                points.push((splitmix64((shard << 32) | vnode), shard as u32));
            }
        }
        points.sort_unstable();
        HashRing { nshards, points }
    }

    pub fn nshards(&self) -> usize {
        self.nshards
    }

    /// Index of the first ring point at or clockwise of `pos`.
    fn successor(&self, pos: u64) -> usize {
        match self.points.binary_search(&(pos, 0)) {
            Ok(i) => i,
            Err(i) => i % self.points.len(),
        }
    }

    /// Index of the point owning `key`: of the [`NPROBES`] probe positions
    /// derived from the key, the one whose clockwise successor is nearest.
    fn winner(&self, key: u64) -> usize {
        let mut best = (u64::MAX, 0usize);
        for p in 0..NPROBES {
            let pos = splitmix64(key.wrapping_add(p));
            let i = self.successor(pos);
            let dist = self.points[i].0.wrapping_sub(pos);
            if dist < best.0 {
                best = (dist, i);
            }
        }
        best.1
    }

    /// The live shard owning `key`: the first live shard walking clockwise
    /// from the key's winning point. Dead shards are skipped, which *is* the
    /// failover rehash — their arcs fall through to the next live successor.
    /// Returns `None` when no shard in `live` is true.
    pub fn primary(&self, key: u64, live: &[bool]) -> Option<usize> {
        self.replicas(key, 1, live).first().copied()
    }

    /// The first `r` *distinct* live shards clockwise from `key`'s winning
    /// point, in ring order: replica set for a hot tile. Fewer than `r`
    /// entries when fewer live shards exist.
    pub fn replicas(&self, key: u64, r: usize, live: &[bool]) -> Vec<usize> {
        let mut out = Vec::with_capacity(r.min(self.nshards));
        if self.points.is_empty() || r == 0 {
            return out;
        }
        let start = self.winner(key);
        for off in 0..self.points.len() {
            let shard = self.points[(start + off) % self.points.len()].1 as usize;
            if live.get(shard).copied().unwrap_or(false) && !out.contains(&shard) {
                out.push(shard);
                if out.len() == r {
                    break;
                }
            }
        }
        out
    }

    /// Owner ignoring liveness — the "home" shard a redirect should name even
    /// while it is briefly unreachable.
    pub fn home(&self, key: u64) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        Some(self.points[self.winner(key)].1 as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_stable() {
        // Reference values from the published SplitMix64 algorithm; guards
        // against accidental constant edits (placement depends on these).
        assert_eq!(splitmix64(0), 0xe220_a839_7b1d_cdaf);
        assert_eq!(splitmix64(1), 0x910a_2dec_8902_5cc1);
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn empty_live_set_has_no_owner() {
        let ring = HashRing::new(3, 8);
        assert_eq!(ring.primary(42, &[false, false, false]), None);
        assert!(ring.replicas(42, 2, &[false; 3]).is_empty());
    }

    #[test]
    fn dead_shard_arcs_fall_to_successors() {
        let ring = HashRing::new(3, 128);
        let all = [true; 3];
        for k in 0..10_000u64 {
            let key = splitmix64(k);
            let owner = ring.primary(key, &all).unwrap();
            let mut live = all;
            live[owner] = false;
            let fallback = ring.primary(key, &live).unwrap();
            assert_ne!(fallback, owner);
            // The fallback is exactly the second replica of the full ring.
            assert_eq!(fallback, ring.replicas(key, 2, &all)[1]);
        }
    }

    #[test]
    fn replicas_are_distinct_and_ordered() {
        let ring = HashRing::new(5, 64);
        let live = [true; 5];
        for k in 0..1000u64 {
            let reps = ring.replicas(splitmix64(k), 3, &live);
            assert_eq!(reps.len(), 3);
            assert_eq!(reps[0], ring.primary(splitmix64(k), &live).unwrap());
            let mut sorted = reps.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "replicas must be distinct: {reps:?}");
        }
    }
}
