//! One cluster shard: a [`Service`] wrapped with ring ownership, cost-aware
//! peer routing, hot-tile replication, gossip, and failover.
//!
//! ## Request flow
//!
//! A shard receiving a render resolves the tile key exactly like a
//! single-node server, hashes it onto the ring, and computes the owner set
//! against its *live view* of the cluster (dead peers are skipped by the
//! ring walk — that is the failover rehash). Then:
//!
//! * **self is an owner** (or the node runs solo): serve locally;
//! * **redirect-mode request** (a ring-aware client's first hop): answer a
//!   typed [`NotMine`](ServiceError::NotMine) naming the cheapest owner so
//!   the client re-sends there directly;
//! * **plain request** (naive client, or a peer's proxied hop): proxy to
//!   the cheapest owner with `redirect` set — if the owner disagrees about
//!   ownership it answers `NotMine` rather than forwarding again, which
//!   bounds any routing disagreement to one extra hop — and on *any*
//!   proxy failure (owner dead, mid-stream cut, `NotMine`) the shard
//!   serves the tile itself. Every shard loads the same snapshots and
//!   builds tiles with the same single-threaded builder, so a failover
//!   render is bit-identical to the owner's; failover costs latency, never
//!   correctness.
//!
//! ## Gossip
//!
//! Shards exchange [`ShardHeartbeat`]s on a fixed interval over the same
//! wire protocol (symmetric piggyback: the request carries the sender's
//! heartbeat, the response the receiver's). Heartbeats carry the load
//! gauges the router scores with, plus each shard's *hot set* — ring keys
//! whose request rate crossed [`ClusterConfig::heat_threshold`], which
//! widens the owner set to [`ClusterConfig::replication`] shards. A peer
//! whose heartbeat goes silent past [`ClusterConfig::heartbeat_timeout`]
//! is marked dead: the live view changes, the ring **epoch** bumps, a
//! `cluster.ring_rebalance` counter ticks, and a rebalance event lands in
//! the flight recorder.

use crate::ring::{key_of, HashRing};
use crate::router::{cheapest, ShardGauges};
use dtfe_service::wire::{read_frame, write_frame};
use dtfe_service::{
    Handled, RenderRequest, Request, RequestHandler, Response, RouteInfo, Service, ServiceError,
    ShardHeartbeat,
};
use std::collections::{HashMap, HashSet};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Shard-local cluster settings. The ring geometry (`vnodes`) and
/// `replication` must agree across every shard and ring-aware client, or
/// redirects ping-pong; everything else is per-shard tunable.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// This shard's index into the peer address list.
    pub shard: u32,
    /// Virtual nodes per shard on the hash ring.
    pub vnodes: usize,
    /// Owner-set width for hot tiles (1 = primary only).
    pub replication: usize,
    /// Local request count after which a tile is considered hot and its
    /// owner set widens to `replication` shards.
    pub heat_threshold: u32,
    /// Most hot keys advertised per heartbeat (bounds frame size).
    pub hot_cap: usize,
    /// Gossip exchange period.
    pub heartbeat_interval: Duration,
    /// Silence after which a peer is declared dead and its arcs rehash.
    pub heartbeat_timeout: Duration,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            shard: 0,
            vnodes: 128,
            replication: 2,
            heat_threshold: 8,
            hot_cap: 64,
            heartbeat_interval: Duration::from_millis(100),
            heartbeat_timeout: Duration::from_millis(1000),
        }
    }
}

/// What this shard currently believes about one peer.
#[derive(Clone, Debug)]
struct PeerState {
    alive: bool,
    last_seen: Instant,
    last_seq: u64,
    queue_depth: u64,
    backlog_ms: u64,
    draining: bool,
    hot: HashSet<u64>,
    resident_bytes: u64,
}

impl PeerState {
    fn fresh(now: Instant) -> PeerState {
        PeerState {
            alive: true,
            last_seen: now,
            last_seq: 0,
            queue_depth: 0,
            backlog_ms: 0,
            draining: false,
            hot: HashSet::new(),
            resident_bytes: 0,
        }
    }
}

/// The mutable cluster view: peer addresses (index = shard id), the ring
/// built over them, and per-peer liveness/gauges.
struct Topology {
    addrs: Vec<SocketAddr>,
    ring: HashRing,
    peers: Vec<PeerState>,
}

/// A cluster shard. Implements [`RequestHandler`], so it plugs into
/// [`dtfe_service::TcpServer::bind_with`] unchanged.
pub struct ClusterNode {
    service: Arc<Service>,
    cfg: ClusterConfig,
    topo: Mutex<Topology>,
    /// Live-view generation; bumps on every peer death or resurrection.
    epoch: AtomicU64,
    /// Heartbeat sequence (stale-heartbeat rejection on receivers).
    seq: AtomicU64,
    /// Local per-ring-key request counts driving hot-tile replication.
    heat: Mutex<HashMap<u64, u32>>,
    stop: AtomicBool,
}

impl ClusterNode {
    /// Wrap a service as a solo shard (owns everything until
    /// [`configure_peers`](ClusterNode::configure_peers) is called). The
    /// two-phase construction exists because listeners bind ephemeral
    /// ports *before* the full peer address list is known.
    pub fn new(service: Arc<Service>, cfg: ClusterConfig) -> Arc<ClusterNode> {
        Arc::new(ClusterNode {
            service,
            topo: Mutex::new(Topology {
                addrs: Vec::new(),
                ring: HashRing::new(1, cfg.vnodes),
                peers: vec![PeerState::fresh(Instant::now())],
            }),
            cfg,
            epoch: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            heat: Mutex::new(HashMap::new()),
            stop: AtomicBool::new(false),
        })
    }

    /// Install the cluster membership: `addrs[i]` is shard `i`'s listener.
    /// All peers start presumed-live with a fresh liveness grace period.
    pub fn configure_peers(&self, addrs: Vec<SocketAddr>) {
        assert!(
            (self.cfg.shard as usize) < addrs.len(),
            "own shard index {} outside peer list of {}",
            self.cfg.shard,
            addrs.len()
        );
        let now = Instant::now();
        let mut topo = self.topo.lock().unwrap();
        topo.ring = HashRing::new(addrs.len(), self.cfg.vnodes);
        topo.peers = (0..addrs.len()).map(|_| PeerState::fresh(now)).collect();
        topo.addrs = addrs;
    }

    /// The wrapped service (tests reach through for cache/stats).
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Current live-view epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Stop the gossip loop (the thread exits within one interval).
    pub fn stop_gossip(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// This shard's current heartbeat (also advances the sequence).
    pub fn heartbeat(&self) -> ShardHeartbeat {
        let h = self.service.health();
        let heat = self.heat.lock().unwrap();
        let mut hot: Vec<u64> = heat
            .iter()
            .filter(|(_, &c)| c >= self.cfg.heat_threshold)
            .map(|(&k, _)| k)
            .collect();
        hot.sort_unstable(); // deterministic frame bytes
        hot.truncate(self.cfg.hot_cap);
        ShardHeartbeat {
            shard: self.cfg.shard,
            seq: self.seq.fetch_add(1, Ordering::SeqCst) + 1,
            epoch: self.epoch.load(Ordering::SeqCst),
            queue_depth: h.queue_depth,
            backlog_ms: h.backlog_ms,
            resident_bytes: h.resident_bytes,
            resident_tiles: h.resident_tiles,
            draining: h.draining,
            hot,
        }
    }

    /// Fold a peer's heartbeat into the live view. Resurrections (a dead
    /// peer heard from again) bump the epoch just like deaths.
    pub fn absorb(&self, hb: &ShardHeartbeat) {
        let idx = hb.shard as usize;
        let mut topo = self.topo.lock().unwrap();
        let Some(peer) = topo.peers.get_mut(idx) else {
            return; // unknown shard id: ignore, membership is static
        };
        if idx == self.cfg.shard as usize || hb.seq <= peer.last_seq {
            return; // self-echo or stale
        }
        let resurrected = !peer.alive;
        peer.alive = true;
        peer.last_seen = Instant::now();
        peer.last_seq = hb.seq;
        peer.queue_depth = hb.queue_depth;
        peer.backlog_ms = hb.backlog_ms;
        peer.draining = hb.draining;
        peer.resident_bytes = hb.resident_bytes;
        peer.hot = hb.hot.iter().copied().collect();
        drop(topo);
        if resurrected {
            self.note_rebalance(idx, "peer-rejoined");
        }
    }

    /// Sweep liveness: peers silent past the timeout are declared dead.
    /// Called from the gossip loop; public so tests can force the sweep.
    pub fn sweep_liveness(&self) {
        let timeout = self.cfg.heartbeat_timeout;
        let me = self.cfg.shard as usize;
        let mut died = Vec::new();
        {
            let mut topo = self.topo.lock().unwrap();
            for (i, p) in topo.peers.iter_mut().enumerate() {
                if i != me && p.alive && p.last_seen.elapsed() > timeout {
                    p.alive = false;
                    died.push(i);
                }
            }
        }
        for i in died {
            self.note_rebalance(i, "peer-dead");
        }
    }

    /// Record a live-view change: epoch bump, counter, flight-recorder
    /// event (visible in the Chrome trace as a `ring_rebalance` span).
    fn note_rebalance(&self, peer: usize, why: &str) {
        let epoch = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        dtfe_telemetry::counter_add!("cluster.ring_rebalance", 1);
        let t0 = dtfe_telemetry::clock::now_us();
        self.service.flight().record(dtfe_telemetry::RequestTrace {
            trace_id: String::new(),
            reason: "rebalance".into(),
            t0_us: t0,
            spans: vec![dtfe_telemetry::SpanEvent {
                name: "ring_rebalance".into(),
                tid: self.cfg.shard as u64,
                depth: 0,
                t0_us: t0,
                dur_us: 0,
                cpu_us: 0,
                args: vec![
                    ("peer".into(), peer.to_string()),
                    ("why".into(), why.into()),
                    ("epoch".into(), epoch.to_string()),
                ],
            }],
        });
    }

    /// Spawn the gossip thread: exchange heartbeats with every peer each
    /// interval, then sweep liveness.
    pub fn start_gossip(self: &Arc<Self>) -> std::thread::JoinHandle<()> {
        let node = self.clone();
        std::thread::Builder::new()
            .name(format!("dtfe-gossip-{}", self.cfg.shard))
            .spawn(move || {
                while !node.stop.load(Ordering::SeqCst) {
                    std::thread::sleep(node.cfg.heartbeat_interval);
                    let peers: Vec<(usize, SocketAddr)> = {
                        let topo = node.topo.lock().unwrap();
                        topo.addrs
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| *i != node.cfg.shard as usize)
                            .map(|(i, a)| (i, *a))
                            .collect()
                    };
                    for (_, addr) in peers {
                        let hb = node.heartbeat();
                        if let Some(peer_hb) =
                            gossip_exchange(addr, &hb, node.cfg.heartbeat_interval)
                        {
                            node.absorb(&peer_hb);
                        }
                    }
                    node.sweep_liveness();
                }
            })
            .expect("spawn gossip thread")
    }

    /// Count a request against a ring key's heat.
    fn touch_heat(&self, ringkey: u64) -> u32 {
        let mut heat = self.heat.lock().unwrap();
        // Crude pressure valve: forget everything rather than grow without
        // bound; hot tiles re-earn their heat in a few requests.
        if heat.len() > 4096 {
            heat.clear();
        }
        let c = heat.entry(ringkey).or_insert(0);
        *c = c.saturating_add(1);
        *c
    }

    /// Owner set and per-candidate gauges for one tile, under the current
    /// live view. Returns `(owners, my_index_is_owner, addrs)`.
    fn route(&self, r: &RenderRequest) -> Result<Routing, ServiceError> {
        let key = self.service.tile_key(r)?;
        let ringkey = key_of(&key);
        let heat = self.touch_heat(ringkey);
        let n = self.service.tile_particles(&key).unwrap_or(0);
        let me = self.cfg.shard as usize;
        let topo = self.topo.lock().unwrap();
        if topo.addrs.len() <= 1 {
            return Ok(Routing::Local);
        }
        // Draining peers are refusing work; keep them off the ring now
        // rather than eat a refused hop (self stays live — a draining
        // local service answers `ShuttingDown` itself).
        let live: Vec<bool> = topo
            .peers
            .iter()
            .enumerate()
            .map(|(i, p)| p.alive && (i == me || !p.draining))
            .collect();
        // A tile is hot if we see it hot locally *or* any peer advertises
        // it — so replicas converge on the widened owner set.
        let hot =
            heat >= self.cfg.heat_threshold || topo.peers.iter().any(|p| p.hot.contains(&ringkey));
        let owners = topo
            .ring
            .replicas(ringkey, if hot { self.cfg.replication } else { 1 }, &live);
        if owners.is_empty() || owners.contains(&me) {
            if hot {
                dtfe_telemetry::counter_add!("cluster.hot_replica_serves", 1);
            }
            return Ok(Routing::Local);
        }
        // Rank the owners with the cost model + gossiped gauges.
        let model = self.service.config().model;
        let samples = if r.samples == 0 {
            self.service.config().samples
        } else {
            r.samples as usize
        };
        let gauges: Vec<(usize, ShardGauges)> = owners
            .iter()
            .map(|&i| {
                let p = &topo.peers[i];
                (
                    i,
                    ShardGauges {
                        resident: p.hot.contains(&ringkey),
                        queue_depth: p.queue_depth,
                        backlog_ms: p.backlog_ms,
                        draining: p.draining,
                    },
                )
            })
            .collect();
        let resolution = if r.resolution == 0 {
            self.service.config().resolution
        } else {
            r.resolution as usize
        };
        let cells = resolution * resolution * samples;
        let best = cheapest(&model, n, cells, &gauges).unwrap_or(owners[0]);
        Ok(Routing::Remote {
            owner: topo.addrs[best],
        })
    }

    /// Serve `r` locally, as a pipeline slot.
    fn serve_local(&self, r: &RenderRequest) -> Handled {
        dtfe_telemetry::counter_add!("cluster.local_serves", 1);
        match self.service.submit(r) {
            Ok(reply) => Handled::Pending(reply),
            Err(e) => Handled::ready(Response::Error(e)),
        }
    }
}

/// Where one request should be served.
enum Routing {
    Local,
    Remote { owner: SocketAddr },
}

impl RequestHandler for ClusterNode {
    fn service(&self) -> &Service {
        &self.service
    }

    fn handle(&self, req: Request) -> Handled {
        match req {
            Request::Render(r) => self.handle_render(r, RouteInfo::default()),
            Request::RenderRouted(r, route) => self.handle_render(r, route),
            Request::Gossip(hb) => {
                self.absorb(&hb);
                Handled::ready(Response::Gossip(self.heartbeat()))
            }
            Request::Stats => Handled::ready(Response::Stats(self.service.stats_document())),
            Request::Health => Handled::ready(Response::Health(self.service.health())),
            Request::Dump => Handled::ready(Response::Dump(self.service.dump_trace())),
            // Unreachable: the transport intercepts Shutdown.
            Request::Shutdown => Handled::ready(Response::ShutdownAck),
        }
    }
}

impl ClusterNode {
    fn handle_render(&self, r: RenderRequest, route: RouteInfo) -> Handled {
        let owner = match self.route(&r) {
            Ok(Routing::Local) => return self.serve_local(&r),
            Ok(Routing::Remote { owner }) => owner,
            // Invalid requests fail identically on every shard; answer
            // here rather than burn a hop.
            Err(e) => return Handled::ready(Response::Error(e)),
        };
        if route.redirect {
            // Ring-aware client: hand it the owner instead of proxying.
            dtfe_telemetry::counter_add!("cluster.not_mine", 1);
            return Handled::ready(Response::Error(ServiceError::NotMine {
                owner: owner.to_string(),
            }));
        }
        // Proxy mode (naive client, or our own ring view is stale). The
        // hop is redirect-mode so a disagreeing owner answers `NotMine`
        // instead of forwarding again — no proxy loops — and any failure
        // falls back to a bit-identical local render.
        dtfe_telemetry::counter_add!("cluster.proxied", 1);
        let epoch = self.epoch.load(Ordering::SeqCst);
        let service = self.service.clone();
        let timeout = proxy_timeout(&r, self.service.config());
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::Builder::new()
            .name("dtfe-proxy".into())
            .spawn(move || {
                let result = match proxy_render(owner, &r, epoch, timeout) {
                    Some(outcome) => outcome,
                    None => {
                        dtfe_telemetry::counter_add!("cluster.forward_failovers", 1);
                        service.render(&r)
                    }
                };
                let _ = tx.send(result);
            })
            .expect("spawn proxy thread");
        Handled::Pending(rx)
    }
}

/// Deadline for one proxied hop: the request's own deadline if set, else
/// the server's write timeout, else a generous fixed cap.
fn proxy_timeout(r: &RenderRequest, cfg: &dtfe_service::ServiceConfig) -> Duration {
    if r.deadline_ms > 0 {
        Duration::from_millis(r.deadline_ms)
    } else {
        cfg.write_timeout.unwrap_or(Duration::from_secs(30))
    }
}

/// One proxied render hop. `Some(outcome)` is a definitive answer to relay
/// (field *or* typed error — an `Overloaded` from the owner is real
/// backpressure and must reach the client); `None` means the hop failed in
/// a way local failover repairs: transport trouble or `NotMine`.
fn proxy_render(
    owner: SocketAddr,
    r: &RenderRequest,
    epoch: u64,
    timeout: Duration,
) -> Option<Result<dtfe_service::RenderResponse, ServiceError>> {
    let stream = TcpStream::connect_timeout(&owner, timeout).ok()?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    let mut reader = std::io::BufReader::new(stream.try_clone().ok()?);
    let mut writer = std::io::BufWriter::new(stream);
    let req = Request::RenderRouted(
        r.clone(),
        RouteInfo {
            redirect: true,
            epoch,
        },
    );
    write_frame(&mut writer, &req.encode()).ok()?;
    let payload = read_frame(&mut reader).ok()?;
    match Response::decode(&payload).ok()? {
        Response::Field(resp) => Some(Ok(resp)),
        // Ring disagreement or a shard on its way out: both are repaired
        // by serving locally, not by relaying the refusal.
        Response::Error(ServiceError::NotMine { .. })
        | Response::Error(ServiceError::ShuttingDown) => None,
        Response::Error(e) => Some(Err(e)),
        _ => None,
    }
}

/// One gossip exchange: send our heartbeat, return the peer's.
fn gossip_exchange(
    addr: SocketAddr,
    hb: &ShardHeartbeat,
    timeout: Duration,
) -> Option<ShardHeartbeat> {
    let stream = TcpStream::connect_timeout(&addr, timeout).ok()?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    let mut reader = std::io::BufReader::new(stream.try_clone().ok()?);
    let mut writer = std::io::BufWriter::new(stream);
    write_frame(&mut writer, &Request::Gossip(hb.clone()).encode()).ok()?;
    let payload = read_frame(&mut reader).ok()?;
    match Response::decode(&payload).ok()? {
        Response::Gossip(peer_hb) => Some(peer_hb),
        _ => None,
    }
}
