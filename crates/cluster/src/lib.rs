//! Distributed serving tier for the DTFE tile service.
//!
//! Shards the tile cache across N nodes with a deterministic consistent-hash
//! ring ([`ring`]), routes requests to the cheapest owner using the calibrated
//! cost model plus live shard gauges ([`router`]), replicates hot tiles, and
//! fails over dead shards' arcs to ring successors ([`node`]). A ring-aware
//! client lives in [`client`].

pub mod client;
pub mod node;
pub mod ring;
pub mod router;

pub use client::ClusterClient;
pub use node::{ClusterConfig, ClusterNode};
pub use ring::{key_of, HashRing};
pub use router::score_shard;
