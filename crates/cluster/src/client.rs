//! Ring-aware cluster client.
//!
//! Holds one [`ResilientClient`] per shard and derives each request's
//! candidate shards from the same deterministic ring the servers use, so
//! the first hop almost always lands on the owner. Candidates are tried in
//! ring order: a typed service error is a real answer (return it), a
//! transport give-up marks the shard dead locally and moves on, and if
//! every candidate fails the request falls back to *any* live shard in
//! proxy mode (`redirect = false`) — a non-owner then serves the tile
//! itself, bit-identically, rather than bouncing the client again.
//!
//! The client tracks per-tile heat like the shards do, so its owner set
//! widens to the replica set at the same threshold and hot-tile traffic
//! spreads across replicas.

use crate::ring::{key_of, HashRing};
use dtfe_framework::Decomposition;
use dtfe_geometry::Aabb3;
use dtfe_service::client::{ClientConfig, ResilientClient};
use dtfe_service::{
    EstimatorKind, RenderRequest, RenderResponse, RouteInfo, ServiceError, TileKey,
};
use std::collections::HashMap;
use std::net::SocketAddr;

/// Client-side geometry of one registered snapshot: enough to map a field
/// centre to its tile without asking a server.
struct SnapshotGeo {
    decomp: Decomposition,
}

/// A client that routes renders to the owning shard of a cluster.
pub struct ClusterClient {
    addrs: Vec<SocketAddr>,
    ring: HashRing,
    replication: usize,
    heat_threshold: u32,
    heat: HashMap<u64, u32>,
    live: Vec<bool>,
    clients: Vec<ResilientClient>,
    cfg: ClientConfig,
    snapshots: HashMap<String, SnapshotGeo>,
}

impl ClusterClient {
    /// A client over the cluster's shard listeners (`addrs[i]` = shard
    /// `i`). `vnodes` and `replication` must match the shards' settings.
    pub fn new(
        addrs: &[SocketAddr],
        vnodes: usize,
        replication: usize,
        cfg: ClientConfig,
    ) -> std::io::Result<ClusterClient> {
        let clients = addrs
            .iter()
            .map(|a| ResilientClient::new(*a, cfg))
            .collect::<std::io::Result<Vec<_>>>()?;
        if clients.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "no shards",
            ));
        }
        Ok(ClusterClient {
            addrs: addrs.to_vec(),
            ring: HashRing::new(addrs.len(), vnodes),
            replication,
            heat_threshold: 8,
            heat: HashMap::new(),
            live: vec![true; addrs.len()],
            clients,
            cfg,
            snapshots: HashMap::new(),
        })
    }

    /// Requests per tile after which the client spreads that tile over the
    /// replica set (matches the shards' `heat_threshold` by default).
    pub fn set_heat_threshold(&mut self, t: u32) {
        self.heat_threshold = t;
    }

    /// Teach the client a snapshot's geometry, mirroring the server-side
    /// registry (`bounds` and `tiles` exactly as the servers load it), so
    /// tile ownership is computed locally.
    pub fn register_snapshot(&mut self, id: impl Into<String>, bounds: Aabb3, tiles: usize) {
        self.snapshots.insert(
            id.into(),
            SnapshotGeo {
                decomp: Decomposition::new(bounds, tiles),
            },
        );
    }

    /// Per-shard resilient client, for non-render calls (stats, health,
    /// dump, shutdown) against a specific shard.
    pub fn shard(&mut self, i: usize) -> &mut ResilientClient {
        &mut self.clients[i]
    }

    /// Number of shards.
    pub fn nshards(&self) -> usize {
        self.addrs.len()
    }

    /// The ring key this request maps to, if its snapshot is registered.
    fn ring_key(&self, req: &RenderRequest) -> Option<u64> {
        let geo = self.snapshots.get(&req.snapshot)?;
        if !req.center.is_finite() || !geo.decomp.bounds.contains_closed(req.center) {
            return None;
        }
        // Mirror the server's estimator normalisation so client and shard
        // hash the same canonical key.
        let estimator = match req.estimator {
            EstimatorKind::Stochastic { realizations: 0 } => EstimatorKind::Stochastic {
                realizations: EstimatorKind::DEFAULT_REALIZATIONS,
            },
            k => k,
        };
        let key = TileKey::new(
            req.snapshot.clone(),
            geo.decomp.rank_of(req.center),
            estimator,
        );
        Some(key_of(&key))
    }

    /// Render via the owning shard; returns the response and the index of
    /// the shard that served it (for per-shard accounting).
    pub fn render(&mut self, req: &RenderRequest) -> Result<(RenderResponse, usize), ServiceError> {
        let Some(ringkey) = self.ring_key(req) else {
            // Unknown snapshot or out-of-bounds centre: let shard 0 answer
            // (it returns the same typed error every shard would).
            return self.clients[0].render(req).map(|r| (r, 0));
        };
        let heat = {
            let c = self.heat.entry(ringkey).or_insert(0);
            *c = c.saturating_add(1);
            *c
        };
        let want = if heat >= self.heat_threshold {
            self.replication
        } else {
            1
        };
        let mut candidates = self.ring.replicas(ringkey, want, &self.live);
        if candidates.is_empty() {
            // Everything looks dead: optimistically resurrect the whole
            // view rather than fail without trying.
            self.live.iter_mut().for_each(|l| *l = true);
            candidates = self.ring.replicas(ringkey, want, &self.live);
        }
        let route = RouteInfo {
            redirect: true,
            epoch: 0,
        };
        let mut last: Option<ServiceError> = None;
        for shard in candidates {
            match self.clients[shard].render_routed(req, route) {
                Ok(resp) => return Ok((resp, self.repin(shard))),
                // Transport give-up or drain: someone on the path is
                // down. Blame the right shard (a redirect may have moved
                // the failure elsewhere), try the next replica.
                Err(e @ (ServiceError::Internal(_) | ServiceError::ShuttingDown)) => {
                    dtfe_telemetry::counter_add!("cluster.client_failovers", 1);
                    self.note_failure(shard);
                    last = Some(e);
                }
                // A redirect loop the resilient client gave up on: our
                // ring view disagrees with the cluster's. Fall through to
                // proxy mode below.
                Err(ServiceError::NotMine { owner }) => {
                    last = Some(ServiceError::NotMine { owner });
                }
                // Typed service answer (overload shed, bad request,
                // deadline): that *is* the response.
                Err(e) => return Err(e),
            }
        }
        // Every candidate failed. Ask any shard to serve it in proxy mode:
        // a non-owner builds the tile itself (bit-identical) instead of
        // redirecting us again. Presumed-live shards first, but presumed-
        // dead ones still get a try — a wrong liveness guess only costs a
        // fast connect failure, while skipping them could strand the
        // request with reachable shards left.
        let fallback = RouteInfo {
            redirect: false,
            epoch: 0,
        };
        let mut order: Vec<usize> = (0..self.clients.len()).filter(|&i| self.live[i]).collect();
        order.extend((0..self.clients.len()).filter(|&i| !self.live[i]));
        for shard in order {
            match self.clients[shard].render_routed(req, fallback) {
                Ok(resp) => {
                    self.live[shard] = true;
                    return Ok((resp, self.repin(shard)));
                }
                Err(e @ (ServiceError::Internal(_) | ServiceError::ShuttingDown)) => {
                    dtfe_telemetry::counter_add!("cluster.client_failovers", 1);
                    self.note_failure(shard);
                    last = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or_else(|| ServiceError::Internal("no live shards".into())))
    }

    /// Which shard actually answered: the one whose listener the resilient
    /// client ended up pointing at (it may have followed a `NotMine`
    /// redirect away from the shard we contacted).
    fn served_by(&self, contacted: usize) -> usize {
        let end = self.clients[contacted].endpoint();
        self.addrs
            .iter()
            .position(|a| *a == end)
            .unwrap_or(contacted)
    }

    /// After a success on `contacted`'s client: resolve who actually
    /// served, and if the client drifted to another shard's listener by
    /// following a redirect, re-pin it to its own shard so future routing
    /// stays one-hop.
    fn repin(&mut self, contacted: usize) -> usize {
        let served = self.served_by(contacted);
        if served != contacted {
            if let Ok(fresh) = ResilientClient::new(self.addrs[contacted], self.cfg) {
                self.clients[contacted] = fresh;
            }
        }
        served
    }

    /// After a transport give-up on `contacted`'s client: mark the shard
    /// whose listener actually failed. If the client drifted (it followed
    /// a `NotMine` redirect and then hit the wall), the *redirect target*
    /// is the dead one — blaming `contacted` would cascade false deaths
    /// across healthy shards that merely pointed at the corpse.
    fn note_failure(&mut self, contacted: usize) {
        let end = self.clients[contacted].endpoint();
        if end == self.addrs[contacted] {
            self.live[contacted] = false;
            return;
        }
        if let Some(target) = self.addrs.iter().position(|a| *a == end) {
            self.live[target] = false;
        }
        if let Ok(fresh) = ResilientClient::new(self.addrs[contacted], self.cfg) {
            self.clients[contacted] = fresh;
        }
    }
}
