//! Cost-aware shard scoring.
//!
//! Candidate shards for a tile are ranked with the same calibrated workload
//! model the admission controller uses (`c·n·log₂n` build + `α·n^β` render,
//! see `dtfe_framework::model`), augmented with live gauges gossiped in shard
//! heartbeats. The build term is dropped for shards where the tile is already
//! resident — that is what makes routing cache-affine — and queued work ahead
//! of the request is charged at one render each.

use dtfe_framework::model::WorkloadModel;

/// Gauges a candidate shard advertises (via heartbeat) or knows about itself.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardGauges {
    /// The tile this request needs is resident in the shard's cache.
    pub resident: bool,
    /// Requests queued ahead of this one.
    pub queue_depth: u64,
    /// Estimated backlog already accepted, in milliseconds.
    pub backlog_ms: u64,
    /// Shard is draining and must not take new work.
    pub draining: bool,
}

/// Predicted seconds until `shard` could return a tile of `n` particles
/// rendered at `samples` sample points. `f64::INFINITY` for draining shards.
pub fn score_shard(model: &WorkloadModel, n: usize, samples: usize, g: &ShardGauges) -> f64 {
    if g.draining {
        return f64::INFINITY;
    }
    let n = n as f64;
    let build = if g.resident {
        0.0
    } else {
        model.tri.predict(n)
    };
    let render = model.interp.predict(samples as f64);
    build + render + g.queue_depth as f64 * render + g.backlog_ms as f64 * 1e-3
}

/// Index into `gauges` of the cheapest shard; ties go to the earliest entry,
/// so callers list the local shard first to prefer self on ties. `None` when
/// every candidate is draining.
pub fn cheapest(
    model: &WorkloadModel,
    n: usize,
    samples: usize,
    gauges: &[(usize, ShardGauges)],
) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (shard, g) in gauges {
        let s = score_shard(model, n, samples, g);
        if s.is_finite() && best.is_none_or(|(_, b)| s < b) {
            best = Some((*shard, s));
        }
    }
    best.map(|(shard, _)| shard)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtfe_service::config::default_model;

    #[test]
    fn resident_shard_beats_cold_shard() {
        let m = default_model();
        let cold = ShardGauges::default();
        let warm = ShardGauges {
            resident: true,
            ..Default::default()
        };
        assert!(
            score_shard(&m, 100_000, 4096, &warm) < score_shard(&m, 100_000, 4096, &cold),
            "dropping the build term must win for a six-figure tile"
        );
        assert_eq!(
            cheapest(&m, 100_000, 4096, &[(0, cold), (1, warm)]),
            Some(1)
        );
    }

    #[test]
    fn deep_queue_overrides_residency() {
        let m = default_model();
        let swamped = ShardGauges {
            resident: true,
            queue_depth: 10_000,
            ..Default::default()
        };
        let idle = ShardGauges::default();
        assert_eq!(
            cheapest(&m, 10_000, 4096, &[(0, swamped), (1, idle)]),
            Some(1)
        );
    }

    #[test]
    fn draining_shards_are_never_picked() {
        let m = default_model();
        let draining = ShardGauges {
            resident: true,
            draining: true,
            ..Default::default()
        };
        assert_eq!(cheapest(&m, 1000, 64, &[(0, draining)]), None);
        assert_eq!(
            cheapest(&m, 1000, 64, &[(0, draining), (1, ShardGauges::default())]),
            Some(1)
        );
    }

    #[test]
    fn ties_prefer_first_listed() {
        let m = default_model();
        let g = ShardGauges::default();
        assert_eq!(cheapest(&m, 1000, 64, &[(2, g), (0, g), (1, g)]), Some(2));
    }
}
