//! `dtfe-clusterd` — a sharded field-rendering cluster.
//!
//! Two ways to run it:
//!
//! **Supervisor mode** (CI, smoke runs): one process hosts N shards, each
//! with its own listener and gossip loop.
//!
//! ```text
//! dtfe-clusterd --shards 3 --port 0 --snapshots DIR --demo
//! ```
//!
//! Prints one `LISTENING <addr>` line per shard (shard order; scripts
//! parse these), serves until every shard has received a wire `Shutdown`
//! frame, then drains and exits 0. Shutting down a single shard's listener
//! kills just that shard — the survivors gossip its death, rehash its
//! arcs, and keep serving; that is the failover leg of the CI job.
//!
//! **Single-shard mode** (real deployments, one process per box): every
//! process is given the full peer list and its own index.
//!
//! ```text
//! dtfe-clusterd --shard 0 --peers 127.0.0.1:7501,127.0.0.1:7502,127.0.0.1:7503 \
//!               --snapshots DIR --demo
//! ```
//!
//! The process binds `peers[shard]` and gossips with the rest. See the
//! README's "Running a 3-node cluster" walkthrough.

use dtfe_cluster::{ClusterConfig, ClusterNode};
use dtfe_geometry::{Aabb3, Vec3};
use dtfe_nbody::halos::{clustered_box, ClusteredBoxSpec};
use dtfe_nbody::snapshot::write_snapshot;
use dtfe_service::{Service, ServiceConfig, TcpServer};
use std::io::Write;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

struct Args {
    snapshots: PathBuf,
    port: u16,
    shards: usize,
    shard: Option<u32>,
    peers: Vec<SocketAddr>,
    tiles: usize,
    field_len: f64,
    resolution: usize,
    samples: usize,
    workers: usize,
    cache_mb: usize,
    admission_s: f64,
    replication: usize,
    vnodes: usize,
    heat: u32,
    heartbeat_ms: u64,
    timeout_ms: u64,
    demo: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: dtfe-clusterd --snapshots DIR [--shards N | --shard I --peers A,B,C] \
         [--port P] [--tiles N] [--field-len L] [--resolution N] [--samples N] \
         [--workers N] [--cache-mb N] [--admission-s S] [--replication R] [--vnodes V] \
         [--heat N] [--heartbeat-ms MS] [--timeout-ms MS] [--demo]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        snapshots: PathBuf::from("snapshots"),
        port: 0,
        shards: 3,
        shard: None,
        peers: Vec::new(),
        tiles: 8,
        field_len: 8.0,
        resolution: 128,
        samples: 1,
        workers: 2,
        cache_mb: 256,
        admission_s: 30.0,
        replication: 2,
        vnodes: 128,
        heat: 8,
        heartbeat_ms: 100,
        timeout_ms: 1000,
        demo: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--snapshots" => args.snapshots = PathBuf::from(val("--snapshots")),
            "--port" => args.port = val("--port").parse().unwrap_or_else(|_| usage()),
            "--shards" => args.shards = val("--shards").parse().unwrap_or_else(|_| usage()),
            "--shard" => args.shard = Some(val("--shard").parse().unwrap_or_else(|_| usage())),
            "--peers" => {
                args.peers = val("--peers")
                    .split(',')
                    .map(|s| s.parse().unwrap_or_else(|_| usage()))
                    .collect()
            }
            "--tiles" => args.tiles = val("--tiles").parse().unwrap_or_else(|_| usage()),
            "--field-len" => {
                args.field_len = val("--field-len").parse().unwrap_or_else(|_| usage())
            }
            "--resolution" => {
                args.resolution = val("--resolution").parse().unwrap_or_else(|_| usage())
            }
            "--samples" => args.samples = val("--samples").parse().unwrap_or_else(|_| usage()),
            "--workers" => args.workers = val("--workers").parse().unwrap_or_else(|_| usage()),
            "--cache-mb" => args.cache_mb = val("--cache-mb").parse().unwrap_or_else(|_| usage()),
            "--admission-s" => {
                args.admission_s = val("--admission-s").parse().unwrap_or_else(|_| usage())
            }
            "--replication" => {
                args.replication = val("--replication").parse().unwrap_or_else(|_| usage())
            }
            "--vnodes" => args.vnodes = val("--vnodes").parse().unwrap_or_else(|_| usage()),
            "--heat" => args.heat = val("--heat").parse().unwrap_or_else(|_| usage()),
            "--heartbeat-ms" => {
                args.heartbeat_ms = val("--heartbeat-ms").parse().unwrap_or_else(|_| usage())
            }
            "--timeout-ms" => {
                args.timeout_ms = val("--timeout-ms").parse().unwrap_or_else(|_| usage())
            }
            "--demo" => args.demo = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    args
}

/// Same demo snapshot as `dtfe-served --demo` (id `demo`, seed 1234), so
/// cluster responses are comparable bit-for-bit with a single node's.
fn write_demo(dir: &Path) -> std::io::Result<()> {
    let path = dir.join("demo.snap");
    if path.is_file() {
        return Ok(());
    }
    let bounds = Aabb3::new(Vec3::ZERO, Vec3::splat(32.0));
    let (points, _halos) = clustered_box(&ClusteredBoxSpec::new(bounds, 120_000, 24, 1234));
    write_snapshot(&path, &[points], bounds)?;
    Ok(())
}

fn service_config(args: &Args, telemetry: bool) -> ServiceConfig {
    let mut cfg = ServiceConfig::new(args.field_len, args.resolution);
    cfg.samples = args.samples;
    cfg.tiles = args.tiles;
    cfg.workers = args.workers;
    cfg.cache_budget_bytes = args.cache_mb << 20;
    cfg.admission_budget_s = args.admission_s;
    cfg.telemetry = telemetry;
    cfg
}

fn cluster_config(args: &Args, shard: u32) -> ClusterConfig {
    ClusterConfig {
        shard,
        vnodes: args.vnodes,
        replication: args.replication,
        heat_threshold: args.heat,
        heartbeat_interval: Duration::from_millis(args.heartbeat_ms),
        heartbeat_timeout: Duration::from_millis(args.timeout_ms),
        ..ClusterConfig::default()
    }
}

/// Supervisor mode: N shards in one process, ephemeral ports welcome.
fn run_supervisor(args: &Args) -> ExitCode {
    let mut nodes = Vec::new();
    let mut servers = Vec::new();
    for i in 0..args.shards {
        // One process-global telemetry recorder: shard 0 gets it, the
        // others run with plain counters only.
        let cfg = service_config(args, i == 0);
        let service = match Service::start(&args.snapshots, cfg) {
            Ok(s) => Arc::new(s),
            Err(e) => {
                eprintln!("cannot start shard {i}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let node = ClusterNode::new(service, cluster_config(args, i as u32));
        let port = if args.port == 0 {
            0
        } else {
            args.port + i as u16
        };
        let handler: Arc<dyn dtfe_service::RequestHandler> = node.clone();
        let server = match TcpServer::bind_with(handler, ("127.0.0.1", port)) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot bind shard {i}: {e}");
                return ExitCode::FAILURE;
            }
        };
        nodes.push(node);
        servers.push(server);
    }
    let addrs: Vec<SocketAddr> = match servers.iter().map(|s| s.local_addr()).collect() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("cannot read bound addresses: {e}");
            return ExitCode::FAILURE;
        }
    };
    for node in &nodes {
        node.configure_peers(addrs.clone());
        node.start_gossip();
    }
    for addr in &addrs {
        println!("LISTENING {addr}");
    }
    let _ = std::io::stdout().flush();
    let threads: Vec<_> = servers
        .into_iter()
        .map(|server| std::thread::spawn(move || server.serve()))
        .collect();
    for t in threads {
        let _ = t.join();
    }
    for node in &nodes {
        node.stop_gossip();
    }
    eprintln!("drained, exiting");
    ExitCode::SUCCESS
}

/// Single-shard mode: this process is `--shard I` of the `--peers` list.
fn run_single(args: &Args, shard: u32) -> ExitCode {
    if args.peers.is_empty() || (shard as usize) >= args.peers.len() {
        eprintln!("--shard {shard} needs a --peers list that includes it");
        return ExitCode::FAILURE;
    }
    let service = match Service::start(&args.snapshots, service_config(args, true)) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!("cannot start service: {e}");
            return ExitCode::FAILURE;
        }
    };
    let node = ClusterNode::new(service, cluster_config(args, shard));
    let handler: Arc<dyn dtfe_service::RequestHandler> = node.clone();
    let server = match TcpServer::bind_with(handler, args.peers[shard as usize]) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind {}: {e}", args.peers[shard as usize]);
            return ExitCode::FAILURE;
        }
    };
    let addr = match server.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("cannot read bound address: {e}");
            return ExitCode::FAILURE;
        }
    };
    node.configure_peers(args.peers.clone());
    node.start_gossip();
    println!("LISTENING {addr}");
    let _ = std::io::stdout().flush();
    server.serve();
    node.stop_gossip();
    eprintln!("drained, exiting");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = parse_args();
    if let Err(e) = std::fs::create_dir_all(&args.snapshots) {
        eprintln!("cannot create snapshot dir {:?}: {e}", args.snapshots);
        return ExitCode::FAILURE;
    }
    if args.demo {
        if let Err(e) = write_demo(&args.snapshots) {
            eprintln!("cannot write demo snapshot: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("demo snapshot ready (id: demo)");
    }
    match args.shard {
        Some(shard) => run_single(&args, shard),
        None => run_supervisor(&args),
    }
}
