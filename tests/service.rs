//! End-to-end tests of the serving layer against the batch pipeline.
//!
//! The load-bearing property: a field served by `dtfe-service` is
//! **bit-identical** to the same request rendered through the offline
//! paths — the distributed batch framework (single-tile config, where the
//! request cube equals the domain and both paths see the same particle
//! sequence) and the core render over a tile's padded particle set
//! (multi-tile config). Cold (triangulation built on demand) and warm
//! (tile LRU hit) responses must match exactly too.

use dtfe_repro::core::{
    surface_density_with_index, DtfeField, GridSpec2, HullIndex, MarchOptions, Mass,
};
use dtfe_repro::delaunay::DelaunayBuilder;
use dtfe_repro::framework::{run_distributed_snapshot, FieldRequest, FrameworkConfig};
use dtfe_repro::geometry::{Aabb3, Vec3};
use dtfe_repro::nbody::snapshot::write_snapshot;
use dtfe_repro::service::{
    Client, RenderRequest, Request, Response, Service, ServiceConfig, ServiceError, TcpServer,
};
use std::path::PathBuf;
use std::sync::Arc;

fn tmpdir(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("dtfe_service_e2e_{}_{name}", std::process::id()));
    std::fs::create_dir_all(&p).unwrap();
    p
}

fn cloud(n: usize, side: f64, seed: u64) -> Vec<Vec3> {
    let mut s = seed;
    let mut r = move || {
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        (s.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| Vec3::new(r() * side, r() * side, r() * side))
        .collect()
}

fn assert_bits_equal(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: cell {i} differs: {x} vs {y}"
        );
    }
}

/// Single-tile service vs the distributed batch framework: the request
/// cube is the whole domain, so both paths triangulate the identical
/// particle sequence — the grids must match bit for bit, cold and warm.
#[test]
fn service_matches_batch_framework_bit_for_bit() {
    let dir = tmpdir("batch");
    let side = 8.0;
    let bounds = Aabb3::new(Vec3::ZERO, Vec3::splat(side));
    let pts = cloud(2_500, side, 20260805);
    let path = dir.join("box.snap");
    write_snapshot(&path, &[pts], bounds).unwrap();

    let resolution = 48;
    let samples = 2;
    let center = bounds.center();

    // Offline reference: the batch framework on 1 rank with the field
    // cube equal to the domain.
    let mut fw = FrameworkConfig::new(side, resolution);
    fw.samples = samples;
    fw.keep_fields = true;
    let report =
        run_distributed_snapshot(1, &path, &[FieldRequest { center }], &fw).expect("batch run");
    let (_, reference) = report.ranks[0]
        .fields
        .first()
        .expect("batch path rendered the field");

    // The service with one whole-domain tile and matching options.
    let mut cfg = ServiceConfig::new(side, resolution);
    cfg.tiles = 1;
    cfg.samples = samples;
    let service = Service::start(&dir, cfg).unwrap();
    let mut req = RenderRequest::new("box", center);
    req.samples = samples as u32;

    let cold = service.render(&req).expect("cold render");
    assert!(!cold.meta.cache_hit, "first request must be a miss");
    assert_eq!((cold.grid.nx, cold.grid.ny), (resolution, resolution));
    assert_bits_equal(&cold.data, &reference.data, "cold vs batch framework");

    let warm = service.render(&req).expect("warm render");
    assert!(warm.meta.cache_hit, "second request must hit the tile LRU");
    assert_bits_equal(&warm.data, &cold.data, "warm vs cold");

    let stats = service.stats();
    assert_eq!(
        stats.hits.load(std::sync::atomic::Ordering::Relaxed)
            + stats.misses.load(std::sync::atomic::Ordering::Relaxed),
        stats.completed.load(std::sync::atomic::Ordering::Relaxed),
        "hit/miss accounting"
    );
    service.drain();
    std::fs::remove_dir_all(&dir).ok();
}

/// Multi-tile service vs an offline core-path render over the same tile
/// mesh: the serving machinery (queueing, batching, cache) must not
/// perturb a single bit of the output.
#[test]
fn multi_tile_service_matches_offline_tile_render() {
    let dir = tmpdir("tiles");
    let side = 16.0;
    let bounds = Aabb3::new(Vec3::ZERO, Vec3::splat(side));
    let pts = cloud(4_000, side, 7_654_321);
    write_snapshot(&dir.join("t.snap"), std::slice::from_ref(&pts), bounds).unwrap();

    let field_len = 4.0;
    let resolution = 40;
    let mut cfg = ServiceConfig::new(field_len, resolution);
    cfg.tiles = 8;
    let service = Service::start(&dir, cfg.clone()).unwrap();

    // A centre well inside one of the 8 octant tiles.
    let center = Vec3::new(3.9, 4.1, 3.7);
    let resp = service
        .render(&RenderRequest::new("t", center))
        .expect("served render");

    // Offline: rebuild exactly what the tile cache should have built —
    // the ghost-padded tile particle set in file order — and render with
    // the same options.
    let decomp = dtfe_repro::framework::Decomposition::new(bounds, cfg.tiles);
    let tile_box = decomp
        .rank_box(decomp.rank_of(center))
        .inflated(cfg.ghost_margin);
    let local: Vec<Vec3> = pts
        .iter()
        .copied()
        .filter(|&p| tile_box.contains_closed(p))
        .collect();
    let del = DelaunayBuilder::new().threads(1).build(&local).unwrap();
    let field = DtfeField::from_delaunay_for_inputs(del, local.len(), Mass::Uniform(1.0));
    let index = HullIndex::build(&field);
    let grid = GridSpec2::try_square(center.xy(), field_len, resolution).unwrap();
    let opts = MarchOptions::new()
        .samples(1)
        .parallel(false)
        .z_range(center.z - field_len * 0.5, center.z + field_len * 0.5);
    let (reference, _) = surface_density_with_index(&field, &index, &grid, &opts);

    assert_bits_equal(&resp.data, &reference.data, "served vs offline tile render");
    service.drain();
    std::fs::remove_dir_all(&dir).ok();
}

/// The TCP transport returns byte-identical fields to the in-process
/// handle, reports typed errors, serves stats, and drains on Shutdown.
#[test]
fn tcp_transport_round_trip_errors_and_shutdown() {
    let dir = tmpdir("tcp");
    let side = 8.0;
    let bounds = Aabb3::new(Vec3::ZERO, Vec3::splat(side));
    write_snapshot(&dir.join("net.snap"), &[cloud(1_500, side, 99)], bounds).unwrap();

    let mut cfg = ServiceConfig::new(side, 32);
    cfg.tiles = 1;
    let service = Arc::new(Service::start(&dir, cfg).unwrap());
    let server = TcpServer::bind(service.clone(), ("127.0.0.1", 0)).unwrap();
    let addr = server.local_addr().unwrap();
    let serve = std::thread::spawn(move || server.serve());

    let mut client = Client::connect(addr).unwrap();
    let req = RenderRequest::new("net", bounds.center());
    let over_wire = client.render(&req).expect("tcp render");
    let in_proc = service.render(&req).expect("in-process render");
    assert_bits_equal(&over_wire.data, &in_proc.data, "tcp vs in-process");

    // Typed errors survive the wire.
    let err = client
        .render(&RenderRequest::new("no-such-snapshot", bounds.center()))
        .unwrap_err();
    assert_eq!(
        err,
        ServiceError::UnknownSnapshot("no-such-snapshot".into())
    );
    let err = client
        .render(&RenderRequest::new("net", Vec3::new(-100.0, 0.0, 0.0)))
        .unwrap_err();
    assert!(matches!(err, ServiceError::InvalidRequest(_)), "{err:?}");

    // Stats is a typed document whose counters reflect the work above,
    // and whose JSON form passes the telemetry checker.
    let stats = client.stats().expect("stats");
    assert!(stats.serving.hits + stats.serving.misses > 0, "{stats:?}");
    dtfe_telemetry::check::check_stats_json(&stats.to_json()).expect("stats JSON validates");

    // Shutdown acks, the accept loop exits, and renders after drain are
    // refused.
    assert_eq!(
        client.call(&Request::Shutdown).unwrap(),
        Response::ShutdownAck
    );
    serve.join().expect("serve loop exits after Shutdown");
    let err = service.render(&req).unwrap_err();
    assert_eq!(err, ServiceError::ShuttingDown);
    std::fs::remove_dir_all(&dir).ok();
}

/// Admission control sheds with a typed `Overloaded` carrying a usable
/// retry hint once the priced backlog exceeds the budget.
#[test]
fn admission_sheds_with_retry_hint_when_budget_is_zero() {
    let dir = tmpdir("shed");
    let side = 8.0;
    let bounds = Aabb3::new(Vec3::ZERO, Vec3::splat(side));
    write_snapshot(&dir.join("s.snap"), &[cloud(800, side, 5)], bounds).unwrap();

    let mut cfg = ServiceConfig::new(side, 32);
    cfg.tiles = 1;
    cfg.admission_budget_s = 0.0;
    let service = Service::start(&dir, cfg).unwrap();
    let err = service
        .render(&RenderRequest::new("s", bounds.center()))
        .unwrap_err();
    let ServiceError::Overloaded { retry_after_ms } = err else {
        panic!("expected Overloaded, got {err:?}");
    };
    assert!(retry_after_ms >= 10);
    assert_eq!(
        service
            .stats()
            .shed
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    service.drain();
    std::fs::remove_dir_all(&dir).ok();
}
