//! End-to-end integration tests spanning all crates: data generation →
//! triangulation → DTFE → kernels → baselines → distributed framework →
//! lensing.

use dtfe_repro::core::density::{DtfeField, Mass};
use dtfe_repro::core::grid::GridSpec2;
use dtfe_repro::core::marching::{surface_density_with_stats, MarchOptions};
use dtfe_repro::core::walking::{surface_density_walking, WalkOptions};
use dtfe_repro::framework::{run_distributed, FieldRequest, FrameworkConfig};
use dtfe_repro::geometry::{Aabb3, Vec2, Vec3};
use dtfe_repro::lensing::configs::galaxy_galaxy_centers;
use dtfe_repro::lensing::deflection::deflection_maps;
use dtfe_repro::lensing::thin_lens::{convergence_map, critical_surface_density};
use dtfe_repro::nbody::datasets::{cluster_with_substructure, galaxy_box, planck_like};
use dtfe_repro::nbody::fof::fof_groups;
use dtfe_repro::tess::VoronoiDensity;

#[test]
fn zeldovich_to_surface_density_conserves_mass() {
    let box_len = 16.0;
    let pts = planck_like(16, box_len, 31);
    let field = DtfeField::build(&pts, Mass::Uniform(1.0)).unwrap();
    assert!((field.integrated_mass() - pts.len() as f64).abs() < 1e-9 * pts.len() as f64);

    let grid = GridSpec2::covering(Vec2::new(-0.5, -0.5), Vec2::new(16.5, 16.5), 64, 64);
    let (sigma, stats) = surface_density_with_stats(&field, &grid, &MarchOptions::default());
    assert_eq!(stats.failures, 0);
    let m = sigma.total_mass();
    assert!(
        (m - pts.len() as f64).abs() < 0.03 * pts.len() as f64,
        "grid mass {m} vs {} particles",
        pts.len()
    );
}

#[test]
fn three_estimators_agree_on_smooth_data() {
    // Marching, walking, and the zero-order baseline must agree to within
    // the expected discretization/bias differences on a mildly clustered
    // volume.
    let box_len = 12.0;
    let pts = planck_like(16, box_len, 77);
    let field = DtfeField::build(&pts, Mass::Uniform(1.0)).unwrap();
    let grid = GridSpec2::square(Vec2::new(6.0, 6.0), 8.0, 24);

    let marched = dtfe_repro::core::marching::surface_density(
        &field,
        &grid,
        &MarchOptions::new().z_range(0.0, box_len),
    );
    let walked =
        surface_density_walking(&field, &grid, &WalkOptions::new(256).z_range(0.0, box_len));
    let vd = VoronoiDensity::from_dtfe(&field);
    let dense = vd.surface_density(&grid, (0.0, box_len), 256, true);

    let rel_l1 = |a: &[f64], b: &[f64]| {
        let denom: f64 = a.iter().sum();
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>() / denom
    };
    let walk_err = rel_l1(&marched.data, &walked.data);
    assert!(walk_err < 0.03, "walking vs marching rel-L1 {walk_err}");
    // Zero-order differs more (the Fig. 8 bias), but not wildly.
    let dense_err = rel_l1(&marched.data, &dense.data);
    assert!(dense_err < 0.5, "zero-order vs marching rel-L1 {dense_err}");
}

#[test]
fn halo_pipeline_fof_to_framework_to_lensing() {
    // The full galaxy-galaxy pipeline: clustered box → FOF halos → field
    // requests → distributed framework → convergence + deflection of one
    // field.
    let box_len = 24.0;
    let bounds = Aabb3::new(Vec3::ZERO, Vec3::splat(box_len));
    let (pts, catalog) = galaxy_box(box_len, 40_000, 24, 5);

    // FOF rediscovers the planted halos (linking length tuned to the NFW
    // scale radii); centres should be near catalog centres.
    let groups = fof_groups(&pts, 0.25, 40);
    assert!(!groups.is_empty(), "FOF found nothing");
    let top = &groups[0];
    let nearest_catalog = catalog
        .iter()
        .map(|h| h.center.distance(top.center))
        .fold(f64::INFINITY, f64::min);
    assert!(
        nearest_catalog < 1.0,
        "top FOF group {:.2} from any catalog halo",
        nearest_catalog
    );

    // Field requests on FOF-mass-ranked centres (as the MiraU experiment).
    let field_len = 3.0;
    let centers: Vec<Vec3> = groups
        .iter()
        .map(|g| g.center)
        .filter(|c| {
            let m = field_len * 0.5;
            c.x > m
                && c.y > m
                && c.z > m
                && c.x < box_len - m
                && c.y < box_len - m
                && c.z < box_len - m
        })
        .take(8)
        .collect();
    assert!(centers.len() >= 4);
    let requests: Vec<FieldRequest> = centers
        .iter()
        .map(|&c| FieldRequest { center: c })
        .collect();

    let cfg = FrameworkConfig {
        keep_fields: true,
        resolution: 32,
        ..FrameworkConfig::new(field_len, 32)
    };
    let run = run_distributed(4, &pts, bounds, &requests, &cfg).unwrap();
    let fields: Vec<_> = run.ranks.into_iter().flat_map(|r| r.fields).collect();
    assert_eq!(fields.len(), requests.len());

    // Densest field: positive everywhere near the halo, peaked at centre.
    let (_, sigma) = fields
        .iter()
        .max_by(|a, b| a.1.total_mass().partial_cmp(&b.1.total_mass()).unwrap())
        .unwrap();
    assert!(sigma.total_mass() > 0.0);
    let (_, peak) = sigma.min_max();
    assert!(peak > 0.0);

    // Lensing maps on a power-of-two upsample-free grid: resolution 32 ✓.
    let kappa = convergence_map(
        sigma,
        critical_surface_density(1000.0, 2000.0, 1000.0) / 1e12,
    );
    let maps = deflection_maps(&kappa);
    assert!(maps.alpha_x.data.iter().all(|v| v.is_finite()));
    assert!(maps.gamma1.data.iter().all(|v| v.is_finite()));
}

#[test]
fn galaxy_galaxy_centers_from_catalog_work_in_framework() {
    let box_len = 20.0;
    let bounds = Aabb3::new(Vec3::ZERO, Vec3::splat(box_len));
    let (pts, halos) = galaxy_box(box_len, 25_000, 16, 13);
    let centers = galaxy_galaxy_centers(&halos, 10, bounds, 1.0);
    let requests: Vec<FieldRequest> = centers
        .iter()
        .map(|&c| FieldRequest { center: c })
        .collect();
    for balance in [true, false] {
        let cfg = FrameworkConfig {
            balance,
            ..FrameworkConfig::new(2.0, 16)
        };
        let run = run_distributed(3, &pts, bounds, &requests, &cfg).unwrap();
        assert_eq!(run.computed, requests.len());
    }
}

#[test]
fn telemetry_snapshot_run_exports_trace_and_imbalance() {
    // The observability acceptance test: a snapshot-driven distributed run
    // with telemetry on must yield (a) a valid Chrome trace whose phase
    // spans cover ≥95% of every rank's busy time and (b) a metrics JSON
    // document whose per-rank triangulate/interpolate gauges reproduce the
    // Fig. 10 imbalance metric computed by the framework itself.
    use dtfe_repro::nbody::snapshot::write_snapshot;
    use dtfe_repro::telemetry::json::Json;
    use dtfe_repro::telemetry::{check, normalized_std};

    let box_len = 20.0;
    let bounds = Aabb3::new(Vec3::ZERO, Vec3::splat(box_len));
    let (pts, halos) = galaxy_box(box_len, 30_000, 20, 17);
    let mut blocks: Vec<Vec<Vec3>> = vec![Vec::new(); 3];
    for (i, &p) in pts.iter().enumerate() {
        blocks[i % 3].push(p);
    }
    let mut path = std::env::temp_dir();
    path.push(format!("dtfe_pipeline_snap_{}.bin", std::process::id()));
    write_snapshot(&path, &blocks, bounds).unwrap();

    let requests: Vec<FieldRequest> = halos
        .iter()
        .filter(|h| bounds.inflated(-1.0).contains_closed(h.center))
        .take(10)
        .map(|h| FieldRequest { center: h.center })
        .collect();
    assert!(requests.len() >= 6);
    let nranks = 4;
    let cfg = FrameworkConfig {
        balance: true,
        telemetry: true,
        ..FrameworkConfig::new(2.0, 24)
    };
    let run = dtfe_repro::framework::run_distributed_snapshot(nranks, &path, &requests, &cfg)
        .expect("snapshot run");
    std::fs::remove_file(&path).ok();
    assert_eq!(run.computed, requests.len());

    // (a) Chrome trace: parses, one process per rank, and on every rank
    // the depth-1 phase spans cover ≥95% of the depth-0 rank span's CPU.
    let trace = run.chrome_trace().expect("telemetry attached");
    let stats = check::check_chrome_trace(&trace).expect("valid chrome trace");
    assert_eq!(stats.processes, nranks);
    let snaps = run.telemetry();
    assert_eq!(snaps.len(), nranks);
    for snap in &snaps {
        let busy = snap.span_cpu_s(0);
        let phases = snap.span_cpu_s(1);
        assert!(
            phases >= 0.95 * busy,
            "{}: phase spans cover {phases:.6}s of {busy:.6}s busy",
            snap.label
        );
    }

    // (b) Metrics JSON: per-rank tri/interp gauges round-trip exactly, so
    // the imbalance recomputed from the exported document equals the
    // framework's own Fig. 10 metric.
    let metrics = run.metrics_json().expect("telemetry attached");
    check::check_metrics_json(&metrics).expect("valid metrics json");
    let doc = Json::parse(&metrics).unwrap();
    let ranks = doc.get("ranks").and_then(|r| r.as_arr()).unwrap();
    assert_eq!(ranks.len(), nranks);
    let mut times = vec![0.0; nranks];
    for r in ranks {
        let label = r.get("label").and_then(|l| l.as_str()).unwrap();
        let idx: usize = label.strip_prefix("rank").unwrap().parse().unwrap();
        let gauges = r.get("gauges").unwrap();
        let tri = gauges
            .get("framework.triangulate_s")
            .and_then(|v| v.as_f64())
            .unwrap();
        let interp = gauges
            .get("framework.interpolate_s")
            .and_then(|v| v.as_f64())
            .unwrap();
        times[idx] = tri + interp;
    }
    let from_json = normalized_std(&times);
    assert!(
        (from_json - run.imbalance()).abs() < 1e-12,
        "imbalance from exported JSON {from_json} vs framework {}",
        run.imbalance()
    );
    assert!(from_json.is_finite());
}

#[test]
fn cluster_dataset_renders_like_fig1() {
    let (pts, bounds) = cluster_with_substructure(20_000, 3);
    let field = DtfeField::build(&pts, Mass::Uniform(1.0)).unwrap();
    let grid = GridSpec2::square(bounds.center().xy(), 3.0, 64);
    let sigma =
        dtfe_repro::core::marching::surface_density(&field, &grid, &MarchOptions::default());
    // Strong central concentration: peak well above the edge mean.
    let peak = sigma.min_max().1;
    let edge_mean = (0..64).map(|i| sigma.at(i, 0)).sum::<f64>() / 64.0;
    assert!(
        peak > 10.0 * edge_mean.max(1e-12),
        "no central concentration: peak {peak}, edge {edge_mean}"
    );
}
