//! Trait-conformance suite for the `FieldEstimator` backends.
//!
//! The contract under test, per backend:
//!
//! * **Dtfe** — rendering through the trait seam (including via
//!   `&dyn FieldEstimator`) is *bit-identical* to the retained reference
//!   kernel on proptest clouds: the refactor moved the interpolant lookup
//!   behind a vtable without touching a single float.
//! * **PS-DTFE** — per-simplex densities conserve mass exactly (≤ 1e-12
//!   relative), velocity gradients are exact on linear flows, and the
//!   stream counter reports ≥ 1 stream everywhere inside the hull.
//! * **Stochastic** — the k-realization average is rescaled to conserve
//!   mass (≤ 1e-12 relative) and is deterministic in its seed.
//! * **Service** — PS-DTFE and stochastic cutouts round-trip over TCP
//!   bit-identically to the in-process handle, and distinct estimators
//!   occupy distinct tile-cache entries (with velocity divergence sharing
//!   the PS-DTFE tile).

use dtfe_repro::core::marching::surface_density_reference;
use dtfe_repro::core::{
    surface_density, DtfeField, EstimatorKind, FieldEstimator, GridSpec2, HullIndex, MarchOptions,
    Mass, PsDtfeField, StochasticField, StochasticOptions, StreamField,
};
use dtfe_repro::geometry::{Aabb3, Vec2, Vec3};
use dtfe_repro::nbody::snapshot::write_snapshot;
use dtfe_repro::service::{Client, RenderRequest, Service, ServiceConfig, TcpServer};
use proptest::prelude::*;
use std::sync::Arc;

fn cloud(n: usize, side: f64, seed: u64) -> Vec<Vec3> {
    let mut s = seed | 1;
    let mut r = move || {
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        (s.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| Vec3::new(r() * side, r() * side, r() * side))
        .collect()
}

fn assert_bits_equal(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: cell {i} differs: {x} vs {y}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole guarantee: `DtfeField` rendered through the generic
    /// trait seam — monomorphized *and* type-erased — matches the
    /// reference kernel bit for bit on random clouds.
    #[test]
    fn dtfe_via_trait_is_bit_identical_to_reference(
        seed in 1u64..u64::MAX,
        n in 120usize..400,
    ) {
        let side = 6.0;
        let pts = cloud(n, side, seed);
        let field = DtfeField::build(&pts, Mass::Uniform(1.0)).unwrap();
        let index = HullIndex::build(&field);
        let grid = GridSpec2::covering(Vec2::new(1.0, 1.0), Vec2::new(5.0, 5.0), 24, 24);
        let opts = MarchOptions::new().samples(2).parallel(false);

        let (reference, _) = surface_density_reference(&field, &index, &grid, &opts);
        let mono = surface_density(&field, &grid, &opts);
        let erased = surface_density(&field as &dyn FieldEstimator, &grid, &opts);

        for (i, ((r, m), e)) in reference
            .data
            .iter()
            .zip(&mono.data)
            .zip(&erased.data)
            .enumerate()
        {
            prop_assert_eq!(r.to_bits(), m.to_bits(), "monomorphized cell {}", i);
            prop_assert_eq!(r.to_bits(), e.to_bits(), "type-erased cell {}", i);
        }
    }
}

#[test]
fn psdtfe_conserves_mass_and_counts_streams() {
    let side = 5.0;
    let pts = cloud(350, side, 424242);
    let vels: Vec<Vec3> = pts
        .iter()
        .map(|p| Vec3::new(2.0 * p.x + p.z, 3.0 * p.y, -p.x + 4.0 * p.z))
        .collect();
    let ps = PsDtfeField::build(&pts, &vels, Mass::Uniform(1.0)).unwrap();

    // Per-simplex constant densities integrate to the total mass exactly.
    let total = pts.len() as f64;
    let rel = (ps.integrated_mass() - total).abs() / total;
    assert!(rel <= 1e-12, "PS-DTFE mass error {rel:e}");

    // The linear flow's divergence is 2 + 3 + 4 = 9 on every simplex.
    for t in ps.delaunay().finite_tets() {
        assert!(
            (ps.tet_divergence(t) - 9.0).abs() < 1e-8,
            "tet {t}: div {}",
            ps.tet_divergence(t)
        );
    }

    // Identity mapping: exactly one stream everywhere inside the hull.
    let sf = StreamField::build(&pts, &pts).unwrap();
    assert_eq!(sf.folded_fraction(), 0.0);
    for i in 0..5 {
        for j in 0..5 {
            let p = Vec3::new(
                1.0 + i as f64 * 0.7,
                1.3 + j as f64 * 0.6,
                0.4 * (i + j) as f64 + 0.8,
            );
            let streams = sf.stream_count_at(p);
            assert!(streams >= 1, "no stream at {p:?}");
        }
    }
}

#[test]
fn stochastic_conserves_mass_and_is_seed_deterministic() {
    let side = 5.0;
    let pts = cloud(260, side, 777);
    let opts = StochasticOptions::new().realizations(3).seed(0xDECAF);
    let a = StochasticField::build(&pts, Mass::Uniform(1.0), opts).unwrap();
    let total = pts.len() as f64;
    let rel = (a.integrated_mass() - total).abs() / total;
    assert!(rel <= 1e-12, "stochastic mass error {rel:e}");

    let b = StochasticField::build(&pts, Mass::Uniform(1.0), opts).unwrap();
    assert_eq!(a.vertex_densities(), b.vertex_densities());
    assert_eq!(a.mass_scale().to_bits(), b.mass_scale().to_bits());
}

/// Serve every estimator end-to-end: PS-DTFE and stochastic cutouts
/// round-trip over TCP byte-identically to the in-process handle, the
/// four request kinds occupy three cache entries (divergence shares the
/// PS-DTFE tile), and all renders are finite.
#[test]
fn service_round_trips_every_estimator_over_tcp() {
    let dir = std::env::temp_dir().join(format!("dtfe_estimators_e2e_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let side = 8.0;
    let bounds = Aabb3::new(Vec3::ZERO, Vec3::splat(side));
    write_snapshot(&dir.join("est.snap"), &[cloud(1_800, side, 31337)], bounds).unwrap();

    let mut cfg = ServiceConfig::new(side, 24);
    cfg.tiles = 1;
    let service = Arc::new(Service::start(&dir, cfg).unwrap());
    let server = TcpServer::bind(service.clone(), ("127.0.0.1", 0)).unwrap();
    let addr = server.local_addr().unwrap();
    let serve = std::thread::spawn(move || server.serve());

    let mut client = Client::connect(addr).unwrap();
    let kinds = [
        EstimatorKind::Dtfe,
        EstimatorKind::PsDtfe,
        EstimatorKind::VelocityDivergence,
        EstimatorKind::Stochastic { realizations: 2 },
    ];
    let mut fields = Vec::new();
    for kind in kinds {
        let req = RenderRequest::new("est", bounds.center()).estimator(kind);
        let over_wire = client.render(&req).expect("tcp render");
        let in_proc = service.render(&req).expect("in-process render");
        assert_bits_equal(
            &over_wire.data,
            &in_proc.data,
            &format!("tcp vs in-process ({kind})"),
        );
        assert!(
            over_wire.data.iter().all(|v| v.is_finite()),
            "{kind}: non-finite cells"
        );
        fields.push(over_wire.data);
    }

    // Density-like renders carry mass; the three density estimators must
    // actually differ from each other (they are different estimates).
    assert!(fields[0].iter().sum::<f64>() > 0.0, "dtfe renders mass");
    assert!(fields[1].iter().sum::<f64>() > 0.0, "psdtfe renders mass");
    assert!(
        fields[3].iter().sum::<f64>() > 0.0,
        "stochastic renders mass"
    );
    assert_ne!(fields[0], fields[1], "dtfe vs psdtfe");
    assert_ne!(fields[0], fields[3], "dtfe vs stochastic");
    assert_ne!(fields[1], fields[2], "psdtfe density vs divergence");

    // Four request kinds, three cache entries: divergence reused the
    // PS-DTFE tile artifact.
    assert_eq!(service.cache().resident_entries(), 3);

    drop(client);
    service.drain();
    drop(serve);
    std::fs::remove_dir_all(&dir).ok();
}
