//! End-to-end tests of request tracing and live metrics (DESIGN.md §4i).
//!
//! Acceptance behaviors for the observability layer, each proven over the
//! real serving stack (TCP wire included where it matters):
//!
//! 1. a render with a sampled trace id echoes the id and a per-stage
//!    breakdown whose stage sum never exceeds the request wall time;
//! 2. failing builds (corrupt snapshot) land quarantine entries in the
//!    flight recorder, and after the file is fixed the tile recovers —
//!    with the slow cold recovery request recorded too;
//! 3. the wire `Dump` request returns Chrome-trace JSON that passes
//!    `check_chrome_trace`;
//! 4. the windowed `Stats` histograms surface a just-injected latency
//!    spike that the cumulative histogram dilutes away.
//!
//! Every test installs a process-global telemetry recorder (via
//! `cfg.telemetry`), so they serialize on one lock: global install is
//! last-wins and concurrent tests would cross their metrics streams.

use dtfe_repro::geometry::{Aabb3, Vec3};
use dtfe_repro::nbody::snapshot::write_snapshot;
use dtfe_repro::service::{
    Client, ClientConfig, RenderRequest, ResilientClient, Service, ServiceConfig, ServiceError,
    TcpServer, TraceContext,
};
use dtfe_repro::telemetry::check::{check_chrome_trace, check_stats_json};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

fn telemetry_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn tmpdir(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("dtfe_tracing_e2e_{}_{name}", std::process::id()));
    std::fs::create_dir_all(&p).unwrap();
    p
}

fn cloud(n: usize, side: f64, seed: u64) -> Vec<Vec3> {
    let mut s = seed;
    let mut r = move || {
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        (s.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| Vec3::new(r() * side, r() * side, r() * side))
        .collect()
}

/// Behavior 1 + 3: a sampled trace id round-trips over TCP with a
/// per-stage breakdown bounded by the wall time, the sampled request is
/// in the flight recorder, and the wire `Dump` passes the trace checker.
#[test]
fn traced_tcp_render_returns_stage_breakdown_and_is_flight_recorded() {
    let _guard = telemetry_lock();
    let dir = tmpdir("traced");
    let side = 8.0;
    let bounds = Aabb3::new(Vec3::ZERO, Vec3::splat(side));
    write_snapshot(&dir.join("t.snap"), &[cloud(1_500, side, 11)], bounds).unwrap();

    let mut cfg = ServiceConfig::new(4.0, 32);
    cfg.tiles = 1;
    cfg.telemetry = true;
    let service = Arc::new(Service::start(&dir, cfg).unwrap());
    let server = TcpServer::bind(service.clone(), ("127.0.0.1", 0)).unwrap();
    let addr = server.local_addr().unwrap();
    let serve = std::thread::spawn(move || server.serve());

    // Explicit sampled trace through the naive client: the exact id must
    // come back in the response meta.
    let ctx = TraceContext::sampled(*b"0123456789abcdef");
    let req = RenderRequest::new("t", bounds.center()).traced(ctx);
    let mut client = Client::connect(addr).unwrap();
    let t0 = Instant::now();
    let resp = client.render(&req).expect("traced cold render");
    let wall_us = t0.elapsed().as_micros() as u64;
    assert_eq!(resp.meta.trace, Some(ctx), "trace id must echo");
    let stage_sum = resp.meta.stage_sum_us();
    assert!(stage_sum > 0, "cold render must report stage timings");
    assert!(
        stage_sum <= wall_us,
        "stage sum {stage_sum}µs exceeds client wall {wall_us}µs"
    );
    assert!(
        resp.meta.build_us > 0,
        "cold render must report build time: {:?}",
        resp.meta
    );

    // The resilient client mints (and samples) an id when none is given.
    let minted_cfg = ClientConfig {
        sample_traces: true,
        ..ClientConfig::default()
    };
    let mut resilient = ResilientClient::new(addr, minted_cfg).unwrap();
    let resp2 = resilient
        .render(&RenderRequest::new("t", bounds.center()))
        .expect("warm render with minted trace");
    let minted = resp2.meta.trace.expect("client must mint a trace id");
    assert!(minted.sampled, "minted traces are sampled");
    assert_ne!(minted.id, [0u8; 16], "minted id must be nonzero");

    // Both sampled requests are in the flight recorder.
    let flights = service.flight().snapshot();
    let ids: Vec<&str> = flights.iter().map(|t| t.trace_id.as_str()).collect();
    assert!(ids.contains(&ctx.hex().as_str()), "explicit id in {ids:?}");
    assert!(ids.contains(&minted.hex().as_str()), "minted id in {ids:?}");
    assert!(flights.iter().all(|t| t.reason == "sampled"), "{flights:?}");

    // Behavior 3: the wire Dump is valid Chrome-trace JSON carrying the
    // explicit trace id; the typed Stats document validates too.
    let dump = client.dump().expect("dump over the wire");
    let stats = check_chrome_trace(&dump).expect("dump passes the trace checker");
    assert!(stats.events > 0 && stats.spans > 0, "{stats:?}");
    assert!(
        dump.contains(&ctx.hex()),
        "dump must name the sampled trace id"
    );
    let doc = client.stats().expect("typed stats over the wire");
    assert!(doc.serving.completed >= 2, "{doc:?}");
    check_stats_json(&doc.to_json()).expect("stats JSON passes the checker");

    client.shutdown().expect("clean shutdown");
    serve.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// Behavior 2: a corrupt snapshot fails builds into quarantine (flight
/// reason "quarantined"), fixing the file recovers the tile, and the
/// slow cold recovery render is flight-recorded as "slow".
#[test]
fn quarantine_and_recovery_are_flight_recorded() {
    let _guard = telemetry_lock();
    let dir = tmpdir("quarantine");
    let side = 8.0;
    let bounds = Aabb3::new(Vec3::ZERO, Vec3::splat(side));
    let snap = dir.join("q.snap");
    write_snapshot(&snap, &[cloud(2_000, side, 22)], bounds).unwrap();
    let good_bytes = std::fs::read(&snap).unwrap();
    std::fs::write(&snap, b"definitely not a snapshot").unwrap();

    let mut cfg = ServiceConfig::new(4.0, 32);
    cfg.tiles = 1;
    cfg.telemetry = true;
    cfg.quarantine_after = 2;
    cfg.quarantine_base = Duration::from_millis(200);
    // Far below any cold build time, far above a warm render: the cold
    // recovery render must classify as slow.
    cfg.slow_threshold = Some(Duration::from_millis(1));
    let service = Service::start(&dir, cfg).unwrap();
    let req = RenderRequest::new("q", bounds.center());

    // Two failing builds trip the quarantine; the third is rejected by it.
    for attempt in 0..2 {
        let err = service.render(&req).unwrap_err();
        assert!(
            !matches!(err, ServiceError::Quarantined { .. }),
            "attempt {attempt} failed the build itself, got {err:?}"
        );
    }
    let err = service.render(&req).unwrap_err();
    assert!(
        matches!(err, ServiceError::Quarantined { .. }),
        "third attempt must be quarantined, got {err:?}"
    );

    let reasons: Vec<String> = service
        .flight()
        .snapshot()
        .into_iter()
        .map(|t| t.reason)
        .collect();
    assert!(
        reasons.iter().any(|r| r == "failed"),
        "build failures recorded: {reasons:?}"
    );
    assert!(
        reasons.iter().any(|r| r == "quarantined"),
        "quarantine recorded: {reasons:?}"
    );

    // Fix the file, let the quarantine window lapse, and the tile
    // recovers with a real (cold, slow) render.
    std::fs::write(&snap, &good_bytes).unwrap();
    std::thread::sleep(Duration::from_millis(300));
    let resp = service.render(&req).expect("recovery render");
    assert!(!resp.meta.cache_hit, "recovery rebuilds the tile");
    assert!(!resp.data.is_empty());
    let flights = service.flight().snapshot();
    assert!(
        flights.iter().any(|t| t.reason == "slow"),
        "slow recovery render recorded: {:?}",
        flights.iter().map(|t| &t.reason).collect::<Vec<_>>()
    );

    // The whole story exports as a valid Chrome trace.
    check_chrome_trace(&service.dump_trace()).expect("dump passes the trace checker");
    service.drain();
    std::fs::remove_dir_all(&dir).ok();
}

/// Behavior 4: the windowed histograms answer "p99 over the last few
/// seconds" — a latency spike injected after the bulk traffic rotates out
/// dominates the windowed p99 while the cumulative histogram, carrying
/// hundreds of earlier fast samples, keeps a small p99.
#[test]
fn windowed_p99_surfaces_a_spike_the_cumulative_histogram_dilutes() {
    let _guard = telemetry_lock();
    let dir = tmpdir("windows");
    let side = 8.0;
    let bounds = Aabb3::new(Vec3::ZERO, Vec3::splat(side));
    write_snapshot(&dir.join("w.snap"), &[cloud(1_000, side, 33)], bounds).unwrap();

    let mut cfg = ServiceConfig::new(4.0, 16);
    cfg.tiles = 1;
    cfg.telemetry = true;
    // Small windows so the test can rotate them out with a short sleep.
    cfg.window_buckets = 4;
    cfg.window_width = Duration::from_millis(250);
    let service = Service::start(&dir, cfg).unwrap();
    let req = RenderRequest::new("w", bounds.center());

    // Bulk traffic: one cold build, then warm (sub-millisecond) renders.
    // Pad with synthetic 1ms samples so the cumulative p99 is pinned deep
    // in fast territory regardless of how quick the real renders are.
    for _ in 0..100 {
        service.render(&req).expect("warm render");
    }
    for _ in 0..900 {
        dtfe_repro::telemetry::hist_record!("service.request_latency_us", 1_000);
    }

    // Let every bulk sample rotate out of the 4×250ms windows, then
    // inject the spike: five 5-second "requests", just now.
    std::thread::sleep(Duration::from_millis(1_100));
    for _ in 0..5 {
        dtfe_repro::telemetry::hist_record!("service.request_latency_us", 5_000_000);
    }

    let doc = service.stats_document();
    let metrics = doc.metrics.as_ref().expect("telemetry is on");
    let cumulative = &metrics.histograms["service.request_latency_us"];
    let windowed = &metrics.windows["service.request_latency_us"];
    assert!(
        metrics.window_seconds > 0.9 && metrics.window_seconds < 1.1,
        "4×250ms windows advertise ≈1s of coverage, got {}",
        metrics.window_seconds
    );
    assert!(
        windowed.count >= 5 && windowed.count < 100,
        "window holds (roughly) only the spike, got {} samples",
        windowed.count
    );
    assert!(
        windowed.p99 >= 4_000_000,
        "windowed p99 must surface the spike, got {}µs",
        windowed.p99
    );
    assert!(
        cumulative.p99 < 1_000_000,
        "cumulative p99 must stay diluted, got {}µs over {} samples",
        cumulative.p99,
        cumulative.count
    );
    assert!(cumulative.count >= 1_005, "{cumulative:?}");

    // The same document round-trips and validates, windows included.
    let json = doc.to_json();
    let stats = check_stats_json(&json).expect("stats JSON passes the checker");
    assert!(stats.windows > 0, "checker must see window sections");
    service.drain();
    std::fs::remove_dir_all(&dir).ok();
}
