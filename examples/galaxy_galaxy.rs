//! The galaxy-galaxy lensing workflow (paper §V, Fig. 9) at demo scale:
//! many fields centred on the densest halos, computed by the distributed
//! framework with a-priori work sharing.
//!
//! ```text
//! cargo run --release --example galaxy_galaxy
//! ```

use dtfe_repro::framework::{run_distributed, FieldRequest, FrameworkConfig};
use dtfe_repro::geometry::{Aabb3, Vec3};
use dtfe_repro::lensing::configs::galaxy_galaxy_centers;
use dtfe_repro::nbody::datasets::galaxy_box;
use std::time::Instant;

fn main() {
    let box_len = 32.0;
    let bounds = Aabb3::new(Vec3::ZERO, Vec3::splat(box_len));
    let (particles, halos) = galaxy_box(box_len, 120_000, 48, 99);
    println!(
        "galaxy box: {} particles, {} halos",
        particles.len(),
        halos.len()
    );

    let field_len = 3.0;
    let centers = galaxy_galaxy_centers(&halos, 40, bounds, field_len * 0.5);
    let requests: Vec<FieldRequest> = centers
        .iter()
        .map(|&c| FieldRequest { center: c })
        .collect();
    println!(
        "field requests at the {} most massive (interior) halos",
        requests.len()
    );

    let nranks = 8;
    for balance in [false, true] {
        let cfg = FrameworkConfig {
            balance,
            ..FrameworkConfig::new(field_len, 64)
        };
        let t0 = Instant::now();
        let run =
            run_distributed(nranks, &particles, bounds, &requests, &cfg).expect("framework run");
        let wall = t0.elapsed().as_secs_f64();
        let computed = run.computed;
        let mode = if balance { "balanced  " } else { "unbalanced" };
        // The Fig. 10 imbalance metric: normalized std of per-rank compute.
        let compute: Vec<f64> = run
            .ranks
            .iter()
            .map(|r| r.timings.triangulate + r.timings.render)
            .collect();
        let mean = compute.iter().sum::<f64>() / compute.len() as f64;
        let sd = (compute.iter().map(|t| (t - mean) * (t - mean)).sum::<f64>()
            / compute.len() as f64)
            .sqrt();
        let moved: usize = run.ranks.iter().map(|r| r.sent_items).sum();
        println!(
            "{mode}: wall {wall:6.2}s | {computed} fields | {} items moved | \
             per-rank compute {mean:.2}±{sd:.2}s (norm. std {:.2})",
            moved,
            if mean > 0.0 { sd / mean } else { 0.0 }
        );
        for r in &run.ranks {
            println!(
                "  rank {}: local {:2} sent {:2} recvd {:2} | tri {:5.2}s render {:5.2}s wait {:5.2}s",
                r.rank,
                r.local_items,
                r.sent_items,
                r.received_items,
                r.timings.triangulate,
                r.timings.render,
                r.timings.sharing_wait,
            );
        }
    }
}
