//! The galaxy-galaxy lensing workflow (paper §V, Fig. 9) at demo scale:
//! many fields centred on the densest halos, computed by the distributed
//! framework with a-priori work sharing.
//!
//! ```text
//! cargo run --release --example galaxy_galaxy [-- --quick] [-- --trace]
//! ```
//!
//! `--quick` shrinks the problem to CI size; `--trace` turns on the
//! telemetry recorder and writes `galaxy_galaxy_trace.json` (Chrome
//! trace — load it in Perfetto / `chrome://tracing`) plus
//! `galaxy_galaxy_metrics.json` next to the experiment CSVs.

use dtfe_repro::framework::{run_distributed, FieldRequest, FrameworkConfig};
use dtfe_repro::geometry::{Aabb3, Vec3};
use dtfe_repro::lensing::configs::galaxy_galaxy_centers;
use dtfe_repro::nbody::datasets::galaxy_box;
use dtfe_repro::telemetry::Summary;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let trace = args.iter().any(|a| a == "--trace");

    let box_len = 32.0;
    let bounds = Aabb3::new(Vec3::ZERO, Vec3::splat(box_len));
    let n_particles = if quick { 20_000 } else { 120_000 };
    let (particles, halos) = galaxy_box(box_len, n_particles, 48, 99);
    println!(
        "galaxy box: {} particles, {} halos",
        particles.len(),
        halos.len()
    );

    let field_len = 3.0;
    let n_fields = if quick { 16 } else { 40 };
    let centers = galaxy_galaxy_centers(&halos, n_fields, bounds, field_len * 0.5);
    let requests: Vec<FieldRequest> = centers
        .iter()
        .map(|&c| FieldRequest { center: c })
        .collect();
    println!(
        "field requests at the {} most massive (interior) halos",
        requests.len()
    );

    let resolution = if quick { 32 } else { 64 };
    let nranks = 8;
    for balance in [false, true] {
        let cfg = FrameworkConfig {
            balance,
            telemetry: trace,
            ..FrameworkConfig::new(field_len, resolution)
        };
        let t0 = Instant::now();
        let run =
            run_distributed(nranks, &particles, bounds, &requests, &cfg).expect("framework run");
        let wall = t0.elapsed().as_secs_f64();
        let computed = run.computed;
        let mode = if balance { "balanced  " } else { "unbalanced" };
        // The Fig. 10 imbalance metric: normalized std of per-rank compute.
        let load = dtfe_repro::framework::LoadSummary::from_times(&run.compute_times());
        let moved: usize = run.ranks.iter().map(|r| r.sent_items).sum();
        println!(
            "{mode}: wall {wall:6.2}s | {computed} fields | {} items moved | \
             per-rank compute {:.2}s mean (norm. std {:.2})",
            moved,
            load.mean,
            run.imbalance(),
        );
        for r in &run.ranks {
            println!(
                "  rank {}: local {:2} sent {:2} recvd {:2} | tri {:5.2}s render {:5.2}s wait {:5.2}s",
                r.rank,
                r.local_items,
                r.sent_items,
                r.received_items,
                r.timings.triangulate,
                r.timings.render,
                r.timings.sharing_wait,
            );
        }
        // Export the balanced run's telemetry: that is the configuration
        // the paper profiles.
        if trace && balance {
            let dir = dtfe_repro::core::io::experiments_dir();
            let trace_path = dir.join("galaxy_galaxy_trace.json");
            let metrics_path = dir.join("galaxy_galaxy_metrics.json");
            std::fs::write(&trace_path, run.chrome_trace().expect("telemetry on"))
                .expect("write trace");
            std::fs::write(&metrics_path, run.metrics_json().expect("telemetry on"))
                .expect("write metrics");
            println!("trace   -> {}", trace_path.display());
            println!("metrics -> {}", metrics_path.display());
            println!("{}", Summary(&run.telemetry()));
        }
    }
}
