//! Beyond surface density: DTFE for arbitrary vertex quantities, arbitrary
//! line-of-sight directions, and end-to-end multiplane ray tracing.
//!
//! ```text
//! cargo run --release --example velocity_and_raytrace
//! ```
//!
//! 1. Evolve Zel'dovich initial conditions with the PM integrator and build
//!    a DTFE *velocity* field (the method's original application).
//! 2. Integrate the density along an oblique line of sight via rotation.
//! 3. Build convergence planes from field stacks, derive deflection maps,
//!    trace rays, and report the magnification distribution and the κ power
//!    spectrum.

use dtfe_repro::core::density::{DtfeField, Mass};
use dtfe_repro::core::fields::{volume_weighted_mean, ScalarField};
use dtfe_repro::core::grid::GridSpec2;
use dtfe_repro::core::marching::MarchOptions;
use dtfe_repro::core::oriented::OrientedField;
use dtfe_repro::geometry::{Vec2, Vec3};
use dtfe_repro::lensing::deflection::deflection_maps;
use dtfe_repro::lensing::raytrace::{trace_rays, LensPlane};
use dtfe_repro::lensing::spectra::power_spectrum_2d;
use dtfe_repro::lensing::thin_lens::convergence_map;
use dtfe_repro::nbody::pm::PmSimulation;
use dtfe_repro::nbody::zeldovich::{zeldovich_particles, ZeldovichSpec};

fn main() {
    // --- 1. PM-evolved snapshot with velocities ---
    let box_len = 16.0;
    let spec = ZeldovichSpec {
        growth: 1.2,
        ..ZeldovichSpec::new(16, box_len, 42)
    };
    let ics = zeldovich_particles(&spec);
    let mut sim = PmSimulation::new(box_len, 16, ics);
    sim.run(4, 0.3);
    println!(
        "PM snapshot: {} particles, |p_total|/N = {:.2e}",
        sim.positions.len(),
        sim.total_momentum().norm() / sim.positions.len() as f64
    );

    // DTFE velocity field: interpolate v_z with the same triangulation.
    let field = DtfeField::build(&sim.positions, Mass::Uniform(1.0)).expect("triangulation");
    let del = field.delaunay();
    // Vertex order differs from input order: map via vertex_of_input.
    let mut vz = vec![0.0; del.num_vertices()];
    let mut counts = vec![0u32; del.num_vertices()];
    for (i, v) in sim.velocities.iter().enumerate() {
        let vid = del.vertex_of_input(i) as usize;
        vz[vid] += v.z;
        counts[vid] += 1;
    }
    for (v, &c) in vz.iter_mut().zip(&counts) {
        if c > 0 {
            *v /= c as f64;
        }
    }
    let vfield = ScalarField::new(del, vz);
    println!(
        "volume-weighted <v_z> = {:.3e} (mass-weighted mean is 0 by momentum conservation)",
        volume_weighted_mean(&vfield)
    );

    // --- 2. Oblique line of sight ---
    let dir = Vec3::new(1.0, 1.0, 1.0);
    let of = OrientedField::build(&sim.positions, Mass::Uniform(1.0), dir).expect("rotation");
    let grid = GridSpec2::square(Vec2::new(0.0, 0.0), 10.0, 64);
    let (sigma_oblique, stats) = of.surface_density(&grid, &MarchOptions::new().parallel(false));
    println!(
        "oblique Σ along (1,1,1): grid mass {:.1} of {} particles ({} ray perturbations)",
        sigma_oblique.total_mass(),
        sim.positions.len(),
        stats.perturbations
    );

    // --- 3. Multiplane ray tracing ---
    // Three convergence planes from z-slabs of the same snapshot.
    let slab = box_len / 3.0;
    let mut planes = Vec::new();
    for s in 0..3 {
        let zr = (s as f64 * slab, (s as f64 + 1.0) * slab);
        let g = GridSpec2::covering(Vec2::new(0.0, 0.0), Vec2::new(box_len, box_len), 64, 64);
        let sigma = dtfe_repro::core::marching::surface_density(
            &field,
            &g,
            &MarchOptions::new().z_range(zr.0, zr.1),
        );
        let mean_sigma = sigma.data.iter().sum::<f64>() / sigma.data.len() as f64;
        let kappa = convergence_map(&sigma, mean_sigma / 0.02); // scale: mean κ = 0.02 (weak lensing)
        let maps = deflection_maps(&kappa);
        planes.push(LensPlane {
            chi: 100.0 + 100.0 * s as f64,
            alpha_x: maps.alpha_x,
            alpha_y: maps.alpha_y,
            weight: 0.02,
        });
    }
    let theta_grid = GridSpec2::covering(Vec2::new(0.02, 0.02), Vec2::new(0.045, 0.045), 48, 48);
    let rt = trace_rays(&planes, theta_grid, 500.0);
    let mu = rt.magnification(500.0);
    let finite: Vec<f64> = mu.data.iter().copied().filter(|v| v.is_finite()).collect();
    let mean_mu = finite.iter().sum::<f64>() / finite.len() as f64;
    let max_mu = finite.iter().cloned().fold(f64::MIN, f64::max);
    println!("ray tracing: <mu> = {mean_mu:.4}, max mu = {max_mu:.3}");

    // κ power spectrum of the middle plane's source grid.
    let g = GridSpec2::covering(Vec2::new(0.0, 0.0), Vec2::new(box_len, box_len), 64, 64);
    let sigma = dtfe_repro::core::marching::surface_density(
        &field,
        &g,
        &MarchOptions::new().z_range(slab, 2.0 * slab),
    );
    let ps = power_spectrum_2d(&sigma);
    println!("Σ power spectrum (k, P):");
    for (k, p) in ps.iter().take(8) {
        println!("  {k:4.1}  {p:.4e}");
    }
}
