//! The paper's Fig. 1 scenario: the surface density field of a massive
//! cluster with substructure, plus the derived lensing convergence map.
//!
//! ```text
//! cargo run --release --example cluster_field
//! ```
//!
//! The paper renders the largest object of an N-body run (~1.5 M particles
//! in a (4 Mpc/h)³ sub-volume on a 2048² grid); this example renders a
//! synthetic NFW cluster with satellites at a laptop-friendly scale and
//! writes the Σ map, a CSV dump, and the convergence map.

use dtfe_repro::core::density::{DtfeField, Mass};
use dtfe_repro::core::grid::GridSpec2;
use dtfe_repro::core::io::{experiments_dir, write_csv, write_pgm};
use dtfe_repro::core::marching::{surface_density, MarchOptions};
use dtfe_repro::lensing::deflection::deflection_maps;
use dtfe_repro::lensing::thin_lens::{convergence_map, critical_surface_density};
use dtfe_repro::nbody::datasets::cluster_with_substructure;
use std::time::Instant;

fn main() {
    let n_particles = 150_000;
    let (particles, bounds) = cluster_with_substructure(n_particles, 7);
    println!(
        "cluster realization: {} particles in {:?}",
        particles.len(),
        bounds
    );

    let t0 = Instant::now();
    // Mass scale: pretend the cluster is 1e14 M_sun total.
    let m_particle = 1.0e14 / n_particles as f64;
    let field = DtfeField::build(&particles, Mass::Uniform(m_particle)).expect("triangulation");
    println!(
        "DTFE built in {:.2}s ({} tets)",
        t0.elapsed().as_secs_f64(),
        field.delaunay().num_tets()
    );

    // 512² grid over the central (3 Mpc)² footprint.
    let grid = GridSpec2::square(bounds.center().xy(), 3.0, 512);
    let t0 = Instant::now();
    let opts = MarchOptions::new().samples(1);
    let sigma = surface_density(&field, &grid, &opts);
    println!(
        "rendered 512² surface density in {:.2}s",
        t0.elapsed().as_secs_f64()
    );
    let (lo, hi) = sigma.min_max();
    println!(
        "Σ ∈ [{lo:.3e}, {hi:.3e}] M_sun/Mpc²; map mass = {:.3e}",
        sigma.total_mass()
    );

    let dir = experiments_dir();
    write_pgm(&sigma, &dir.join("cluster_sigma.pgm"), true).unwrap();
    write_csv(&sigma, &dir.join("cluster_sigma.csv")).unwrap();

    // Thin-lens convergence for a lens at 1 Gpc, source at 2 Gpc.
    let sigma_cr = critical_surface_density(1000.0, 2000.0, 1000.0);
    let kappa = convergence_map(&sigma, sigma_cr);
    let (klo, khi) = kappa.min_max();
    println!("κ ∈ [{klo:.4}, {khi:.4}] (Σ_cr = {sigma_cr:.3e})");
    write_pgm(&kappa, &dir.join("cluster_kappa.pgm"), false).unwrap();

    // Deflection and shear maps (the downstream lensing-pipeline step).
    let maps = deflection_maps(&kappa);
    let mu = maps.magnification(&kappa);
    let peak_mu = mu
        .data
        .iter()
        .cloned()
        .filter(|v| v.is_finite())
        .fold(0.0, f64::max);
    println!("peak magnification on the grid: {peak_mu:.2}");
    write_pgm(&maps.gamma1, &dir.join("cluster_gamma1.pgm"), false).unwrap();
    println!(
        "wrote cluster_sigma/_kappa/_gamma1 maps to {}",
        dir.display()
    );
}
