//! The multiplane lensing workflow (paper §V, Fig. 12) at demo scale:
//! field stacks along observer lines of sight, computed distributed, then
//! combined into per-line convergence profiles.
//!
//! ```text
//! cargo run --release --example multiplane
//! ```

use dtfe_repro::framework::{run_distributed, FieldRequest, FrameworkConfig};
use dtfe_repro::geometry::{Aabb3, Vec3};
use dtfe_repro::lensing::configs::multiplane_los_centers;
use dtfe_repro::lensing::thin_lens::{convergence_map, critical_surface_density};
use dtfe_repro::nbody::datasets::planck_like;
use std::time::Instant;

fn main() {
    let box_len = 24.0;
    let bounds = Aabb3::new(Vec3::ZERO, Vec3::splat(box_len));
    // n_side must be a power of two (the Zel'dovich generator FFTs an
    // n_side³ grid).
    let particles = planck_like(32, box_len, 12);
    println!(
        "volume: {} particles in ({box_len} Mpc/h)³",
        particles.len()
    );

    // 6 lines of sight × 5 planes each (the paper: 700 lines, ~13 planes).
    let field_len = 3.0;
    let centers = multiplane_los_centers(bounds, 6, 5, field_len * 0.5, 4);
    let requests: Vec<FieldRequest> = centers
        .iter()
        .map(|&c| FieldRequest { center: c })
        .collect();
    println!("{} field requests on {} lines of sight", requests.len(), 6);

    let cfg = FrameworkConfig {
        keep_fields: true,
        ..FrameworkConfig::new(field_len, 48)
    };
    let t0 = Instant::now();
    let run = run_distributed(6, &particles, bounds, &requests, &cfg).expect("framework run");
    println!(
        "computed {} fields in {:.2}s on 6 ranks",
        run.computed,
        t0.elapsed().as_secs_f64()
    );

    // Stack each line of sight: total Σ and κ along the line (the
    // multi-plane approximation sums per-plane convergences).
    let m_particle = 1.0e12 / particles.len() as f64; // pretend-mass scaling
    let sigma_cr = critical_surface_density(800.0, 1600.0, 800.0);
    let mut fields: Vec<(Vec3, dtfe_repro::core::grid::Field2)> =
        run.ranks.into_iter().flat_map(|r| r.fields).collect();
    fields.sort_by(|a, b| {
        a.0.x
            .total_cmp(&b.0.x)
            .then(a.0.y.total_cmp(&b.0.y))
            .then(a.0.z.total_cmp(&b.0.z))
    });
    let mut line = 0;
    let mut i = 0;
    while i < fields.len() {
        // Fields sharing (x, y) belong to one line of sight.
        let (x, y) = (fields[i].0.x, fields[i].0.y);
        let mut kappa_tot = 0.0;
        let mut planes = 0;
        while i < fields.len() && fields[i].0.x == x && fields[i].0.y == y {
            let sigma_mean =
                fields[i].1.data.iter().sum::<f64>() / fields[i].1.data.len() as f64 * m_particle;
            let kappa = convergence_map(&fields[i].1, sigma_cr / m_particle);
            let kappa_mean = kappa.data.iter().sum::<f64>() / kappa.data.len() as f64;
            kappa_tot += kappa_mean;
            let _ = sigma_mean;
            planes += 1;
            i += 1;
        }
        line += 1;
        println!("line {line}: ({x:5.1}, {y:5.1}) | {planes} planes | Σκ̄ = {kappa_tot:.3e}");
    }
}
