//! Quickstart: from particles to a surface density map in a few lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a small synthetic cosmological box, estimates the DTFE density
//! field, renders a surface density grid with the marching kernel, and
//! writes `target/experiments/quickstart.pgm`.

use dtfe_repro::core::density::{DtfeField, Mass};
use dtfe_repro::core::grid::GridSpec2;
use dtfe_repro::core::io::{experiments_dir, write_pgm};
use dtfe_repro::core::marching::{surface_density_with_stats, MarchOptions};
use dtfe_repro::geometry::Vec2;
use dtfe_repro::nbody::datasets::planck_like;
use std::time::Instant;

fn main() {
    // 32³ = 32,768 particles of large-scale structure in a 32 Mpc/h box.
    let box_len = 32.0;
    let particles = planck_like(32, box_len, 2026);
    println!("particles: {}", particles.len());

    // Delaunay triangulation + DTFE densities (paper Eq. 2).
    let t0 = Instant::now();
    let field = DtfeField::build(&particles, Mass::Uniform(1.0)).expect("triangulation");
    println!(
        "triangulated {} tets in {:.2}s; integrated mass = {:.1}",
        field.delaunay().num_tets(),
        t0.elapsed().as_secs_f64(),
        field.integrated_mass()
    );

    // Render a 256² surface density map over the whole box footprint with
    // the marching kernel (paper Fig. 3).
    let grid = GridSpec2::covering(Vec2::new(0.0, 0.0), Vec2::new(box_len, box_len), 256, 256);
    let t0 = Instant::now();
    let (sigma, stats) = surface_density_with_stats(&field, &grid, &MarchOptions::default());
    println!(
        "marched {} rays in {:.2}s ({} tetrahedron crossings, {} perturbations)",
        grid.num_cells(),
        t0.elapsed().as_secs_f64(),
        stats.crossings,
        stats.perturbations
    );
    let (lo, hi) = sigma.min_max();
    println!(
        "surface density range: [{lo:.3}, {hi:.3}], grid mass = {:.1}",
        sigma.total_mass()
    );

    let out = experiments_dir().join("quickstart.pgm");
    write_pgm(&sigma, &out, true).expect("write pgm");
    println!("wrote {}", out.display());
}
