//! A tiny stand-in for the parts of `libc` this workspace uses (see
//! `vendor/README.md`): `clock_gettime(CLOCK_THREAD_CPUTIME_ID, ..)` for
//! per-thread CPU-time accounting in the cluster simulator. Declarations
//! follow the Linux LP64 ABI; std already links the C library, so the
//! symbol resolves without extra build script work.

#![allow(non_camel_case_types)]

pub type c_int = i32;
pub type c_long = i64;
pub type time_t = i64;
pub type clockid_t = c_int;

#[repr(C)]
#[derive(Clone, Copy, Debug, Default)]
pub struct timespec {
    pub tv_sec: time_t,
    pub tv_nsec: c_long,
}

/// Linux `CLOCK_THREAD_CPUTIME_ID` (bits/time.h).
pub const CLOCK_THREAD_CPUTIME_ID: clockid_t = 3;
pub const CLOCK_MONOTONIC: clockid_t = 1;

extern "C" {
    pub fn clock_gettime(clockid: clockid_t, tp: *mut timespec) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_cputime_advances() {
        let read = || {
            let mut ts = timespec::default();
            let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
            assert_eq!(rc, 0);
            ts.tv_sec as f64 + ts.tv_nsec as f64 * 1e-9
        };
        let before = read();
        let mut acc = 0u64;
        for i in 0..2_000_000u64 {
            acc = acc.wrapping_add(std::hint::black_box(i));
        }
        std::hint::black_box(acc);
        assert!(read() >= before);
    }
}
