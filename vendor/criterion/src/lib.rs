//! A small, dependency-free stand-in for the parts of `criterion` this
//! workspace's benches use (see `vendor/README.md`). It keeps the
//! `criterion_group!` / `criterion_main!` / `benchmark_group` /
//! `bench_function` / `Bencher::iter` shape so the bench sources compile
//! unchanged, but the measurement is intentionally simple: warm up briefly,
//! time a batch of iterations, and print the mean per iteration. No
//! statistics, outlier rejection, or HTML reports — read the numbers as
//! order-of-magnitude wall-clock, not publishable medians.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Accepted for CLI compatibility; arguments are ignored.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _parent: self,
        }
    }

    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) {
        let (sample_size, measurement_time) = (self.sample_size, self.measurement_time);
        run_one(&id.to_string(), sample_size, measurement_time, f);
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, self.measurement_time, f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.sample_size, self.measurement_time, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

pub struct Bencher {
    /// (total elapsed, iterations) accumulated by `iter`.
    measured: Option<(Duration, u64)>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // One warmup call (pulls code/data into cache, triggers lazy init).
        black_box(routine());
        let budget = self.measurement_time;
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            if iters >= self.sample_size as u64 || start.elapsed() >= budget {
                break;
            }
        }
        self.measured = Some((start.elapsed(), iters));
    }
}

fn run_one(
    name: &str,
    sample_size: usize,
    measurement_time: Duration,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        measured: None,
        sample_size,
        measurement_time,
    };
    f(&mut b);
    match b.measured {
        Some((total, iters)) if iters > 0 => {
            let per = total.as_secs_f64() / iters as f64;
            println!("bench: {name:<45} {} /iter ({iters} iters)", fmt_time(per));
        }
        _ => println!("bench: {name:<45} (no measurement)"),
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:9.3} s ")
    } else if secs >= 1e-3 {
        format!("{:9.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:9.3} µs", secs * 1e6)
    } else {
        format!("{:9.1} ns", secs * 1e9)
    }
}

/// `criterion_group!(name, target...)` or the long form with `config =`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("demo");
        let mut ran = 0u32;
        group.bench_function("noop", |b| b.iter(|| ran = black_box(ran.wrapping_add(1))));
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        assert!(ran > 0);
    }
}
