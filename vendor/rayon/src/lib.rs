//! A small, dependency-free stand-in for the parts of `rayon` this workspace
//! uses, so the build works offline and fully from source.
//!
//! Everything here is *indexed* data parallelism: every source knows its
//! length and can hand out the item at any index independently, so the
//! executor just splits `0..len` into contiguous blocks, one per worker, and
//! runs them under [`std::thread::scope`]. That covers the workspace's whole
//! usage — `par_chunks_mut` over grids, `par_iter`/`par_iter_mut` over
//! slices, `into_par_iter` over ranges, with `map`/`enumerate`/`for_each`
//! and an order-preserving `collect` on top — with real multi-thread
//! execution (important: the parallel-triangulation tests rely on actually
//! racing threads, not on a serial fallback).
//!
//! Differences from real rayon, beyond the obvious scope cut: no work
//! stealing (blocks are static), and pools don't own threads —
//! [`ThreadPool::install`] just pins the worker count for the duration of
//! the closure via a thread-local, spawning scoped threads on demand.

use std::cell::Cell;
use std::marker::PhantomData;
use std::mem::{ManuallyDrop, MaybeUninit};
use std::ops::Range;

pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, ParallelIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

// ---------------------------------------------------------------------------
// Thread-count plumbing ("pools").

thread_local! {
    /// Worker-count override installed by [`ThreadPool::install`]; 0 = unset.
    static POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Number of workers parallel operations on this thread will use.
pub fn current_num_threads() -> usize {
    let n = POOL_THREADS.with(Cell::get);
    if n > 0 {
        n
    } else {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder` (only `num_threads`).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Use exactly `n` workers (0 = automatic).
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            current_num_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

/// Building a pool cannot actually fail here; the type exists so callers can
/// keep rayon's fallible signature.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A "pool": a pinned worker count, applied for the duration of
/// [`ThreadPool::install`]. Threads are spawned per parallel call.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Run `op` with this pool's worker count in effect (restored on exit,
    /// including on panic).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(POOL_THREADS.with(Cell::get));
        POOL_THREADS.with(|c| c.set(self.threads));
        op()
    }
}

// ---------------------------------------------------------------------------
// The executor.

/// Call `f(i, item(i))` for every `i in 0..len`, split into contiguous
/// blocks across the current worker count. The calling thread takes the
/// first block so a 1-worker run never spawns.
fn run_indexed<I, F>(iter: I, f: F)
where
    I: ParallelIterator,
    F: Fn(usize, I::Item) + Sync,
{
    let n = iter.len();
    if n == 0 {
        return;
    }
    let threads = current_num_threads().clamp(1, n);
    if threads == 1 {
        for i in 0..n {
            // SAFETY: each index visited exactly once.
            f(i, unsafe { iter.item(i) });
        }
        return;
    }
    let per = n.div_ceil(threads);
    let (iter, f) = (&iter, &f);
    std::thread::scope(|s| {
        for t in 1..threads {
            let (lo, hi) = (t * per, ((t + 1) * per).min(n));
            if lo >= hi {
                break;
            }
            s.spawn(move || {
                for i in lo..hi {
                    // SAFETY: blocks are disjoint; each index visited once.
                    f(i, unsafe { iter.item(i) });
                }
            });
        }
        for i in 0..per.min(n) {
            // SAFETY: as above; block 0 is disjoint from the spawned ones.
            f(i, unsafe { iter.item(i) });
        }
    });
}

// ---------------------------------------------------------------------------
// The iterator trait and adaptors.

/// An indexed parallel iterator.
///
/// # Safety
///
/// Implementations must make [`ParallelIterator::item`] sound to call
/// concurrently from multiple threads for *distinct* indices in `0..len()`,
/// each index at most once per traversal.
#[allow(clippy::len_without_is_empty)]
pub unsafe trait ParallelIterator: Sized + Send + Sync {
    type Item: Send;

    fn len(&self) -> usize;

    /// Produce the item at `index`.
    ///
    /// # Safety
    ///
    /// `index < self.len()`; callers pass each index at most once per
    /// traversal (items like `&mut` chunks alias otherwise).
    unsafe fn item(&self, index: usize) -> Self::Item;

    fn map<O, F>(self, f: F) -> Map<Self, F>
    where
        O: Send,
        F: Fn(Self::Item) -> O + Send + Sync,
    {
        Map { base: self, f }
    }

    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        run_indexed(self, |_, x| f(x));
    }

    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }
}

pub struct Map<I, F> {
    base: I,
    f: F,
}

// SAFETY: delegates indexing to `base`; `f` is `Sync` so calling it from
// several threads is fine.
unsafe impl<I, F, O> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    O: Send,
    F: Fn(I::Item) -> O + Send + Sync,
{
    type Item = O;

    fn len(&self) -> usize {
        self.base.len()
    }

    unsafe fn item(&self, index: usize) -> O {
        (self.f)(self.base.item(index))
    }
}

pub struct Enumerate<I> {
    base: I,
}

// SAFETY: delegates indexing to `base`.
unsafe impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);

    fn len(&self) -> usize {
        self.base.len()
    }

    unsafe fn item(&self, index: usize) -> (usize, I::Item) {
        (index, self.base.item(index))
    }
}

// ---------------------------------------------------------------------------
// Order-preserving collect.

pub trait FromParallelIterator<T: Send>: Sized {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Vec<T> {
        struct Slots<T>(*mut T);
        // SAFETY: workers write disjoint slots (one per index).
        unsafe impl<T: Send> Sync for Slots<T> {}
        impl<T> Slots<T> {
            /// # Safety
            /// `i` in bounds and written at most once across all threads.
            unsafe fn write(&self, i: usize, v: T) {
                self.0.add(i).write(v);
            }
        }

        let n = iter.len();
        let mut buf: Vec<MaybeUninit<T>> = Vec::with_capacity(n);
        // SAFETY: MaybeUninit needs no initialization.
        unsafe { buf.set_len(n) };
        let slots = Slots(buf.as_mut_ptr() as *mut T);
        run_indexed(iter, |i, v| {
            // SAFETY: i < n and each index is written exactly once. (A panic
            // in a producer aborts the traversal and leaks the buffer's
            // initialized slots — same leak-not-UB stance as rayon.)
            unsafe { slots.write(i, v) };
        });
        let mut buf = ManuallyDrop::new(buf);
        // SAFETY: all n slots are initialized; capacity/length transfer.
        unsafe { Vec::from_raw_parts(buf.as_mut_ptr() as *mut T, n, buf.capacity()) }
    }
}

// ---------------------------------------------------------------------------
// Sources: slices.

pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> Iter<'_, T>;
}

pub trait ParallelSliceMut<T: Send> {
    fn par_iter_mut(&mut self) -> IterMut<'_, T>;
    fn par_chunks_mut(&mut self, chunk: usize) -> ChunksMut<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> Iter<'_, T> {
        Iter {
            ptr: self.as_ptr(),
            len: self.len(),
            _marker: PhantomData,
        }
    }
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> IterMut<'_, T> {
        IterMut {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            _marker: PhantomData,
        }
    }

    fn par_chunks_mut(&mut self, chunk: usize) -> ChunksMut<'_, T> {
        assert!(chunk > 0, "chunk size must be non-zero");
        ChunksMut {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            chunk,
            _marker: PhantomData,
        }
    }
}

pub struct Iter<'a, T> {
    ptr: *const T,
    len: usize,
    _marker: PhantomData<&'a [T]>,
}

// SAFETY: stands for `&[T]`, which is Send + Sync when `T: Sync`.
unsafe impl<T: Sync> Send for Iter<'_, T> {}
unsafe impl<T: Sync> Sync for Iter<'_, T> {}

// SAFETY: shared references to distinct elements; concurrent reads are fine.
unsafe impl<'a, T: Sync + 'a> ParallelIterator for Iter<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.len
    }

    unsafe fn item(&self, index: usize) -> &'a T {
        &*self.ptr.add(index)
    }
}

pub struct IterMut<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: stands for `&mut [T]`, which is Send + Sync when `T: Send` and
// elements are handed out at most once each (the trait's contract).
unsafe impl<T: Send> Send for IterMut<'_, T> {}
unsafe impl<T: Send> Sync for IterMut<'_, T> {}

// SAFETY: distinct indices yield non-aliasing `&mut`s, and the contract
// forbids revisiting an index.
unsafe impl<'a, T: Send + 'a> ParallelIterator for IterMut<'a, T> {
    type Item = &'a mut T;

    fn len(&self) -> usize {
        self.len
    }

    unsafe fn item(&self, index: usize) -> &'a mut T {
        &mut *self.ptr.add(index)
    }
}

pub struct ChunksMut<'a, T> {
    ptr: *mut T,
    len: usize,
    chunk: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: as for `IterMut`.
unsafe impl<T: Send> Send for ChunksMut<'_, T> {}
unsafe impl<T: Send> Sync for ChunksMut<'_, T> {}

// SAFETY: chunks at distinct indices cover disjoint element ranges.
unsafe impl<'a, T: Send + 'a> ParallelIterator for ChunksMut<'a, T> {
    type Item = &'a mut [T];

    fn len(&self) -> usize {
        self.len.div_ceil(self.chunk)
    }

    unsafe fn item(&self, index: usize) -> &'a mut [T] {
        let lo = index * self.chunk;
        let hi = (lo + self.chunk).min(self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(lo), hi - lo)
    }
}

// ---------------------------------------------------------------------------
// Sources: ranges.

pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

pub struct RangeIter<T> {
    start: T,
    len: usize,
}

macro_rules! range_impl {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            type Iter = RangeIter<$t>;
            fn into_par_iter(self) -> RangeIter<$t> {
                let len = if self.end > self.start {
                    (self.end - self.start) as usize
                } else {
                    0
                };
                RangeIter { start: self.start, len }
            }
        }

        // SAFETY: items are computed values; no aliasing concerns.
        unsafe impl ParallelIterator for RangeIter<$t> {
            type Item = $t;

            fn len(&self) -> usize {
                self.len
            }

            unsafe fn item(&self, index: usize) -> $t {
                self.start + index as $t
            }
        }
    )*};
}

range_impl!(u32, u64, usize);

impl<I: ParallelIterator> IntoParallelIterator for I {
    type Item = I::Item;
    type Iter = I;
    fn into_par_iter(self) -> I {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn chunks_mut_for_each_touches_everything() {
        let mut v = vec![0u64; 1003];
        v.par_chunks_mut(17).enumerate().for_each(|(i, c)| {
            for (k, x) in c.iter_mut().enumerate() {
                *x = (i * 17 + k) as u64;
            }
        });
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64));
    }

    #[test]
    fn collect_preserves_order() {
        let out: Vec<u32> = (0u32..5000).into_par_iter().map(|i| i * 3).collect();
        assert_eq!(out.len(), 5000);
        assert!(out.iter().enumerate().all(|(i, &x)| x == 3 * i as u32));
    }

    #[test]
    fn pool_install_pins_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        let ids: Vec<std::thread::ThreadId> = pool.install(|| {
            (0u32..64)
                .into_par_iter()
                .map(|_| std::thread::current().id())
                .collect()
        });
        // With 3 workers over 64 items at least one spawned thread differs
        // from the caller (block 0 runs on the caller).
        assert!(ids.iter().any(|&id| id != std::thread::current().id()));
    }

    #[test]
    fn par_iter_and_iter_mut() {
        let mut v: Vec<u32> = (0..257).collect();
        v.par_iter_mut().for_each(|x| *x += 1);
        let sum: Vec<u32> = v.par_iter().map(|&x| x - 1).collect();
        assert!(sum.iter().enumerate().all(|(i, &x)| x == i as u32));
    }
}
