//! A small stand-in for the parts of `crossbeam` this workspace uses (see
//! `vendor/README.md`): only `channel::{unbounded, Sender, Receiver}`,
//! mapped onto [`std::sync::mpsc`]. Since Rust 1.72 the std `Sender` is
//! `Sync`, so the simcluster pattern of sharing `Arc<Vec<Sender<_>>>`
//! across rank threads works unchanged. Not covered (because unused here):
//! bounded channels, `select!`, and `Receiver` cloning — std receivers are
//! single-consumer.

pub mod channel {
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, Sender, TryRecvError};

    /// Single-consumer receiver (std's); the simulator gives each rank its
    /// own inbox, so multi-consumer semantics are never needed.
    pub type Receiver<T> = std::sync::mpsc::Receiver<T>;

    /// Unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn senders_shared_across_threads() {
        let (tx, rx) = unbounded::<usize>();
        let senders = Arc::new(vec![tx]);
        std::thread::scope(|s| {
            for i in 0..4 {
                let senders = Arc::clone(&senders);
                s.spawn(move || senders[0].send(i).unwrap());
            }
        });
        drop(senders);
        let mut got: Vec<usize> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn timeout_and_try_recv() {
        let (tx, rx) = unbounded::<u8>();
        assert!(rx.try_recv().is_err());
        assert!(rx.recv_timeout(Duration::from_millis(1)).is_err());
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)).unwrap(), 9);
    }
}
