//! A small, dependency-free stand-in for the parts of `rand` this workspace
//! uses (see `vendor/README.md`): `StdRng` seeded via `seed_from_u64`, and
//! the `Rng` methods `gen::<f64>()` / `gen_range(..)`.
//!
//! The generator is xoshiro256++ with splitmix64 seed expansion — fast,
//! well-distributed, and deterministic for a given seed. The stream differs
//! from upstream `StdRng` (ChaCha12), which is fine: upstream documents the
//! `StdRng` stream as unstable across versions, and the workspace only
//! relies on *reproducibility for a fixed seed*, never on specific values.

/// Low-level generator interface: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (only the `u64` convenience entry point).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    pub use crate::StdRng;
}

/// xoshiro256++ (Blackman & Vigna). 256 bits of state, period 2^256 − 1.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> StdRng {
        // splitmix64 stream expands the seed; it cannot produce the
        // all-zero state xoshiro forbids.
        let mut x = state;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        out
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of `T` from its standard distribution
    /// (`f64`: uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from a range (half-open or inclusive).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    type Output;
    fn sample<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// Debiased integer sampling (Lemire-style rejection on the widening
/// multiply), shared by the integer range impls.
fn uniform_below<R: RngCore>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (n as u128);
        // Accept unless the low half lands in the biased zone.
        if (m as u64) >= n.wrapping_neg() % n {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }

        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return (rng.next_u64() as i128) as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_range_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn int_ranges_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&v));
        }
    }
}
