//! A small, dependency-free stand-in for the parts of `proptest` this
//! workspace uses (see `vendor/README.md`): the [`proptest!`] macro with an
//! optional `#![proptest_config(..)]` header, numeric-range and tuple
//! strategies, `prop::collection::vec`, `prop_map` / `prop_filter`, and the
//! `prop_assert*` macros.
//!
//! Semantics kept: property tests run a configurable number of
//! deterministically seeded random cases (the seed is derived from the
//! test's module path and name, so failures reproduce exactly on re-run).
//! Semantics dropped: shrinking — a failing case panics with the assert
//! message immediately instead of first searching for a minimal
//! counterexample. That trades debugging convenience for zero dependencies;
//! the deterministic seed means the failing input is still recoverable by
//! re-running the test under a debugger or with added prints.

use std::ops::{Range, RangeInclusive};

pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };
}

/// Mirror of the `prop::` path alias exposed by proptest's prelude.
pub mod prop {
    pub use crate::collection;
}

// ---------------------------------------------------------------------------
// Config and RNG.

#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Upstream defaults to 256; 64 keeps debug-profile suites quick
        // while still exercising plenty of inputs. Tests that need more (or
        // fewer) set it explicitly via `with_cases`.
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Deterministic generator driving value generation (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from the test's identity so every run replays the same cases.
    pub fn for_test(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Rejection-free is unnecessary here; modulo bias is irrelevant for
        // test-case generation.
        self.next_u64() % n
    }
}

// ---------------------------------------------------------------------------
// Strategies.

/// A generator of random values of `Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            base: self,
            whence,
            f,
        }
    }
}

pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

pub struct Filter<S, F> {
    base: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.base.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1000 candidates in a row",
            self.whence
        );
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return (rng.next_u64() as i128) as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    use super::{Range, RangeInclusive, Strategy, TestRng};

    /// Length bounds for [`vec`], convertible from the usual range forms.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `Vec`s whose length lies in `size`, elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min
                + if span == 0 {
                    0
                } else {
                    rng.below(span + 1) as usize
                };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Macros.

/// Define property tests. Supports the standard form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///
///     #[test]
///     fn my_property(x in 0.0f64..1.0, v in prop::collection::vec(0u32..9, 1..20)) {
///         prop_assert!(x < 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                // Upstream runs the body as a `Result<(), TestCaseError>`
                // closure so tests may `return Ok(())` to skip a draw;
                // mirror that contract.
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                if let Err(__msg) = __outcome {
                    panic!("proptest case failed: {}", __msg);
                }
            }
        }
    )*};
}

/// Reject the current draw without failing the test. Upstream re-draws a
/// replacement case; this runner simply skips the case (the configured case
/// count bounds work, so a skipped draw only thins coverage slightly).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return Ok(());
        }
    };
}

/// Assert within a property (no shrinking here, so it is `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs(
            x in -2.0f64..2.0,
            v in prop::collection::vec((0u8..4, 0u8..4).prop_map(|(a, b)| a + b), 3..10),
        ) {
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!((3..10).contains(&v.len()));
            prop_assert!(v.iter().all(|&s| s <= 6));
        }
    }

    proptest! {
        #[test]
        fn filter_holds(n in (0u32..100).prop_filter("even", |n| n % 2 == 0)) {
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let s = prop::collection::vec(0u64..1000, 5..9);
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        use crate::Strategy;
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
