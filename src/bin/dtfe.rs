//! `dtfe` — command-line front end for the surface-density pipeline.
//!
//! ```text
//! dtfe generate --kind zeldovich --n 32 --box 32 --seed 7 --out snap.bin
//! dtfe info     --snapshot snap.bin
//! dtfe halos    --snapshot snap.bin --link 0.4 --min 20
//! dtfe render   --snapshot snap.bin --grid 512 --out sigma.pgm
//! dtfe render   --snapshot snap.bin --grid 256 --center 16,16 --len 8 --out zoom.pgm
//! ```

use dtfe_repro::core::density::{DtfeField, Mass};
use dtfe_repro::core::grid::GridSpec2;
use dtfe_repro::core::io::{write_csv, write_pgm};
use dtfe_repro::core::marching::{surface_density_with_stats, MarchOptions};
use dtfe_repro::geometry::{Aabb3, Vec2, Vec3};
use dtfe_repro::nbody::datasets::{cluster_with_substructure, galaxy_box, planck_like};
use dtfe_repro::nbody::fof::fof_groups;
use dtfe_repro::nbody::snapshot;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  dtfe generate --kind zeldovich|cluster|galaxy-box [--n N] [--box L] \\\n                [--seed S] --out FILE\n  dtfe info --snapshot FILE\n  dtfe halos --snapshot FILE [--link B] [--min M]\n  dtfe render --snapshot FILE [--grid N] [--center X,Y] [--len L] \\\n               [--samples K] --out FILE[.pgm|.csv]"
    );
    ExitCode::from(2)
}

/// Parse `--key value` pairs after the subcommand.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let k = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {:?}", args[i]))?;
        let v = args
            .get(i + 1)
            .ok_or_else(|| format!("--{k} needs a value"))?;
        map.insert(k.to_string(), v.clone());
        i += 2;
    }
    Ok(map)
}

fn get_f64(flags: &HashMap<String, String>, key: &str, default: f64) -> Result<f64, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{key}: bad number {v:?}")),
    }
}

fn get_usize(flags: &HashMap<String, String>, key: &str, default: usize) -> Result<usize, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{key}: bad integer {v:?}")),
    }
}

fn cmd_generate(flags: &HashMap<String, String>) -> Result<(), String> {
    let kind = flags.get("kind").map(String::as_str).unwrap_or("zeldovich");
    let out = PathBuf::from(flags.get("out").ok_or("--out required")?);
    let seed = get_usize(flags, "seed", 7)? as u64;
    let (points, bounds) = match kind {
        "zeldovich" => {
            let n = get_usize(flags, "n", 32)?;
            if !n.is_power_of_two() {
                return Err("--n must be a power of two for zeldovich".into());
            }
            let box_len = get_f64(flags, "box", n as f64)?;
            (
                planck_like(n, box_len, seed),
                Aabb3::new(Vec3::ZERO, Vec3::splat(box_len)),
            )
        }
        "cluster" => {
            let n = get_usize(flags, "n", 100_000)?;
            let (pts, bounds) = cluster_with_substructure(n, seed);
            (pts, bounds)
        }
        "galaxy-box" => {
            let n = get_usize(flags, "n", 200_000)?;
            let box_len = get_f64(flags, "box", 48.0)?;
            let halos = get_usize(flags, "halos", 100)?;
            let (pts, _) = galaxy_box(box_len, n, halos, seed);
            (pts, Aabb3::new(Vec3::ZERO, Vec3::splat(box_len)))
        }
        other => return Err(format!("unknown --kind {other:?}")),
    };
    // Write with 8 writer blocks (spatial slabs) so parallel readers have
    // something to split.
    let nblocks = 8usize;
    let mut blocks: Vec<Vec<Vec3>> = vec![Vec::new(); nblocks];
    let ext = bounds.extent().z.max(1e-12);
    for &p in &points {
        let b = (((p.z - bounds.lo.z) / ext * nblocks as f64) as usize).min(nblocks - 1);
        blocks[b].push(p);
    }
    snapshot::write_snapshot(&out, &blocks, bounds).map_err(|e| e.to_string())?;
    println!(
        "wrote {} particles ({kind}) to {}",
        points.len(),
        out.display()
    );
    Ok(())
}

fn cmd_info(flags: &HashMap<String, String>) -> Result<(), String> {
    let path = PathBuf::from(flags.get("snapshot").ok_or("--snapshot required")?);
    let info = snapshot::read_info(&path).map_err(|e| e.to_string())?;
    println!("snapshot : {}", path.display());
    println!("particles: {}", info.total);
    println!("blocks   : {}", info.num_ranks());
    println!("bounds   : {:?} .. {:?}", info.bounds.lo, info.bounds.hi);
    Ok(())
}

fn cmd_halos(flags: &HashMap<String, String>) -> Result<(), String> {
    let path = PathBuf::from(flags.get("snapshot").ok_or("--snapshot required")?);
    let (info, pts) = snapshot::read_all(&path).map_err(|e| e.to_string())?;
    // Default linking length: 0.2 × mean interparticle spacing, the
    // cosmology standard.
    let spacing = (info.bounds.volume() / pts.len() as f64).cbrt();
    let link = get_f64(flags, "link", 0.2 * spacing)?;
    let min = get_usize(flags, "min", 20)?;
    let groups = fof_groups(&pts, link, min);
    println!(
        "# FOF b = {link:.4}, min members = {min}: {} groups",
        groups.len()
    );
    println!("rank,mass,cx,cy,cz");
    for (i, g) in groups.iter().take(50).enumerate() {
        println!(
            "{i},{},{:.4},{:.4},{:.4}",
            g.mass(),
            g.center.x,
            g.center.y,
            g.center.z
        );
    }
    Ok(())
}

fn cmd_render(flags: &HashMap<String, String>) -> Result<(), String> {
    let path = PathBuf::from(flags.get("snapshot").ok_or("--snapshot required")?);
    let out = PathBuf::from(flags.get("out").ok_or("--out required")?);
    let (info, pts) = snapshot::read_all(&path).map_err(|e| e.to_string())?;
    let ng = get_usize(flags, "grid", 256)?;
    let samples = get_usize(flags, "samples", 1)?;

    let grid = match flags.get("center") {
        Some(c) => {
            let (x, y) = c
                .split_once(',')
                .ok_or("--center wants X,Y")
                .and_then(|(a, b)| {
                    Ok((
                        a.parse().map_err(|_| "--center: bad X")?,
                        b.parse().map_err(|_| "--center: bad Y")?,
                    ))
                })?;
            let len = get_f64(flags, "len", info.bounds.extent().x / 4.0)?;
            GridSpec2::square(Vec2::new(x, y), len, ng)
        }
        None => GridSpec2::covering(info.bounds.lo.xy(), info.bounds.hi.xy(), ng, ng),
    };

    eprintln!("triangulating {} particles...", pts.len());
    let field = DtfeField::build(&pts, Mass::Uniform(1.0)).map_err(|e| e.to_string())?;
    eprintln!("marching {} rays...", grid.num_cells());
    let opts = MarchOptions::new().samples(samples);
    let (sigma, stats) = surface_density_with_stats(&field, &grid, &opts);
    eprintln!(
        "done: {} crossings, {} perturbations, grid mass {:.1}",
        stats.crossings,
        stats.perturbations,
        sigma.total_mass()
    );
    match out.extension().and_then(|e| e.to_str()) {
        Some("csv") => write_csv(&sigma, &out).map_err(|e| e.to_string())?,
        _ => write_pgm(&sigma, &out, true).map_err(|e| e.to_string())?,
    }
    println!("wrote {}", out.display());
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let flags = match parse_flags(&args[1..]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&flags),
        "info" => cmd_info(&flags),
        "halos" => cmd_halos(&flags),
        "render" => cmd_render(&flags),
        _ => {
            return usage();
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Keep `Path` imported for doc links even in minimal builds.
#[allow(dead_code)]
fn _touch(_: &Path) {}
