//! Umbrella crate for the DTFE surface-density reproduction.
//!
//! Re-exports every subsystem so the examples and integration tests can use a
//! single dependency. The actual implementations live in the `crates/*`
//! workspace members; see `DESIGN.md` for the system inventory.

pub use dtfe_core as core;
pub use dtfe_delaunay as delaunay;
pub use dtfe_framework as framework;
pub use dtfe_geometry as geometry;
pub use dtfe_lensing as lensing;
pub use dtfe_nbody as nbody;
pub use dtfe_simcluster as simcluster;
pub use dtfe_tess as tess;
