//! Umbrella crate for the DTFE surface-density reproduction.
//!
//! Re-exports every subsystem so the examples and integration tests can use a
//! single dependency. The actual implementations live in the `crates/*`
//! workspace members; see `DESIGN.md` for the system inventory.

pub use dtfe_core as core;
pub use dtfe_delaunay as delaunay;
pub use dtfe_framework as framework;
pub use dtfe_geometry as geometry;
pub use dtfe_lensing as lensing;
pub use dtfe_nbody as nbody;
pub use dtfe_service as service;
pub use dtfe_simcluster as simcluster;
pub use dtfe_telemetry as telemetry;
pub use dtfe_tess as tess;

/// The names most programs need: triangulation construction, field
/// estimation, and the surface-density renderers with their options.
///
/// ```
/// use dtfe_repro::prelude::*;
///
/// let pts: Vec<Vec3> = (0..200)
///     .map(|i| {
///         let f = 1.0 + i as f64;
///         Vec3::new(
///             (f * 0.618_033_988_749_894_9).fract(),
///             (f * 0.414_213_562_373_095_1).fract(),
///             (f * 0.259_921_049_894_873_2).fract(),
///         )
///     })
///     .collect();
/// let field = DtfeField::build(&pts, Mass::Uniform(1.0)).unwrap();
/// let grid = GridSpec2::covering(Vec2::new(0.2, 0.2), Vec2::new(0.8, 0.8), 8, 8);
/// let sigma = surface_density(&field, &grid, &MarchOptions::new().parallel(false));
/// assert!(sigma.total_mass() > 0.0);
/// ```
pub mod prelude {
    pub use dtfe_core::{
        surface_density, surface_density_walking, DtfeField, Field2, Field3, GridSpec2, GridSpec3,
        MarchOptions, Mass, RenderOptions, WalkOptions,
    };
    pub use dtfe_delaunay::{BuildError, DelaunayBuilder, Triangulation};
    pub use dtfe_geometry::{Vec2, Vec3};
}
